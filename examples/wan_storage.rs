//! Geo-replicated dynamic-weighted atomic storage: the paper's §VII case
//! study on a five-region WAN.
//!
//! Five replicas (one per region), clients on two continents, reads and
//! writes flowing while voting power migrates toward the fast replicas —
//! and a linearizability check over the whole recorded history at the end.
//!
//! Run with: `cargo run --example wan_storage`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr::core::{audit_transfers, RpConfig};
use awr::sim::{five_region_wan, Region};
use awr::storage::{check_linearizable, DynOptions, StorageHarness};
use awr::types::{Ratio, ServerId};

fn main() {
    // Five servers round-robin across regions + three clients.
    let cfg = RpConfig::uniform(5, 1);
    let mut store: StorageHarness<String> = StorageHarness::build(
        cfg.clone(),
        3,
        0xABD,
        five_region_wan(5 + 3, 0.1),
        DynOptions::default(),
    );
    println!(
        "regions: {:?}",
        Region::ALL
            .iter()
            .map(|r| format!("{r:?}"))
            .collect::<Vec<_>>()
    );

    // Ordinary multi-writer ABD usage.
    store.write(0, "v1-from-virginia".to_string()).unwrap();
    let (v, op) = store.read(1).unwrap();
    println!(
        "client 2 read {:?} in {:.1} ms",
        v,
        (op.response - op.invoke) as f64 / 1e6
    );

    // Weight migrates toward the Atlantic replicas while traffic continues:
    // each donor invokes its own transfer (C1) under its local check (C2).
    for (from, to) in [(2u32, 0u32), (3, 1), (4, 0)] {
        let out = store
            .transfer_and_wait(ServerId(from), ServerId(to), Ratio::dec("0.15"))
            .unwrap();
        println!(
            "transfer s{}→s{} 0.15: {}",
            from + 1,
            to + 1,
            if out.is_effective() {
                "effective"
            } else {
                "null"
            }
        );
        // Interleave a write between transfers.
        store.write(0, format!("v-after-transfer-{from}")).unwrap();
    }

    let (v, op) = store.read(2).unwrap();
    println!(
        "client 3 read {:?} in {:.1} ms (restarts due to weight changes: {})",
        v,
        (op.response - op.invoke) as f64 / 1e6,
        op.restarts
    );

    // End-to-end verification: atomicity (Theorem 6) and the reassignment
    // safety properties (Theorem 4) over everything that just happened.
    store.settle();
    check_linearizable(&store.history()).expect("history must be atomic");
    let report = audit_transfers(&cfg, &store.all_completed_transfers());
    assert!(report.is_clean());
    println!(
        "verified: {} ops linearizable, {} transfers audited clean",
        store.history().len(),
        report.effective + report.null
    );
}
