//! The impossibility results, live: run Algorithm 1 (consensus from weight
//! reassignment) and Algorithm 2 (consensus from pairwise reassignment)
//! against linearizable oracles, then watch a naive asynchronous
//! implementation violate Integrity — the reason the oracles cannot exist
//! in a real asynchronous failure-prone system.
//!
//! Run with: `cargo run --example consensus_reduction`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr::core::naive::run_theorem1_race;
use awr::core::reduction::{run_alg1, run_alg1_threads, run_alg2};

fn main() {
    // Algorithm 1: servers propose values; whoever's reassign(±0.5) lands
    // first is the only one that can complete effectively, and everyone
    // decides that server's proposal.
    let proposals = vec!["apple", "banana", "cherry", "dates", "elderberry"];
    let run = run_alg1(5, 2, proposals.clone(), 1);
    println!(
        "Algorithm 1 (n=5, f=2): all {} servers decided {:?} — agreement={}, validity={}",
        run.decisions.len(),
        run.decided().unwrap(),
        run.agreement(),
        run.validity()
    );

    // Different schedules elect different winners — consensus only promises
    // agreement *within* a run.
    let winners: std::collections::BTreeSet<_> = (0..20)
        .map(|seed| *run_alg1(5, 2, proposals.clone(), seed).decided().unwrap())
        .collect();
    println!("across 20 schedules, winners seen: {winners:?}");

    // Algorithm 2: same story with pairwise transfers; the winner is always
    // proposed by a server outside F = {s1, s2}.
    let run = run_alg2(7, 2, (0..7).collect::<Vec<i32>>(), 9);
    println!(
        "Algorithm 2 (n=7, f=2): decided proposal of s{} (outside F) — agreement={}",
        run.decided().unwrap() + 1,
        run.agreement()
    );
    assert!(*run.decided().unwrap() >= 2);

    // Real OS threads, real races — agreement still holds because the
    // oracle linearizes (that is exactly the power asynchronous systems
    // lack).
    let run = run_alg1_threads(6, 2, (0..6).collect::<Vec<u64>>());
    println!(
        "Algorithm 1 on 6 OS threads: agreement={}, decided={:?}",
        run.agreement(),
        run.decided().unwrap()
    );

    // And the punchline: replace the oracle with an honest asynchronous
    // implementation (local checks + reliable broadcast) and Integrity
    // breaks on every concurrent schedule.
    let (weights, integrity_held) = run_theorem1_race(4, 1, 3);
    println!(
        "naive async implementation: final weights {weights}, Integrity held = {integrity_held}"
    );
    assert!(
        !integrity_held,
        "the naive protocol cannot be safe — Corollary 1"
    );
    println!("→ weight reassignment is consensus-hard (Theorem 1 / Corollary 1).");
}
