//! Multi-object keyed storage: many registers, one weighted configuration.
//!
//! Builds a 5-server dynamic-weighted shard, runs a Zipf-skewed keyed
//! workload over 64 objects from three clients, fires one weight
//! reassignment mid-run (re-weighting *every* object at once), and then
//! checks each object's history independently with the per-key checker.
//!
//! Run with: `cargo run --example keyed_objects`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr::core::{audit_transfers, RpConfig};
use awr::sim::UniformLatency;
use awr::storage::workload::{run_keyed_workload, KeyDistribution, KeyedWorkloadSpec};
use awr::storage::{check_linearizable_keyed, DynOptions, DynServer, StorageHarness};
use awr::types::{ObjectId, Ratio, ServerId};

fn main() {
    let cfg = RpConfig::uniform(5, 1);
    let mut h: StorageHarness<u64> = StorageHarness::build(
        cfg,
        3,
        42,
        UniformLatency::new(1_000, 40_000),
        DynOptions::default(),
    );

    // A skewed keyed workload: a few hot keys, a long cold tail — all
    // served by the same quorum system. The spec's random transfers are
    // disabled; we fire one deliberate reassignment below instead.
    let spec = KeyedWorkloadSpec {
        n_objects: 64,
        dist: KeyDistribution::Zipfian { exponent: 1.0 },
        base: awr::storage::workload::WorkloadSpec {
            rounds: 30,
            transfer_percent: 0,
            ..Default::default()
        },
    };

    // Warm half the workload, then shift weight while ops keep flowing:
    // one transfer re-weights the whole shard — every object's quorums
    // change together, and the gaining server refreshes its entire
    // register map in a single count-based read.
    let stats = run_keyed_workload(&mut h, 3, &spec, 42);
    h.transfer_and_wait(ServerId(3), ServerId(0), Ratio::dec("0.25"))
        .unwrap();
    let stats2 = run_keyed_workload(&mut h, 3, &spec, 43);
    h.settle();

    println!("== keyed workload over 64 objects ==");
    println!(
        "phase 1: {} reads, {} writes over {} objects (mean {:.2} ms)",
        stats.totals.reads,
        stats.totals.writes,
        stats.objects_touched(),
        stats.totals.mean_latency_ms,
    );
    println!(
        "phase 2 (after reassignment): {} reads, {} writes, {} stale-C restarts",
        stats2.totals.reads, stats2.totals.writes, stats2.totals.restarts,
    );
    if let Some((hot, n)) = stats2.hottest() {
        println!("hottest key: {hot} with {n} ops (zipf skew at work)");
    }

    // Per-object wire accounting from the simulator's metrics.
    let m = h.world.metrics();
    let mut keys: Vec<(u64, u64)> = m.bytes_by_object.iter().map(|(&o, &b)| (o, b)).collect();
    keys.sort_by_key(|&(_, b)| std::cmp::Reverse(b));
    println!("top objects by attributed wire bytes:");
    for (o, b) in keys.iter().take(3) {
        println!("  {} -> {b} bytes", ObjectId(*o));
    }

    // One configuration governs all objects: the gaining server's weight
    // rose for every key, and its register map holds the hot keys.
    let s0 = h
        .world
        .actor::<DynServer<u64>>(h.server_actor(ServerId(0)))
        .unwrap();
    println!(
        "s1 weight after reassignment: {} ({} registers hosted, {} refreshes)",
        s0.weight(),
        s0.registers().len(),
        s0.refreshes,
    );

    // Atomicity per object, protocol audit across the run.
    check_linearizable_keyed(&h.history()).expect("every object must linearize");
    let report = audit_transfers(h.config(), &h.all_completed_transfers());
    assert!(report.is_clean(), "{:?}", report.violations);
    println!(
        "per-object linearizability: OK across {} objects; audit clean",
        h.history().objects().len(),
    );
}
