//! The adaptive placement loop end-to-end: a geo-replicated dynamic
//! storage system under cross traffic observes its per-link latency and
//! utilization matrices, lets a placement policy propose a weight map,
//! and reassigns through the restricted protocol — then keeps serving,
//! measurably faster.
//!
//! Run with: `cargo run --example placement_policies`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr::core::{audit_transfers, RpConfig};
use awr::quorum::placement::{LatencyGreedy, PlacementPolicy, Static, UtilizationAware};
use awr::sim::{
    geo_network, ActorId, BurstyOnOff, CrossTraffic, Flow, ReassignmentBurst, Region, MILLI,
};
use awr::storage::{check_linearizable, DynClient, DynOptions, PlacementDriver, StorageHarness};

const N: usize = 5;

/// Five servers, one per region; the client lives beside Virginia.
fn placement() -> Vec<Region> {
    let mut p = Region::ALL.to_vec();
    p.push(Region::Virginia);
    p
}

/// Elephant bursts and a competing reassignment wave congest the Ireland
/// and São Paulo ack corridors.
fn flows() -> Vec<Flow> {
    let client = ActorId(N);
    const MB: u64 = 1_000_000;
    vec![
        Flow::new(
            ActorId(1),
            client,
            BurstyOnOff::new(40 * MILLI, 360 * MILLI, 1_250 * MB),
        ),
        Flow::new(
            ActorId(2),
            client,
            ReassignmentBurst::new(450 * MILLI, 20 * MB, 100 * MILLI),
        ),
    ]
}

fn run(policy: Box<dyn PlacementPolicy>) -> (String, f64, usize) {
    let net = CrossTraffic::new(geo_network(&placement(), 0.02), flows());
    let mut h: StorageHarness<u64> = StorageHarness::build(
        RpConfig::uniform(N, 1),
        1,
        0x91ACE,
        net,
        DynOptions::default(),
    );
    let name = policy.name().to_string();
    let mut driver = PlacementDriver::new(policy, vec![h.client_actor(0)]);

    // Observe: six warmup ops fill the delay/utilization matrices.
    for v in 0..6u64 {
        if v % 2 == 0 {
            h.write(0, v).unwrap();
        } else {
            h.read(0).unwrap();
        }
    }
    // Decide + reassign.
    let issued = driver.tick(&mut h);
    h.settle();
    let decision = driver.log.last().expect("one decision").clone();
    println!(
        "{name:<18} proposed {} ({} transfer(s) issued)",
        decision.proposed, issued
    );

    // Measure twelve steady-state ops.
    h.write(0, 100).unwrap();
    h.read(0).unwrap();
    for v in 0..12u64 {
        if v % 2 == 0 {
            h.write(0, 200 + v).unwrap();
        } else {
            h.read(0).unwrap();
        }
    }
    let completed = &h
        .world
        .actor::<DynClient<u64>>(h.client_actor(0))
        .expect("client")
        .driver
        .completed;
    let measured = &completed[8..];
    let mean_ms = measured
        .iter()
        .map(|o| (o.response - o.invoke) as f64 / 1e6)
        .sum::<f64>()
        / measured.len() as f64;

    // Whatever the policy did, the system stayed correct.
    h.settle();
    check_linearizable(&h.history()).expect("linearizable under adaptive placement");
    let report = audit_transfers(h.config(), &h.all_completed_transfers());
    assert!(report.is_clean(), "{:?}", report.violations);
    (name, mean_ms, issued)
}

fn main() {
    println!("geo-replicated storage under cross traffic; one decision tick\n");
    let mut results = Vec::new();
    for policy in [
        Box::new(Static) as Box<dyn PlacementPolicy>,
        Box::new(LatencyGreedy::default()),
        Box::new(UtilizationAware::default()),
    ] {
        results.push(run(policy));
    }
    println!();
    for (name, mean_ms, _) in &results {
        println!("{name:<18} mean op latency {mean_ms:>7.2} ms");
    }
    let static_ms = results[0].1;
    let best = results[1..]
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert!(
        best.1 < static_ms,
        "an adaptive policy should beat static ({:.2} vs {static_ms:.2})",
        best.1
    );
    println!(
        "\nadaptive placement ({}) beat static by {:.2}x",
        best.0,
        static_ms / best.1
    );
}
