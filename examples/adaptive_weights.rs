//! The full adaptive loop the paper points at (§VI, citing AWARE): monitor
//! replica latencies, derive target weights, plan C1/C2-compatible pairwise
//! transfers, and execute them on the live system — then watch the loop
//! react to a regime shift.
//!
//! Run with: `cargo run --example adaptive_weights`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr::core::{audit_transfers, RpConfig, RpHarness};
use awr::monitor::{plan_transfers, LatencyMonitor, RegimeShift, WeightPolicy};
use awr::sim::UniformLatency;
use awr::types::ServerId;

fn main() {
    let cfg = RpConfig::uniform(7, 2);
    let mut system = RpHarness::build(cfg.clone(), 1, 7, UniformLatency::new(1_000, 60_000));

    // A synthetic latency regime: servers 5–7 degrade at sample 50.
    let regime = RegimeShift {
        before: vec![15.0, 15.0, 15.0, 18.0, 18.0, 20.0, 20.0],
        after: vec![15.0, 15.0, 15.0, 18.0, 18.0, 200.0, 220.0],
        at_sample: 50,
    };

    let mut monitor = LatencyMonitor::new(7, 0.2);
    let policy = WeightPolicy::default();

    for epoch in 0..2 {
        // Observe 50 samples per epoch (before/after the shift).
        for k in 0..50u64 {
            let sample = epoch * 50 + k;
            for s in cfg.servers() {
                monitor.observe(s, regime.latency(s, sample));
            }
        }

        // Derive targets and a transfer plan from the *current* weights.
        let current = system.weights_seen_by(ServerId(0));
        let targets = policy.targets(&cfg, &monitor.estimates_or(50.0));
        let plan = plan_transfers(&current, &targets);
        println!(
            "epoch {epoch}: estimates = {:?}",
            monitor
                .estimates_or(0.0)
                .iter()
                .map(|x| format!("{x:.0}"))
                .collect::<Vec<_>>()
        );
        println!("  current weights: {current}");
        println!("  target  weights: {targets}");
        println!("  plan: {} transfer(s)", plan.len());

        // Execute: every donor drives its own transfer (C1); the protocol's
        // local check (C2) guards the floor even if the plan raced.
        for t in &plan {
            let out = system
                .transfer_and_wait(t.from, t.to, t.delta)
                .expect("transfer completes");
            println!(
                "    {}→{} {}: {}",
                t.from,
                t.to,
                t.delta,
                if out.is_effective() {
                    "effective"
                } else {
                    "null"
                }
            );
        }
        system.settle();
    }

    let final_weights = system.weights_seen_by(ServerId(0));
    println!("final weights: {final_weights}");
    // The degraded servers shed weight; the healthy ones picked it up.
    assert!(final_weights.weight(ServerId(5)) < final_weights.weight(ServerId(0)));

    let report = audit_transfers(&cfg, &system.all_completed());
    assert!(report.is_clean());
    println!(
        "audit clean across the whole adaptive run ({} effective transfers)",
        report.effective
    );
}
