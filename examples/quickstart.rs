//! Quickstart: spin up a restricted pairwise weight reassignment system,
//! move some voting power around, and read it back — the 60-second tour.
//!
//! Run with: `cargo run --example quickstart`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr::core::{audit_transfers, RpConfig, RpHarness};
use awr::quorum::{QuorumSystem, WeightedMajorityQuorumSystem};
use awr::sim::UniformLatency;
use awr::types::{Ratio, ServerId};

fn main() {
    // Seven servers, up to two may crash, everyone starts with weight 1.
    // The RP-Integrity floor is W_S0 / (2(n−f)) = 7/10: no server may ever
    // drop to 0.7 or below, which keeps a weighted quorum alive through any
    // two crashes (Property 1, forever).
    let cfg = RpConfig::uniform(7, 2);
    println!(
        "floor = {}, quorum threshold = {}",
        cfg.floor(),
        cfg.quorum_threshold()
    );

    // A simulated asynchronous network: per-message random delays.
    let mut system = RpHarness::build(cfg.clone(), 1, 42, UniformLatency::new(1_000, 80_000));

    // s4 transfers 0.25 of its voting power to s1. Only s4 can move s4's
    // weight (condition C1), and the local check `weight > Δ + floor`
    // (condition C2) makes the transfer effective without any consensus.
    let outcome = system
        .transfer_and_wait(ServerId(3), ServerId(0), Ratio::dec("0.25"))
        .expect("transfer should complete");
    println!(
        "transfer s4→s1 completed: effective = {}, change = {}",
        outcome.is_effective(),
        outcome.complete_change()
    );

    // Anyone can read a server's changes (Algorithm 3) and compute weights.
    let result = system.read_changes(0, ServerId(0)).expect("read_changes");
    println!("s1's weight is now {}", result.weight());
    assert_eq!(result.weight(), Ratio::dec("1.25"));

    // A transfer that would breach the floor completes *null* — the paper's
    // Validity-I abort semantics.
    let outcome = system
        .transfer_and_wait(ServerId(3), ServerId(1), Ratio::dec("0.5"))
        .expect("transfer should complete (as null)");
    assert!(!outcome.is_effective());
    println!(
        "over-draining transfer aborted: {}",
        outcome.complete_change()
    );

    // The audit replays every completed transfer and certifies the paper's
    // safety properties (RP-Integrity, P-Integrity, C1, conservation).
    system.settle();
    let report = audit_transfers(&cfg, &system.all_completed());
    assert!(report.is_clean());
    println!(
        "audit clean: {} effective, {} null transfers",
        report.effective, report.null
    );

    // Weighted quorums shrink where weight concentrates.
    let weights = system.weights_seen_by(ServerId(0));
    let qs = WeightedMajorityQuorumSystem::with_threshold_total(weights, cfg.initial_total());
    println!("smallest quorum now has {} servers", qs.min_quorum_size());
}
