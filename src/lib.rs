//! # awr — Asynchronous Weight Reassignment
//!
//! A comprehensive Rust reproduction of *“How Hard is Asynchronous Weight
//! Reassignment?”* (Hasan Heydari, Guthemberg Silvestre, Alysson Bessani —
//! ICDCS 2023, extended version arXiv:2306.03185).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`types`] — exact rational weights, change quadruples, change sets, tags;
//! * [`quorum`] — majority & weighted-majority quorum systems, Property 1,
//!   and the weight placement policies (`quorum::placement`);
//! * [`sim`] — deterministic discrete-event simulator for asynchronous
//!   message-passing systems, with bandwidth-aware networks and
//!   cross-traffic workloads (`sim::workload`), plus a threaded runtime;
//! * [`rb`] — uniform reliable broadcast for the crash model;
//! * [`core`] — the paper's contribution: the weight-reassignment problem
//!   family, the consensus reductions (Algorithms 1–2), and the restricted
//!   pairwise weight reassignment protocol (Algorithms 3–4);
//! * [`storage`] — dynamic-weighted atomic storage (Algorithms 5–6), static
//!   baselines, linearizability checkers, and the adaptive placement
//!   driver (`storage::placement`);
//! * [`consensus`] — single-decree Paxos and the consensus-based
//!   reassignment baseline;
//! * [`epoch`] — the epoch-based reassignment baseline;
//! * [`monitor`] — synthetic monitoring, weight policies, transfer planning.
//!
//! See `README.md` for a tour, `docs/PAPER_MAP.md` for the paper→code
//! table, and `ROADMAP.md` for the open items.
//!
//! # Quickstart
//!
//! ```
//! use awr::types::{Ratio, ServerId};
//!
//! // Weights are exact rationals; 0.1 is really one tenth.
//! let w = Ratio::dec("0.1");
//! assert_eq!(w + w + w, Ratio::dec("0.3"));
//! # let _ = ServerId(0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use awr_consensus as consensus;
pub use awr_core as core;
pub use awr_epoch as epoch;
pub use awr_monitor as monitor;
pub use awr_quorum as quorum;
pub use awr_rb as rb;
pub use awr_sim as sim;
pub use awr_storage as storage;
pub use awr_types as types;
