//! Workspace-local stand-in for `parking_lot`: [`Mutex`] and [`RwLock`]
//! with parking_lot's non-poisoning, guard-returning API, implemented over
//! `std::sync`. Poison errors are swallowed by recovering the inner guard —
//! matching parking_lot's semantics, where a panicking holder does not
//! poison the lock.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("data", &*self.lock())
            .finish()
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &*self.read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn not_poisoned_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
