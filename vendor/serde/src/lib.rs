//! Workspace-local stand-in for the `serde` crate.
//!
//! This build environment has no access to a crate registry, so the
//! workspace vendors the small slice of serde's API it actually uses: the
//! [`Serialize`] / [`Deserialize`] traits, their derive macros, and enough
//! impls for the standard types that appear in `awr_types`. Instead of
//! serde's visitor-based zero-copy data model, everything round-trips
//! through a simple owned [`Value`] tree — `serde_json` then renders and
//! parses that tree. The public trait names, bounds (`for<'de>
//! Deserialize<'de>`), and derive spellings match real serde so the
//! workspace source would compile unchanged against the real crate.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The intermediate tree every serializable value passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (wide enough for `i128` weights).
    Int(i128),
    /// An unsigned integer too large for `Int`.
    UInt(u128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A string-keyed map (struct fields, externally tagged enums).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the map entries if this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced by deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Error {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field in a deserialized map.
pub fn map_get<'v>(map: &'v [(String, Value)], key: &str) -> Result<&'v Value, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the intermediate tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
///
/// The lifetime parameter mirrors real serde's `Deserialize<'de>` so bounds
/// like `for<'de> Deserialize<'de>` written against the real crate still
/// compile; this owned-value implementation never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs a value from the intermediate tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Convenience alias matching real serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match i128::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl<'de> Deserialize<'de> for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => u128::try_from(*i).map_err(|_| Error::custom("negative u128")),
            Value::UInt(u) => Ok(*u),
            _ => Err(Error::custom("expected integer for u128")),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<K: Serialize + fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                Ok(($($t::from_value(s.get($idx).ok_or_else(|| Error::custom("tuple too short"))?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let v = 42u64.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), 42);
        let v = (-7i128).to_value();
        assert_eq!(i128::from_value(&v).unwrap(), -7);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn map_get_reports_missing_field() {
        let m = vec![("a".to_string(), Value::Int(1))];
        assert!(map_get(&m, "a").is_ok());
        assert!(map_get(&m, "b").is_err());
    }
}
