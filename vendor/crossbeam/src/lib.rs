//! Workspace-local stand-in for `crossbeam`, covering the channel subset
//! the threaded actor runtime uses: `unbounded()`, cloneable `Sender`s, and
//! a blocking `Receiver`. Backed by `std::sync::mpsc`, which provides the
//! same FIFO-per-sender guarantees the runtime documents.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when sending on a channel with no live receiver.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on a channel with no live senders.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_per_sender_and_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            })
            .join()
            .unwrap();
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
