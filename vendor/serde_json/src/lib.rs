//! Workspace-local stand-in for `serde_json`: renders and parses the
//! vendored [`serde::Value`] tree as JSON text.
//!
//! Supports exactly the JSON subset the workspace produces: null, booleans,
//! integers up to `u128`/`i128`, floats, strings (with escapes), arrays,
//! and string-keyed objects.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Error type for serialization and deserialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        // Ensure round-trippable floats keep a decimal point or exponent.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            out.push_str(&s);
        } else {
            out.push_str(&s);
            out.push_str(".0");
        }
    } else {
        // JSON has no Infinity/NaN; mirror serde_json's `null`.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
                Ok(Value::Seq(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
                Ok(Value::Map(entries))
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let mut chars = std::str::from_utf8(rest)
                .map_err(|_| Error::new("invalid UTF-8"))?
                .chars();
            match chars.next() {
                None => return Err(Error::new("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this workspace.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(
            from_str::<i128>("-170141183460469231731687303715884105728").unwrap(),
            i128::MIN
        );
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>(" false ").unwrap());
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
