//! Property tests pinning the histogram against a sorted-vector oracle.

use hist::Histogram;
use proptest::prelude::*;

/// The exact order statistic the histogram approximates: the
/// rank-`⌈q·n⌉` smallest sample (rank at least 1).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Sample sets spanning the interesting magnitudes: exact small buckets,
/// protocol-latency scales, and the saturation extremes. (The vendored
/// proptest has no `prop_oneof!`; a selector tuple does the same job.)
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u32..5, 0u64..10_000_000_000), 1..400).prop_map(|raw| {
        raw.into_iter()
            .map(|(sel, v)| match sel {
                0 => v % 64,
                1 => 1_000 + v % 99_000,
                2 => v,
                3 => u64::MAX,
                _ => 0,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// quantile(q) is within one bucket of the exact order statistic:
    /// it never undershoots the oracle, and overshoots by at most the
    /// oracle's bucket width.
    #[test]
    fn quantile_within_one_bucket_of_oracle(
        vs in samples(),
        qs in proptest::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let mut h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        for q in qs {
            let exact = oracle_quantile(&sorted, q);
            let got = h.quantile(q);
            prop_assert!(got >= exact, "q={q}: {got} < oracle {exact}");
            let slack = Histogram::bucket_error(exact);
            prop_assert!(
                got <= exact.saturating_add(slack),
                "q={q}: {got} > oracle {exact} + bucket width {slack}"
            );
        }
        // q = 1.0 is exact: the clamp to the observed max.
        prop_assert_eq!(h.quantile(1.0), *sorted.last().unwrap());
    }

    /// Merging two histograms is exactly equivalent to feeding both
    /// sample streams into one.
    #[test]
    fn merge_equals_feed_all(a in samples(), b in samples()) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut all = Histogram::new();
        for &v in &a {
            ha.record(v);
            all.record(v);
        }
        for &v in &b {
            hb.record(v);
            all.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(&ha, &all);
        for q in [0.5, 0.99, 0.999] {
            prop_assert_eq!(ha.quantile(q), all.quantile(q));
        }
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
    }

    /// Exact aggregates survive any input: count, min, max, mean.
    #[test]
    fn exact_aggregates(vs in samples()) {
        let mut h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        prop_assert_eq!(h.count(), vs.len() as u64);
        prop_assert_eq!(h.min(), *vs.iter().min().unwrap());
        prop_assert_eq!(h.max(), *vs.iter().max().unwrap());
        let mean = vs.iter().map(|&v| v as f64).sum::<f64>() / vs.len() as f64;
        // Sum is tracked in u128, so the only error is the final division.
        prop_assert!((h.mean() - mean).abs() <= mean * 1e-12 + 1e-9);
    }

    /// record_n(v, n) is n records of v.
    #[test]
    fn record_n_equals_repeated_record(v in 0u64..u64::MAX, n in 1u64..50) {
        let mut a = Histogram::new();
        a.record_n(v, n);
        let mut b = Histogram::new();
        for _ in 0..n {
            b.record(v);
        }
        prop_assert_eq!(a, b);
    }
}
