//! Pins the zero-allocation contract on the record hot path: an
//! open-loop run records millions of latencies, so a single allocation
//! per sample would dominate the harness.
//!
//! The counting shim is the one place this crate touches `unsafe`: a
//! `GlobalAlloc` that delegates verbatim to the system allocator and
//! counts calls. The crate-level lint is `deny`, overridden here only.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hist::Histogram;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Delegates to [`System`], counting every allocation.
struct CountingAlloc;

// SAFETY: forwards every call unchanged to the system allocator; the
// only addition is a relaxed counter bump, which allocates nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn record_allocates_nothing() {
    // Construction is the histogram's one allowed allocation.
    let mut h = Histogram::new();
    let mut other = Histogram::new();
    for v in [1u64, 77, 100_000, u64::MAX] {
        other.record(v);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..200_000u64 {
        h.record(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h.record_n(i, 3);
    }
    // Merge and quantile are also allocation-free (flat arrays, no
    // intermediate collections).
    h.merge(&other);
    let _ = h.quantile(0.99);
    let _ = h.quantile(0.999);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "record/merge/quantile hot path allocated"
    );
    assert_eq!(h.count(), 200_000 * 4 + 4);
}
