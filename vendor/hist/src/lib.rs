//! A fixed-bucket, log-scaled value histogram — the vendored stand-in
//! for `hdrhistogram`, covering exactly the surface the workspace's
//! open-loop load harness needs.
//!
//! # Bucket scheme
//!
//! Values are `u64` (the workspace records latencies in nanoseconds).
//! The first 32 buckets are exact (one per value 0–31); above that,
//! each power-of-two range splits into 32 linear sub-buckets, so the
//! bucket containing `v` spans at most `v/32` — a ≤ 3.125% relative
//! error, constant across the full `u64` range. That fixes the bucket
//! count at `60×32 = 1920` (≈ 15 KB of counters), small enough to
//! pre-allocate flat:
//!
//! * [`Histogram::record`] is array-index + add — **zero allocations**
//!   on the hot path (asserted by a counting-allocator test);
//! * [`Histogram::merge`] is element-wise add, so per-client or
//!   per-shard histograms combine exactly — `merge(a, b)` is
//!   indistinguishable from having fed both streams into one histogram;
//! * [`Histogram::quantile`] returns the upper edge of the bucket
//!   holding the rank-`⌈q·n⌉` value (clamped to the observed max), so
//!   it is within one bucket (≤ 3.125%) of the exact order statistic.
//!
//! `min`/`max`/`mean` are tracked exactly, outside the bucket grid.

#![warn(missing_docs)]

/// Sub-bucket resolution: each power-of-two range splits into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per power-of-two range.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: values below `SUB` get exact buckets, and each
/// possible `shift = floor(log2 v) - SUB_BITS` in `0..=58` contributes
/// `SUB` sub-buckets at indices `[32(shift+1), 32(shift+2))`.
const N_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// The bucket index holding `v`.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = top - SUB_BITS;
    // sub in [SUB, 2*SUB): the top SUB_BITS+1 bits of v.
    let sub = (v >> shift) as usize;
    (shift as usize) * SUB + sub
}

/// The largest value mapping to bucket `i` — the histogram's quantile
/// representative.
#[inline]
fn upper_edge(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let shift = (i / SUB - 1) as u32;
    let sub = (SUB + i % SUB) as u64;
    // ((sub + 1) << shift) - 1, saturating at the top of the u64 range
    // (only the very last sub-bucket overflows).
    let up = ((sub + 1) as u128) << shift;
    if up > u64::MAX as u128 {
        u64::MAX
    } else {
        up as u64 - 1
    }
}

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram. This is the only allocation the histogram
    /// ever performs.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. Allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`. Allocation-free.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[index_of(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper edge of the
    /// bucket holding the rank-`⌈q·count⌉` sample (rank at least 1),
    /// clamped to the exact observed maximum. Within one bucket
    /// (≤ 3.125% relative error) of the exact order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`. Exact: the result equals a histogram
    /// fed both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to empty without deallocating.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// The relative half-width of the bucket containing `v` — the
    /// worst-case quantile error at that magnitude.
    pub fn bucket_error(v: u64) -> u64 {
        upper_edge(index_of(v)) - lower_edge(index_of(v))
    }
}

/// The smallest value mapping to bucket `i`.
#[inline]
fn lower_edge(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let shift = (i / SUB - 1) as u32;
    let sub = (SUB + i % SUB) as u64;
    sub << shift
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for q in [0.01f64, 0.25, 0.5, 0.99] {
            let rank = ((q * 32.0).ceil() as u64).max(1);
            assert_eq!(h.quantile(q), rank - 1, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.mean(), 15.5);
    }

    #[test]
    fn index_and_edges_are_consistent() {
        // Every probed value lands in a bucket whose edges bracket it.
        let mut probes = vec![0u64, 1, 31, 32, 33, 63, 64, 100, 1_000];
        for shift in 6..64 {
            probes.push(1u64 << shift);
            probes.push((1u64 << shift) + 1);
            probes.push((1u64 << shift) - 1);
        }
        probes.push(u64::MAX);
        for &v in &probes {
            let i = index_of(v);
            assert!(i < N_BUCKETS, "index {i} out of range for {v}");
            assert!(lower_edge(i) <= v, "lower_edge({i}) > {v}");
            assert!(upper_edge(i) >= v, "upper_edge({i}) < {v}");
            // Relative width <= 1/SUB above the exact range.
            if v >= SUB as u64 {
                let width = upper_edge(i) - lower_edge(i);
                assert!(
                    (width as f64) <= v as f64 / SUB as f64,
                    "bucket at {v} too wide: {width}"
                );
            }
        }
    }

    #[test]
    fn adjacent_buckets_tile_the_range() {
        for i in 0..N_BUCKETS - 1 {
            if upper_edge(i) == u64::MAX {
                continue;
            }
            assert_eq!(
                upper_edge(i) + 1,
                lower_edge(i + 1),
                "gap or overlap between buckets {i} and {}",
                i + 1
            );
        }
    }

    #[test]
    fn quantile_of_point_mass() {
        let mut h = Histogram::new();
        h.record_n(1_000_000, 10_000);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let got = h.quantile(q);
            assert!(
                (1_000_000..=1_000_000 + 1_000_000 / 32 + 1).contains(&got),
                "q={q} got {got}"
            );
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_equals_feed_all_smoke() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [5u64, 77, 10_000, u64::MAX, 0, 123_456_789] {
            a.record(v);
            all.record(v);
        }
        for v in [9u64, 77, 2, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(42);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h, Histogram::new());
    }
}
