//! Derive macros for the workspace-local `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` with
//! hand-rolled token parsing (no `syn`/`quote` in this offline build).
//! Supported shapes — the ones that occur in this workspace:
//!
//! * structs with named fields (serialized as a string-keyed map);
//! * tuple structs (arity 1 is transparent/newtype, like real serde;
//!   larger arities become a sequence);
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   like real serde's default representation);
//! * generic type parameters (each gets a `Serialize`/`Deserialize`
//!   bound on the impl, bounds written on the type are repeated).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by mapping the type onto `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize` by rebuilding the type from `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsed shape of the item.
// ---------------------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Original generic parameter tokens (with bounds), e.g. `V: Clone`.
    generics_decl: Vec<String>,
    /// Bare parameter names for type arguments, e.g. `V` or `'a`.
    generic_args: Vec<String>,
    /// Names of type parameters (excluding lifetimes/consts) that need
    /// Serialize/Deserialize bounds.
    type_params: Vec<String>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-level parsing.
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Punct(p)) = self.peek() {
                if p.as_char() == '!' {
                    self.pos += 1;
                }
            }
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.pos += 1;
                }
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consumes `<...>` generics if present, returning the inner tokens.
    fn take_generics(&mut self) -> Vec<TokenTree> {
        let mut inner = Vec::new();
        let starts = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<');
        if !starts {
            return inner;
        }
        self.pos += 1;
        let mut depth = 1usize;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            inner.push(t);
        }
        inner
    }
}

/// Splits a token slice at top-level commas (angle-bracket depth 0).
fn split_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0usize;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn tokens_to_string(toks: &[TokenTree]) -> String {
    let stream: TokenStream = toks.iter().cloned().collect();
    stream.to_string()
}

/// Parses one generic parameter: returns (decl-with-bounds, bare-name,
/// is-type-param).
fn parse_generic_param(toks: &[TokenTree]) -> Result<(String, String, bool), String> {
    let decl = tokens_to_string(toks);
    // Lifetime: leading `'` punct then ident.
    if let Some(TokenTree::Punct(p)) = toks.first() {
        if p.as_char() == '\'' {
            let name = match toks.get(1) {
                Some(TokenTree::Ident(id)) => format!("'{id}"),
                _ => return Err("malformed lifetime parameter".into()),
            };
            return Ok((decl, name, false));
        }
    }
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
            let name = match toks.get(1) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return Err("malformed const parameter".into()),
            };
            Ok((decl, name, false))
        }
        Some(TokenTree::Ident(id)) => Ok((decl, id.to_string(), true)),
        other => Err(format!("unsupported generic parameter start: {other:?}")),
    }
}

/// Parses the fields of a brace-delimited (named) field list.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor {
        toks: group.into_iter().collect(),
        pos: 0,
    };
    let mut names = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        let name = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: everything up to a top-level comma.
        let mut depth = 0usize;
        while let Some(t) = c.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        c.pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            c.pos += 1;
        }
        names.push(name);
    }
    Ok(names)
}

/// Counts the fields of a paren-delimited (tuple) field list.
fn parse_tuple_fields(group: TokenStream) -> usize {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    split_commas(&toks).len()
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor {
        toks: group.into_iter().collect(),
        pos: 0,
    };
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                c.pos += 1;
                Fields::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                c.pos += 1;
                Fields::Named(parse_named_fields(g)?)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        let mut depth = 0usize;
        while let Some(t) = c.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        c.pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            c.pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor {
        toks: input.into_iter().collect(),
        pos: 0,
    };
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident()?;
    if kind != "struct" && kind != "enum" {
        return Err(format!(
            "derive target must be a struct or enum, found `{kind}`"
        ));
    }
    let name = c.expect_ident()?;
    let generics = c.take_generics();
    let mut generics_decl = Vec::new();
    let mut generic_args = Vec::new();
    let mut type_params = Vec::new();
    for param in split_commas(&generics) {
        if param.is_empty() {
            continue;
        }
        let (decl, bare, is_type) = parse_generic_param(&param)?;
        generics_decl.push(decl);
        generic_args.push(bare.clone());
        if is_type {
            type_params.push(bare);
        }
    }
    // Optional where clause (not used in this workspace; reject loudly so a
    // future addition fails at compile time instead of mis-serializing).
    if let Some(TokenTree::Ident(id)) = c.peek() {
        if id.to_string() == "where" {
            return Err("where clauses are not supported by the vendored serde_derive".into());
        }
    }
    let body = if kind == "struct" {
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => return Err(format!("unsupported struct body: {other:?}")),
        }
    } else {
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        }
    };
    Ok(Item {
        name,
        generics_decl,
        generic_args,
        type_params,
        body,
    })
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

impl Item {
    /// `<'de, V: Clone>`-style impl generics, optionally with a leading
    /// extra parameter (used for the `'de` of Deserialize).
    fn impl_generics(&self, extra: Option<&str>) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(e) = extra {
            parts.push(e.to_string());
        }
        parts.extend(self.generics_decl.iter().cloned());
        if parts.is_empty() {
            String::new()
        } else {
            format!("<{}>", parts.join(", "))
        }
    }

    fn type_args(&self) -> String {
        if self.generic_args.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generic_args.join(", "))
        }
    }

    fn where_clause(&self, bound: &str) -> String {
        if self.type_params.is_empty() {
            String::new()
        } else {
            let preds: Vec<String> = self
                .type_params
                .iter()
                .map(|p| format!("{p}: {bound}"))
                .collect();
            format!("where {}", preds.join(", "))
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl{} ::serde::Serialize for {name}{} {} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        item.impl_generics(None),
        item.type_args(),
        item.where_clause("::serde::Serialize")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let err = |msg: &str| format!("::std::result::Result::Err(::serde::Error::custom({msg:?}))");
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, {f:?})?)?")
                })
                .collect();
            format!(
                "let __m = match __v {{ ::serde::Value::Map(m) => m, _ => return {} }};\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                err(&format!("expected map for struct {name}")),
                inits.join(", ")
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__s.get({i}).ok_or_else(|| ::serde::Error::custom(\"tuple struct sequence too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __s = match __v {{ ::serde::Value::Seq(s) => s, _ => return {} }};\n\
                 ::std::result::Result::Ok({name}({}))",
                err(&format!("expected sequence for tuple struct {name}")),
                inits.join(", ")
            )
        }
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!(
                        "::serde::Value::Str(__s) if __s == {vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__seq.get({i}).ok_or_else(|| ::serde::Error::custom(\"variant sequence too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{ let __seq = __inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for tuple variant\"))?; ::std::result::Result::Ok({name}::{vname}({})) }},",
                                inits.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(__mm, {f:?})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{ let __mm = __inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for struct variant\"))?; ::std::result::Result::Ok({name}::{vname} {{ {} }}) }},",
                                inits.join(", ")
                            )
                        }
                        Fields::Unit => unreachable!("filtered above"),
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                    {}\n\
                    ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                        let (__tag, __inner) = &__m[0];\n\
                        match __tag.as_str() {{ {} _ => {} }}\n\
                    }},\n\
                    _ => {}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join(" "),
                err(&format!("unknown variant for enum {name}")),
                err(&format!("expected externally tagged value for enum {name}"))
            )
        }
    };
    format!(
        "#[automatically_derived] impl{} ::serde::Deserialize<'de> for {name}{} {} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}",
        item.impl_generics(Some("'de")),
        item.type_args(),
        {
            let mut w = item.where_clause("::serde::Deserialize<'de>");
            if w.is_empty() {
                w = String::new();
            }
            w
        }
    )
}
