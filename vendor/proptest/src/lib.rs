//! Workspace-local stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range and tuple strategies, `proptest::collection::vec`,
//! [`ProptestConfig`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Differences from the real
//! crate: no shrinking (a failing case reports its inputs but is not
//! minimized), and the RNG is seeded deterministically from the test name,
//! so failures reproduce exactly on re-run.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: draw fresh ones.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The RNG handed to strategies. Deterministic per test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes), so each property has
    /// its own deterministic stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn range_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }

    fn range_i128(&mut self, start: i128, span: u128) -> i128 {
        let hi = self.next_u64() as u128;
        let lo = self.next_u64() as u128;
        start.wrapping_add((((hi << 64) | lo) % span) as i128)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values (subset of proptest's `Strategy`; the associated
/// type is named `Value` like the real crate's `Strategy::Value`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A strategy that always yields the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                rng.range_i128(self.start as i128, span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                rng.range_i128(start as i128, span) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty strategy range");
        loop {
            let c = lo + rng.range_u64((hi - lo) as u64) as u32;
            if let Some(c) = char::from_u32(c) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size window for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.range_u64(span) as usize);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn vec_sizes_respect_bounds() {
            let s = vec(0u32..10, 2..5);
            let mut rng = TestRng::deterministic("vec_sizes");
            for _ in 0..100 {
                let v = s.generate(&mut rng);
                assert!((2..5).contains(&v.len()));
                assert!(v.iter().all(|&x| x < 10));
            }
            let fixed = vec(0u32..10, 7usize);
            assert_eq!(fixed.generate(&mut rng).len(), 7);
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests. Each function runs [`ProptestConfig::cases`]
/// accepted cases with inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let __strategy = ( $( $strat, )* );
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __cfg.cases.saturating_mul(10).max(10);
                while __accepted < __cfg.cases && __attempts < __max_attempts {
                    __attempts += 1;
                    let ( $( $arg, )* ) = $crate::Strategy::generate(&__strategy, &mut __rng);
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "property `{}` failed at case {}: {}\n  inputs: {}",
                                stringify!($name), __accepted, __msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Rejects the current case, drawing fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn mapped_values_are_even(x in small()) {
            prop_assert!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_assume(a in 0i64..50, b in 0i64..50) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn vec_strategy_in_macro(xs in collection::vec(1u8..5, 0..6)) {
            prop_assert!(xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| (1..5).contains(&x)));
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let sa: Vec<u64> = (0..10).map(|_| (0u64..1000).generate(&mut a)).collect();
        let sb: Vec<u64> = (0..10).map(|_| (0u64..1000).generate(&mut b)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
