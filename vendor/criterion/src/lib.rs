//! Workspace-local stand-in for `criterion`.
//!
//! Implements the benchmark surface this workspace uses — groups,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!` —
//! with a simple but honest measurement loop: batches are auto-calibrated
//! to a minimum duration, several samples are taken, and the *median*
//! ns/iter is reported (robust to scheduler noise). No HTML reports, no
//! statistical regression machinery.

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver passed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 15 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            min_batch: Duration::from_millis(5),
            _criterion: self,
        }
    }
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    min_batch: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Sets the target measurement time (interpreted as the per-sample
    /// batch floor).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.min_batch = d / 10;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            min_batch: self.min_batch,
            samples: self.sample_size,
            result_ns: None,
        };
        f(&mut b, input);
        self.report(&id.id, b.result_ns);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            min_batch: self.min_batch,
            samples: self.sample_size,
            result_ns: None,
        };
        f(&mut b);
        self.report(&id.to_string(), b.result_ns);
        self
    }

    fn report(&self, id: &str, result_ns: Option<f64>) {
        let full = format!("{}/{}", self.name, id);
        match result_ns {
            Some(ns) => println!("{full:<48} time: {}", format_ns(ns)),
            None => println!("{full:<48} time: <no iterations run>"),
        }
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Formats nanoseconds-per-iteration human-readably.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Runs and times a single benchmark's closure.
pub struct Bencher {
    min_batch: Duration,
    samples: usize,
    result_ns: Option<f64>,
}

impl Bencher {
    /// Measures `f`, reporting the median ns/iter over calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count whose batch takes ≥ min_batch.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_batch || iters >= 1 << 28 {
                break;
            }
            // Aim straight for the target, with headroom.
            let scale =
                (self.min_batch.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64).ceil() as u64;
            iters = iters.saturating_mul(scale.clamp(2, 1024)).min(1 << 28);
        }
        // Measure.
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(per_iter[per_iter.len() / 2]);
    }

    /// The measured median ns/iter, if [`Bencher::iter`] ran.
    pub fn result_ns(&self) -> Option<f64> {
        self.result_ns
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` / `--list` probe the binary; don't
            // spend time measuring there.
            let args: ::std::vec::Vec<String> = ::std::env::args().collect();
            if args.iter().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut measured = None;
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            measured = b.result_ns();
        });
        g.finish();
        assert!(measured.unwrap() > 0.0);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_500.0), "12.50 µs");
        assert_eq!(format_ns(3_000_000.0), "3.00 ms");
    }
}
