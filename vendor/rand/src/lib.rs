//! Workspace-local stand-in for the `rand` crate (0.9-style API).
//!
//! Provides [`Rng::random_range`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] backed by xoshiro256++ seeded via SplitMix64. The
//! simulator only needs deterministic, well-mixed streams — not
//! cryptographic strength — and determinism per seed is exactly what the
//! replay tests assert.

use std::ops::{Range, RangeInclusive};

/// A source of randomness (subset of rand 0.9's `Rng`).
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns a uniformly random `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_f64() < p
    }
}

/// A seedable randomness source (subset of rand 0.9's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample (subset of `SampleRange`).
///
/// Like real rand, this is generic over the element type via
/// [`SampleUniform`], so integer-literal ranges unify with the surrounding
/// inference context (`rng.random_range(0..100) < some_u32` samples a u32).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

/// Element types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)` (`inclusive` widens to `[low, high]`).
    fn sample_between<R: Rng>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(rng, start, end, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128
                    + if inclusive { 1 } else { 0 };
                let offset = uniform_u128(rng, span);
                ((low as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for i128 {
    fn sample_between<R: Rng>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
        let span = high.wrapping_sub(low) as u128;
        if inclusive && span == u128::MAX {
            let hi = rng.next_u64() as u128;
            let lo = rng.next_u64() as u128;
            return ((hi << 64) | lo) as i128;
        }
        let span = span + if inclusive { 1 } else { 0 };
        low.wrapping_add(uniform_u128(rng, span) as i128)
    }
}

impl SampleUniform for u128 {
    fn sample_between<R: Rng>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
        let span = high.wrapping_sub(low);
        if inclusive && span == u128::MAX {
            let hi = rng.next_u64() as u128;
            let lo = rng.next_u64() as u128;
            return (hi << 64) | lo;
        }
        let span = span + if inclusive { 1 } else { 0 };
        low.wrapping_add(uniform_u128(rng, span))
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
                let unit = rng.random_f64() as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform value in `[0, span)` via 128-bit modular reduction. The modulo
/// bias is at most `span / 2^128` — irrelevant for simulation workloads.
fn uniform_u128<R: Rng>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let hi = rng.next_u64() as u128;
    let lo = rng.next_u64() as u128;
    ((hi << 64) | lo) % span
}

/// Pre-built generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (public-domain
    /// algorithm by Blackman & Vigna), seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.random_range(3..10);
            assert!((3..10).contains(&x));
            let y: i64 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z = r.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&z));
            let w: i128 = r.random_range(1i128..1000);
            assert!((1..1000).contains(&w));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.random_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.random_range(5..5);
    }
}
