//! The bounded explorer: depth-first enumeration of every scheduling
//! decision (message-delivery order, timer firings, crash/restart points)
//! with state-hash deduplication and replay-based backtracking.
//!
//! Actors are not clonable, so the search cannot snapshot worlds.
//! Instead a state is *named* by the choice sequence that reaches it:
//! stepping deeper applies one cheap [`Choice`]; backtracking rebuilds the
//! scenario and replays the current prefix. The simulator is fully
//! deterministic, so replays are exact. Dedup hashes combine the world's
//! canonical digest (actor state + in-flight multiset, times excluded)
//! with the durable stores and the fault budget, so two schedules that
//! collide have identical futures and one subtree suffices.
//!
//! Two search modes:
//!
//! * **exhaustive** (`max_depth: None`) — explore until the frontier is
//!   empty; with a finite protocol (no retry timers) this terminates and
//!   proves every reachable state invariant-clean;
//! * **iterative deepening** ([`Explorer::run_deepening`]) — restart with
//!   a doubling depth limit, which finds *minimal-depth* counterexamples
//!   first (the mutation tests use this to keep counterexamples short).

use crate::invariant::{Invariant, StateView};
use crate::scenario::{Choice, RunState, Scenario};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Exploration counters.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// States reached (post-closure), root excluded.
    pub states_visited: u64,
    /// States pruned because their hash was already expanded at an equal
    /// or shallower depth.
    pub states_deduped: u64,
    /// Deepest schedule applied.
    pub max_depth_reached: usize,
    /// Full prefix replays performed while backtracking.
    pub replays: u64,
    /// States cut by the depth limit (0 means the space was exhausted).
    pub depth_limit_hits: u64,
}

/// A found invariant violation, with the schedule that reaches it.
#[derive(Clone, Debug)]
pub struct ViolationReport {
    /// [`Invariant::name`] of the violated property.
    pub invariant: &'static str,
    /// [`Invariant::paper_property`] of the violated property.
    pub paper_property: &'static str,
    /// Human-readable details from the failed check.
    pub detail: String,
    /// The choice schedule reaching the violating state (pre-minimization).
    pub schedule: Vec<Choice>,
}

/// How an exploration ended.
#[derive(Debug)]
pub enum Outcome {
    /// Every state within the bounds satisfied every invariant; if
    /// `stats.depth_limit_hits == 0` the bounds never cut anything and
    /// the result is an exhaustive proof over the scenario.
    Clean(Stats),
    /// An invariant failed.
    Violation(ViolationReport, Stats),
    /// The state budget ran out before the space (or depth bound) was
    /// exhausted; no conclusion beyond the states already checked.
    BudgetExhausted(Stats),
}

impl Outcome {
    /// The counters, whichever way the run ended.
    pub fn stats(&self) -> &Stats {
        match self {
            Outcome::Clean(s) => s,
            Outcome::Violation(_, s) => s,
            Outcome::BudgetExhausted(s) => s,
        }
    }

    /// The violation, if one was found.
    pub fn violation(&self) -> Option<&ViolationReport> {
        match self {
            Outcome::Violation(v, _) => Some(v),
            _ => None,
        }
    }
}

/// A configured search over one scenario.
pub struct Explorer {
    /// The scenario under test.
    pub scenario: Scenario,
    /// The invariant battery to evaluate at every state.
    pub invariants: Vec<Box<dyn Invariant>>,
    /// Depth bound (`None` = exhaustive).
    pub max_depth: Option<usize>,
    /// State budget: abort with [`Outcome::BudgetExhausted`] past this
    /// many visited states.
    pub max_states: Option<u64>,
}

struct Frame {
    choices: Vec<Choice>,
    next: usize,
}

impl Explorer {
    /// An explorer with the default invariant battery and no bounds.
    pub fn new(scenario: Scenario) -> Explorer {
        Explorer {
            scenario,
            invariants: crate::invariant::default_invariants(),
            max_depth: None,
            max_states: None,
        }
    }

    /// Runs one depth-first search under the configured bounds.
    pub fn run(&self) -> Outcome {
        self.run_with_depth(self.max_depth)
    }

    fn run_with_depth(&self, max_depth: Option<usize>) -> Outcome {
        let mut stats = Stats::default();
        let mut visited: HashMap<u64, usize> = HashMap::new();

        let mut rs = RunState::build(&self.scenario);
        let mut path: Vec<Choice> = Vec::new();
        // The world matches `path` unless a prune/backtrack happened since
        // the last apply; replay lazily, only when stepping again.
        let mut world_current = true;

        let root_view = StateView::capture(&rs);
        if let Err(report) = self.check_state(None, &root_view, &path) {
            return Outcome::Violation(report, stats);
        }
        visited.insert(rs.state_digest(), 0);

        let mut views: Vec<StateView> = vec![root_view];
        let mut stack: Vec<Frame> = vec![Frame {
            choices: rs.choices(),
            next: 0,
        }];

        while let Some(frame) = stack.last_mut() {
            if frame.next >= frame.choices.len() {
                stack.pop();
                views.pop();
                if path.pop().is_some() {
                    world_current = false;
                }
                continue;
            }
            let choice = frame.choices[frame.next];
            frame.next += 1;

            if let Some(cap) = self.max_states {
                if stats.states_visited >= cap {
                    return Outcome::BudgetExhausted(stats);
                }
            }

            if !world_current {
                rs = RunState::build(&self.scenario);
                for c in &path {
                    assert!(rs.apply(*c), "deterministic replay diverged");
                }
                stats.replays += 1;
                world_current = true;
            }

            assert!(rs.apply(choice), "explorer chose an inapplicable event");
            path.push(choice);
            stats.states_visited += 1;
            stats.max_depth_reached = stats.max_depth_reached.max(path.len());

            let view = StateView::capture(&rs);
            if let Err(report) = self.check_state(views.last(), &view, &path) {
                return Outcome::Violation(report, stats);
            }

            let depth = path.len();
            let mut expand = true;
            match visited.entry(rs.state_digest()) {
                Entry::Occupied(mut e) => {
                    if *e.get() <= depth {
                        stats.states_deduped += 1;
                        expand = false;
                    } else {
                        // Reached shallower than before: under a depth
                        // limit the old expansion may have been cut, so
                        // re-expand from here.
                        e.insert(depth);
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(depth);
                }
            }
            if expand {
                if let Some(limit) = max_depth {
                    if depth >= limit {
                        let more = !rs.choices().is_empty();
                        if more {
                            stats.depth_limit_hits += 1;
                        }
                        expand = false;
                    }
                }
            }

            if expand {
                views.push(view);
                stack.push(Frame {
                    choices: rs.choices(),
                    next: 0,
                });
            } else {
                path.pop();
                world_current = false;
            }
        }
        Outcome::Clean(stats)
    }

    /// Iterative deepening: runs with a doubling depth limit starting at
    /// `start_depth` until a violation is found, the space is exhausted
    /// under the limit (no cuts — a full proof), or the state budget runs
    /// dry. Counterexamples found this way have near-minimal depth.
    pub fn run_deepening(&self, start_depth: usize) -> Outcome {
        let mut limit = start_depth.max(1);
        loop {
            let outcome = self.run_with_depth(Some(limit));
            match outcome {
                Outcome::Clean(ref stats) if stats.depth_limit_hits > 0 => {
                    limit *= 2;
                }
                other => return other,
            }
        }
    }

    fn check_state(
        &self,
        prev: Option<&StateView>,
        cur: &StateView,
        path: &[Choice],
    ) -> Result<(), ViolationReport> {
        for inv in &self.invariants {
            if let Err(detail) = inv.check(prev, cur) {
                return Err(ViolationReport {
                    invariant: inv.name(),
                    paper_property: inv.paper_property(),
                    detail,
                    schedule: path.to_vec(),
                });
            }
        }
        Ok(())
    }
}
