//! Checkable configurations: a tiny system plus the stimulus to drive it.
//!
//! A [`Scenario`] pins everything the explorer needs to rebuild the world
//! from scratch — configuration, client scripts, transfer requests, fault
//! budget — because the actors are not clonable: backtracking in the
//! search is *replay*, re-running a prefix of scheduling choices against a
//! fresh build. Determinism of the simulator (fixed seed, explicit event
//! choice) makes any choice sequence a complete, reproducible name for a
//! state.

use awr_core::RpConfig;
use awr_sim::{ActorId, PendingKind, UniformLatency};
use awr_storage::{DynOptions, StorageHandle, StorageHarness};
use awr_types::{ObjectId, Ratio, ServerId};

/// The register value type every scenario uses.
pub type Val = u64;

/// One scripted client operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientOp {
    /// `write(obj, value)`.
    Write(ObjectId, Val),
    /// `read(obj)`.
    Read(ObjectId),
}

/// One scheduling decision of the explorer. A sequence of choices, applied
/// to a freshly built scenario, deterministically names a state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Choice {
    /// Process the pending simulator event with this sequence number
    /// (a message delivery or a timer — whatever [`awr_sim::World::pending_events`]
    /// reported).
    Deliver(u64),
    /// Crash this server (durable scenarios within the fault budget only).
    Crash(usize),
    /// Rebuild and reboot this crashed server from its durable store.
    Restart(usize),
}

impl std::fmt::Display for Choice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Choice::Deliver(seq) => write!(f, "deliver:{seq}"),
            Choice::Crash(s) => write!(f, "crash:{s}"),
            Choice::Restart(s) => write!(f, "restart:{s}"),
        }
    }
}

/// Parses a whitespace-separated choice schedule (`deliver:12 crash:0 …`),
/// the wire format counterexamples are written in.
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn parse_schedule(s: &str) -> Result<Vec<Choice>, String> {
    s.split_whitespace()
        .map(|tok| {
            let (kind, arg) = tok
                .split_once(':')
                .ok_or_else(|| format!("malformed choice {tok:?} (want kind:number)"))?;
            let num: u64 = arg
                .parse()
                .map_err(|_| format!("malformed choice argument in {tok:?}"))?;
            match kind {
                "deliver" => Ok(Choice::Deliver(num)),
                "crash" => Ok(Choice::Crash(num as usize)),
                "restart" => Ok(Choice::Restart(num as usize)),
                _ => Err(format!("unknown choice kind {kind:?}")),
            }
        })
        .collect()
}

/// Renders a schedule in the format [`parse_schedule`] reads.
pub fn render_schedule(schedule: &[Choice]) -> String {
    schedule
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// A small checkable configuration: the system, the stimulus, and the
/// fault budget.
#[derive(Clone)]
pub struct Scenario {
    /// Display name (also the counterexample file stem).
    pub name: &'static str,
    /// One line on what the scenario exercises.
    pub about: &'static str,
    /// The reassignment-problem configuration (n, f, initial weights).
    pub cfg: RpConfig,
    /// Per-client operation scripts, run sequentially per client; the
    /// explorer starts the next op the moment the client goes idle.
    pub scripts: Vec<Vec<ClientOp>>,
    /// Transfers issued at initialization, in order, via the queued entry
    /// point (same-issuer bursts batch, matching the protocol).
    pub transfers: Vec<(ServerId, ServerId, Ratio)>,
    /// Build servers over durable in-memory stores, enabling crash and
    /// restart choices and the WAL-accounting invariant.
    pub durable: bool,
    /// Maximum number of crash choices the explorer may inject (0 under
    /// `durable: false`; at most `f` servers are ever down at once).
    pub crash_budget: usize,
    /// Optional deterministic pre-run: steps a prefix of the schedule
    /// before exploration starts (e.g. complete a first write while
    /// withholding deliveries to one server) so the explored frontier
    /// starts at an interesting protocol state instead of paying the
    /// interleaving cost of reaching it.
    pub setup: Option<fn(&mut RunState)>,
}

/// A built scenario mid-schedule: the harness plus the bookkeeping that is
/// not recoverable from actor state alone.
pub struct RunState {
    /// The system under test.
    pub harness: StorageHarness<Val>,
    scenario: Scenario,
    /// Next unscripted op index per client.
    next_op: Vec<usize>,
    /// Crash choices consumed so far.
    pub crashes_used: usize,
}

impl RunState {
    /// Builds the scenario fresh and brings it to its initial explored
    /// state: start events drained, transfers issued, scripts begun,
    /// optional setup applied.
    pub fn build(scenario: &Scenario) -> RunState {
        let network = UniformLatency::new(1, 1);
        let options = DynOptions::default();
        let harness = if scenario.durable {
            StorageHarness::build_durable(
                scenario.cfg.clone(),
                scenario.scripts.len(),
                0,
                network,
                options,
            )
        } else {
            StorageHarness::build(
                scenario.cfg.clone(),
                scenario.scripts.len(),
                0,
                network,
                options,
            )
        };
        let mut rs = RunState {
            harness,
            scenario: scenario.clone(),
            next_op: vec![0; scenario.scripts.len()],
            crashes_used: 0,
        };
        // Start events are protocol no-ops for fresh servers and clients;
        // drain them deterministically so the explored frontier begins at
        // the first real scheduling decision.
        loop {
            let starts: Vec<u64> = rs
                .harness
                .world
                .pending_events()
                .iter()
                .filter(|e| matches!(e.kind, PendingKind::Start { .. }))
                .map(|e| e.seq)
                .collect();
            if starts.is_empty() {
                break;
            }
            for seq in starts {
                rs.harness.world.step_seq(seq);
            }
        }
        for (from, to, delta) in &scenario.transfers {
            rs.harness
                .transfer_queued(*from, *to, *delta)
                .expect("scenario transfer rejected at issue time");
        }
        if let Some(setup) = scenario.setup {
            setup(&mut rs);
        }
        rs.closure();
        rs
    }

    /// The scenario this run was built from.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Transfers the scenario issues in total.
    pub fn transfers_issued(&self) -> usize {
        self.scenario.transfers.len()
    }

    /// Whether every scripted client op has been *started* and every
    /// client is idle (with an empty event queue this means all completed).
    pub fn clients_done(&self) -> bool {
        (0..self.scenario.scripts.len()).all(|k| {
            self.next_op[k] >= self.scenario.scripts[k].len() && !self.harness.client_busy(k)
        })
    }

    /// Count of currently crashed servers.
    pub fn servers_down(&self) -> usize {
        (0..self.scenario.cfg.n)
            .filter(|&i| self.harness.world.is_crashed(ActorId(i)))
            .count()
    }

    /// The deterministic transition closure: drains deliveries addressed
    /// to crashed actors (dropping them is a protocol no-op, so forcing
    /// the drop order loses no generality) and starts the next scripted op
    /// of every idle client, until neither applies. Run after every
    /// choice so the explorer's branching points are only the decisions
    /// that matter.
    pub fn closure(&mut self) {
        loop {
            let mut progressed = false;
            loop {
                let doomed = self.harness.world.pending_events().into_iter().find(|e| {
                    matches!(e.kind, PendingKind::Deliver { to, .. }
                        if self.harness.world.is_crashed(to))
                });
                match doomed {
                    Some(e) => {
                        self.harness.world.step_seq(e.seq);
                        progressed = true;
                    }
                    None => break,
                }
            }
            for k in 0..self.scenario.scripts.len() {
                if self.next_op[k] < self.scenario.scripts[k].len() && !self.harness.client_busy(k)
                {
                    let op = self.scenario.scripts[k][self.next_op[k]];
                    self.next_op[k] += 1;
                    match op {
                        ClientOp::Write(obj, v) => self.harness.begin_async_obj(k, obj, Some(v)),
                        ClientOp::Read(obj) => self.harness.begin_async_obj(k, obj, None),
                    }
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// The choices available in this state, in a deterministic order:
    /// every pending event (time order), then crash choices, then restart
    /// choices. Empty means the state is terminal.
    pub fn choices(&self) -> Vec<Choice> {
        let mut out: Vec<Choice> = self
            .harness
            .world
            .pending_events()
            .iter()
            .map(|e| Choice::Deliver(e.seq))
            .collect();
        if self.scenario.durable {
            let down = self.servers_down();
            if self.crashes_used < self.scenario.crash_budget && down < self.scenario.cfg.f {
                for i in 0..self.scenario.cfg.n {
                    if !self.harness.world.is_crashed(ActorId(i)) {
                        out.push(Choice::Crash(i));
                    }
                }
            }
            for i in 0..self.scenario.cfg.n {
                if self.harness.world.is_crashed(ActorId(i)) {
                    out.push(Choice::Restart(i));
                }
            }
        }
        out
    }

    /// Applies one choice and runs the closure. Returns `false` if the
    /// choice was not applicable in this state (only possible when
    /// replaying an edited schedule, e.g. during minimization — the
    /// explorer itself only applies choices it enumerated).
    pub fn apply(&mut self, choice: Choice) -> bool {
        let applied = match choice {
            Choice::Deliver(seq) => self.harness.world.step_seq(seq),
            Choice::Crash(i) => {
                let ok = self.scenario.durable
                    && i < self.scenario.cfg.n
                    && self.crashes_used < self.scenario.crash_budget
                    && self.servers_down() < self.scenario.cfg.f
                    && !self.harness.world.is_crashed(ActorId(i));
                if ok {
                    self.harness.world.crash_now(ActorId(i));
                    self.crashes_used += 1;
                }
                ok
            }
            Choice::Restart(i) => {
                let ok = self.scenario.durable
                    && i < self.scenario.cfg.n
                    && self.harness.world.is_crashed(ActorId(i));
                if ok {
                    self.harness.restart_server(ServerId(i as u32));
                }
                ok
            }
        };
        if applied {
            self.closure();
        }
        applied
    }

    /// A canonical digest of the whole run state: the world's logical
    /// state, the durable stores' contents, the script cursors, and the
    /// consumed fault budget. Two schedules colliding here have identical
    /// futures, which is exactly what the explorer's dedup needs.
    pub fn state_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.harness
            .world
            .canonical_digest()
            .expect("all checkable actors and messages must be diggestible")
            .hash(&mut h);
        self.next_op.hash(&mut h);
        self.crashes_used.hash(&mut h);
        if self.scenario.durable {
            for i in 0..self.scenario.cfg.n {
                if let Some(st) = self.harness.storage_handle(ServerId(i as u32)) {
                    storage_digest(st).hash(&mut h);
                }
            }
        }
        h.finish()
    }

    /// Runs the given schedule with skip-if-inapplicable semantics (used
    /// by minimization, where removing one choice can invalidate later
    /// sequence numbers). Returns how many choices actually applied.
    pub fn apply_all_lenient(&mut self, schedule: &[Choice]) -> usize {
        schedule.iter().filter(|c| self.apply(**c)).count()
    }
}

/// Digest of one durable store's recoverable content (snapshot + WAL).
fn storage_digest(st: &StorageHandle<Val>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match st.load() {
        None => false.hash(&mut h),
        Some((snap, wal)) => {
            true.hash(&mut h);
            match snap {
                None => false.hash(&mut h),
                Some(s) => {
                    true.hash(&mut h);
                    s.changes.digest().hash(&mut h);
                    s.registers.hash(&mut h);
                }
            }
            for rec in wal {
                match rec {
                    awr_storage::WalRecord::Change(c) => (0u8, c).hash(&mut h),
                    awr_storage::WalRecord::Register(o, r) => (1u8, o, r).hash(&mut h),
                }
            }
        }
    }
    h.finish()
}

/// Deterministic setup helper: steps pending events — never crash/restart,
/// never a delivery to `avoid` — in `(time, seq)` order until `until`
/// holds or nothing steppable remains. Panics if the predicate is never
/// reached (a scenario authoring error, not a protocol state).
pub fn run_avoiding(rs: &mut RunState, avoid: ActorId, mut until: impl FnMut(&RunState) -> bool) {
    loop {
        if until(rs) {
            return;
        }
        let next = rs
            .harness
            .world
            .pending_events()
            .into_iter()
            .find(|e| !matches!(e.kind, PendingKind::Deliver { to, .. } if to == avoid));
        match next {
            Some(e) => {
                rs.harness.world.step_seq(e.seq);
                rs.closure();
            }
            None => panic!("setup stalled before reaching its target state"),
        }
    }
}

/// The built-in scenario registry.
pub fn builtin_scenarios() -> Vec<Scenario> {
    vec![basic3(), concurrent4(), durable3(), fastpath3()]
}

/// Looks up a built-in scenario by name.
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

/// The acceptance workhorse: 3 servers, 1 client writing once, 1
/// reassignment running concurrently. The fully free interleaving of the
/// write with the whole reassignment is beyond exhaustion (>30M edges), so
/// setup pins the cheap half: it steps events in time order — withholding
/// every delivery to s2 — until the issuer records the transfer complete.
/// Exploration then still owns the whole two-phase write, the gainer's
/// in-flight refresh, and s2 discovering the reassignment late, which is
/// where the quorum-intersection risk actually lives.
pub fn basic3() -> Scenario {
    Scenario {
        name: "basic3",
        about: "3 servers, 1 client write, 1 concurrent reassignment (exhaustive)",
        cfg: RpConfig::uniform(3, 1),
        scripts: vec![vec![ClientOp::Write(ObjectId::DEFAULT, 7)]],
        transfers: vec![(ServerId(0), ServerId(1), Ratio::new(1, 8))],
        durable: false,
        crash_budget: 0,
        setup: Some(|rs: &mut RunState| {
            run_avoiding(rs, ActorId(2), |rs| {
                !rs.harness.all_completed_transfers().is_empty()
            });
        }),
    }
}

/// A wider config: 4 servers, 2 clients on 2 objects, 2 reassignments
/// from the same issuer (exercising the batching path). Bounded-depth
/// territory.
pub fn concurrent4() -> Scenario {
    Scenario {
        name: "concurrent4",
        about: "4 servers, 2 clients / 2 objects, batched double reassignment (bounded)",
        cfg: RpConfig::uniform(4, 1),
        scripts: vec![
            vec![ClientOp::Write(ObjectId::DEFAULT, 1)],
            vec![ClientOp::Write(ObjectId(1), 2), ClientOp::Read(ObjectId(1))],
        ],
        transfers: vec![
            (ServerId(0), ServerId(1), Ratio::new(1, 8)),
            (ServerId(0), ServerId(2), Ratio::new(1, 8)),
        ],
        durable: false,
        crash_budget: 0,
        setup: None,
    }
}

/// The fast-path read under a reassignment: the converse of [`basic3`]'s
/// pinning. Setup deterministically completes the transfer *and* the
/// write — both through {s0, s1}, withholding every delivery to s2 — and
/// then drains the reassignment/refresh traffic, so the explored frontier
/// is exactly the ABD deliveries: the completed write's stragglers at s2
/// (a stale-`C` `R`, its restarted `R`, and the `W` that finally lands
/// the value) freely interleaved with the read's phase 1. Depending on
/// the order, the read's max-tag replier weight carries the fast-path
/// rule (one phase), or s2's still-bottom register forces a *targeted*
/// write-back to s2 alone — every branch of the optimization, exhausted.
/// The `read-atomicity` invariant is the one a broken fast path fails.
pub fn fastpath3() -> Scenario {
    Scenario {
        name: "fastpath3",
        about: "3 servers, fast-path read vs a reassigned config and straggler writes (exhaustive)",
        cfg: RpConfig::uniform(3, 1),
        scripts: vec![vec![
            ClientOp::Write(ObjectId::DEFAULT, 7),
            ClientOp::Read(ObjectId::DEFAULT),
        ]],
        transfers: vec![(ServerId(0), ServerId(1), Ratio::new(1, 8))],
        durable: false,
        crash_budget: 0,
        setup: Some(|rs: &mut RunState| {
            run_avoiding(rs, ActorId(2), |rs| {
                !rs.harness.all_completed_transfers().is_empty() && !rs.harness.history().is_empty()
            });
            // Drain everything that is not an ABD-phase delivery (the RB
            // relays of the change pair and the refresh leg headed for
            // s2, plus their consequences) in deterministic time order.
            loop {
                let next = rs.harness.world.pending_events().into_iter().find(|e| {
                    !matches!(e.kind, PendingKind::Deliver { kind, .. }
                        if matches!(kind, "R" | "R_A" | "W" | "W_A"))
                });
                match next {
                    Some(e) => {
                        rs.harness.world.step_seq(e.seq);
                        rs.closure();
                    }
                    None => break,
                }
            }
        }),
    }
}

/// Durable servers with one crash/restart in the budget and no clients:
/// explores fault points against the WAL-accounting and audit invariants.
pub fn durable3() -> Scenario {
    Scenario {
        name: "durable3",
        about: "3 durable servers, 1 reassignment, 1 crash/restart in budget (bounded)",
        cfg: RpConfig::uniform(3, 1),
        scripts: vec![],
        transfers: vec![(ServerId(0), ServerId(1), Ratio::new(1, 8))],
        durable: true,
        crash_budget: 1,
        setup: None,
    }
}
