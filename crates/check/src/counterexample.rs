//! Counterexample minimization and rendering.
//!
//! The explorer returns the raw schedule that first reached a violation.
//! [`minimize`] greedily deletes choices — replaying the candidate with
//! skip-if-inapplicable semantics and keeping a deletion only if the
//! *same invariant* still fails — until no single deletion survives.
//! [`render`] replays the final schedule with simulator tracing enabled
//! and produces a human-readable, machine-replayable report.

use crate::explore::ViolationReport;
use crate::invariant::{default_invariants, StateView};
use crate::scenario::{render_schedule, Choice, RunState, Scenario};

/// Replays `schedule` leniently and reports whether `invariant` fails at
/// any visited state (including the root and the skipped-choice drift).
pub fn schedule_violates(scenario: &Scenario, schedule: &[Choice], invariant: &str) -> bool {
    let invariants = default_invariants();
    let mut rs = RunState::build(scenario);
    let mut prev = StateView::capture(&rs);
    let fails = |prev: Option<&StateView>, cur: &StateView| {
        invariants
            .iter()
            .filter(|inv| inv.name() == invariant)
            .any(|inv| inv.check(prev, cur).is_err())
    };
    if fails(None, &prev) {
        return true;
    }
    for c in schedule {
        if !rs.apply(*c) {
            continue;
        }
        let cur = StateView::capture(&rs);
        if fails(Some(&prev), &cur) {
            return true;
        }
        prev = cur;
    }
    false
}

/// Greedy 1-minimal deletion: repeatedly removes any single choice whose
/// removal still reproduces the violation, until none does. The result
/// replays to the same invariant failure and is usually a fraction of the
/// search path's length (the search reaches states depth-first, dragging
/// irrelevant deliveries along).
pub fn minimize(scenario: &Scenario, report: &ViolationReport) -> Vec<Choice> {
    let mut schedule = report.schedule.clone();
    debug_assert!(schedule_violates(scenario, &schedule, report.invariant));
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < schedule.len() {
            let mut candidate = schedule.clone();
            candidate.remove(i);
            if schedule_violates(scenario, &candidate, report.invariant) {
                schedule = candidate;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            return schedule;
        }
    }
}

/// Replays a (minimized) schedule with tracing on and renders the full
/// counterexample: the violated property, the choice schedule in
/// [`crate::scenario::parse_schedule`] format, and the simulator trace of
/// what each choice delivered.
pub fn render(scenario: &Scenario, report: &ViolationReport, schedule: &[Choice]) -> String {
    let mut rs = RunState::build(scenario);
    rs.harness.world.enable_trace(4096);
    rs.apply_all_lenient(schedule);
    let trace = rs
        .harness
        .world
        .trace()
        .map(|t| t.render())
        .unwrap_or_default();
    format!(
        "counterexample: {invariant} violated in scenario {name}\n\
         paper property: {paper}\n\
         detail: {detail}\n\
         schedule ({len} choices, replay with `check_awr --scenario {name} --replay '{sched}'`):\n\
         {sched}\n\
         trace:\n{trace}",
        invariant = report.invariant,
        name = scenario.name,
        paper = report.paper_property,
        detail = report.detail,
        len = schedule.len(),
        sched = render_schedule(schedule),
        trace = trace,
    )
}
