//! Command-line entry point of the bounded model checker.
//!
//! ```text
//! check_awr                       # explore every built-in scenario, unbounded
//! check_awr --smoke               # CI gate: bounded depth/states, fails on violation
//! check_awr --scenario basic3     # one scenario
//! check_awr --depth 12 --states 50000
//! check_awr --scenario basic3 --replay 'deliver:12 deliver:9'
//! check_awr --out target/counterexamples
//! ```
//!
//! Exit code 0 = all explored states clean; 1 = violation found (the
//! counterexample is printed and, with `--out`, written to a file) — or,
//! under `--require-exhaustive`, a bound/budget cut the search short;
//! 2 = usage error.

#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use awr_check::{
    builtin_scenarios, minimize, parse_schedule, render, scenario_by_name, Explorer, Outcome,
    RunState, Scenario, StateView,
};

struct Args {
    smoke: bool,
    depth: Option<usize>,
    states: Option<u64>,
    scenario: Option<String>,
    out: Option<String>,
    replay: Option<String>,
    list: bool,
    require_exhaustive: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        depth: None,
        states: None,
        scenario: None,
        out: None,
        replay: None,
        list: false,
        require_exhaustive: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects an argument"))
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--list" => args.list = true,
            "--require-exhaustive" => args.require_exhaustive = true,
            "--depth" => {
                args.depth = Some(
                    value("--depth")?
                        .parse()
                        .map_err(|_| "--depth expects a number".to_string())?,
                )
            }
            "--states" => {
                args.states = Some(
                    value("--states")?
                        .parse()
                        .map_err(|_| "--states expects a number".to_string())?,
                )
            }
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--out" => args.out = Some(value("--out")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--help" | "-h" => {
                return Err("usage: check_awr [--smoke] [--depth N] [--states N] \
                     [--scenario NAME] [--out DIR] [--replay SCHEDULE] [--list] \
                     [--require-exhaustive]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            println!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for s in builtin_scenarios() {
            println!("{:<14} {}", s.name, s.about);
        }
        return ExitCode::SUCCESS;
    }

    let scenarios: Vec<Scenario> = match &args.scenario {
        Some(name) => match scenario_by_name(name) {
            Some(s) => vec![s],
            None => {
                println!("unknown scenario {name:?} (try --list)");
                return ExitCode::from(2);
            }
        },
        None => builtin_scenarios(),
    };

    if let Some(schedule) = &args.replay {
        let schedule = match parse_schedule(schedule) {
            Ok(s) => s,
            Err(e) => {
                println!("{e}");
                return ExitCode::from(2);
            }
        };
        return replay(&scenarios[0], &schedule);
    }

    // Smoke bounds keep the CI gate under a minute; explicit flags win.
    let depth = args.depth.or(if args.smoke { Some(14) } else { None });
    let states = args.states.or(if args.smoke { Some(60_000) } else { None });

    let mut failed = false;
    for scenario in scenarios {
        let name = scenario.name;
        let about = scenario.about;
        let explorer = Explorer {
            scenario,
            invariants: awr_check::default_invariants(),
            max_depth: depth,
            max_states: states,
        };
        println!("== {name}: {about}");
        let started = std::time::Instant::now();
        let outcome = explorer.run();
        let stats = outcome.stats();
        println!(
            "   {} states visited, {} deduped, {} replays, max depth {}, {} depth cuts ({:.1?})",
            stats.states_visited,
            stats.states_deduped,
            stats.replays,
            stats.max_depth_reached,
            stats.depth_limit_hits,
            started.elapsed(),
        );
        match outcome {
            Outcome::Clean(ref s) => {
                if s.depth_limit_hits == 0 {
                    println!("   clean — state space exhausted, all invariants hold");
                } else {
                    println!("   clean within depth bound {}", depth.unwrap_or(0));
                    if args.require_exhaustive {
                        println!("   FAIL: --require-exhaustive set but the depth bound cut paths");
                        failed = true;
                    }
                }
            }
            Outcome::BudgetExhausted(_) => {
                println!(
                    "   inconclusive — state budget {} exhausted first",
                    states.unwrap_or(0)
                );
                if args.require_exhaustive {
                    println!("   FAIL: --require-exhaustive set but the state budget ran out");
                    failed = true;
                }
            }
            Outcome::Violation(report, _) => {
                failed = true;
                let minimized = minimize(&explorer.scenario, &report);
                let text = render(&explorer.scenario, &report, &minimized);
                println!("{text}");
                if let Some(dir) = &args.out {
                    let path = format!("{dir}/{name}.counterexample.txt");
                    match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &text)) {
                        Ok(()) => println!("   written to {path}"),
                        Err(e) => println!("   could not write {path}: {e}"),
                    }
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Replays a schedule against the first named scenario, printing each
/// invariant evaluation — the counterexample-reproduction path.
fn replay(scenario: &Scenario, schedule: &[awr_check::Choice]) -> ExitCode {
    let invariants = awr_check::default_invariants();
    let mut rs = RunState::build(scenario);
    rs.harness.world.enable_trace(4096);
    let mut prev = StateView::capture(&rs);
    let mut violated = false;
    for (i, c) in schedule.iter().enumerate() {
        if !rs.apply(*c) {
            println!("[{i}] {c} — not applicable, skipped");
            continue;
        }
        let cur = StateView::capture(&rs);
        for inv in &invariants {
            if let Err(detail) = inv.check(Some(&prev), &cur) {
                println!("[{i}] {c} — VIOLATION of {}: {detail}", inv.name());
                violated = true;
            }
        }
        if !violated {
            println!("[{i}] {c} — ok");
        }
        prev = cur;
        if violated {
            break;
        }
    }
    if let Some(t) = rs.harness.world.trace() {
        println!("trace:\n{}", t.render());
    }
    if violated {
        ExitCode::FAILURE
    } else {
        println!("schedule replayed clean");
        ExitCode::SUCCESS
    }
}
