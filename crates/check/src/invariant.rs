//! The invariant layer: executable safety and liveness predicates
//! evaluated at every state the explorer reaches.
//!
//! Each [`Invariant`] names the paper property it operationalizes (see
//! `docs/CHECKING.md` for the full table). Checks run over a [`StateView`]
//! — a cheap snapshot of the protocol-relevant state — so the explorer
//! can keep one view per search depth and hand `(prev, cur)` pairs to
//! history-sensitive predicates like tag monotonicity.

use std::collections::BTreeMap;

use awr_core::{audit_transfers, RpConfig, TransferOutcome};
use awr_sim::{ActorId, Time};
use awr_storage::{DynClient, DynServer, WalRecord};
use awr_types::{ChangeSet, ObjectId, Ratio, ServerId, Tag, TaggedValue, WeightMap};

use crate::scenario::{RunState, Val};

/// A snapshot of everything the invariants read, taken after each
/// scheduling choice.
#[derive(Clone, Debug)]
pub struct StateView {
    /// The configuration (for thresholds and the audit).
    pub cfg: RpConfig,
    /// Weight view (from its own `C`) of every quorum-judging participant:
    /// servers first, then clients. Crashed servers are excluded — a
    /// crashed process issues no quorums.
    pub weights: Vec<(String, WeightMap)>,
    /// Per-server crash flag.
    pub crashed: Vec<bool>,
    /// Per-server change-set digest.
    pub change_digests: Vec<u64>,
    /// Per-server register tags (absent key = bottom).
    pub register_tags: Vec<BTreeMap<ObjectId, Tag>>,
    /// All completed transfers so far, completion-ordered, including those
    /// recorded by crashed incarnations (the audit is omniscient).
    pub completed: Vec<(TransferOutcome, Time)>,
    /// Transfers the scenario issued in total.
    pub transfers_issued: usize,
    /// Crash choices consumed so far.
    pub crashes_used: usize,
    /// No pending events: the schedule can end here.
    pub terminal: bool,
    /// Every scripted client op completed and every client is idle.
    pub clients_done: bool,
    /// Per-server WAL-accounting result (durable scenarios): `Some(err)`
    /// when replaying snapshot + WAL does not reproduce the live state.
    pub wal_mismatch: Vec<Option<String>>,
    /// Keyed-linearizability result over the completed-op history,
    /// computed only at terminal states with every scripted op done
    /// (partial histories can be unexplainable without the in-flight
    /// ops, so mid-schedule checks would false-positive).
    pub lin_violation: Option<String>,
}

impl StateView {
    /// Captures the view from a built run state.
    pub fn capture(rs: &RunState) -> StateView {
        let sc = rs.scenario();
        let cfg = sc.cfg.clone();
        let n = cfg.n;
        let world = &rs.harness.world;
        let mut weights = Vec::new();
        let mut crashed = Vec::new();
        let mut change_digests = Vec::new();
        let mut register_tags = Vec::new();
        let mut wal_mismatch = Vec::new();
        for i in 0..n {
            let a = ActorId(i);
            let srv = world.actor::<DynServer<Val>>(a).expect("server actor");
            crashed.push(world.is_crashed(a));
            change_digests.push(srv.changes().digest());
            register_tags.push(srv.registers().iter().map(|(o, r)| (*o, r.tag)).collect());
            if !world.is_crashed(a) {
                weights.push((format!("s{i}"), srv.changes().weights(n)));
            }
            if sc.durable {
                let handle = rs
                    .harness
                    .storage_handle(ServerId(i as u32))
                    .expect("durable harness");
                wal_mismatch.push(wal_replay_mismatch(
                    &cfg,
                    handle.load(),
                    srv.changes(),
                    srv.registers(),
                ));
            }
        }
        for k in 0..sc.scripts.len() {
            let c = world
                .actor::<DynClient<Val>>(rs.harness.client_actor(k))
                .expect("client actor");
            weights.push((format!("c{k}"), c.driver.changes.weights(n)));
        }
        let terminal = world.pending_events().is_empty();
        let clients_done = rs.clients_done();
        let lin_violation = if terminal && clients_done && !sc.scripts.is_empty() {
            awr_storage::check_linearizable_keyed(&rs.harness.history())
                .err()
                .map(|e| e.to_string())
        } else {
            None
        };
        StateView {
            cfg,
            weights,
            crashed,
            change_digests,
            register_tags,
            completed: rs.harness.all_completed_transfers(),
            transfers_issued: rs.transfers_issued(),
            crashes_used: rs.crashes_used,
            terminal,
            clients_done,
            wal_mismatch,
            lin_violation,
        }
    }
}

/// Replays a durable store the way [`DynServer::recover`] would and
/// reports the first divergence from the live state, if any.
fn wal_replay_mismatch(
    cfg: &RpConfig,
    recovered: Option<awr_storage::Recovered<Val>>,
    live_changes: &ChangeSet,
    live_registers: &BTreeMap<ObjectId, TaggedValue<Val>>,
) -> Option<String> {
    let mut changes = ChangeSet::from_initial_weights(&cfg.initial_weights);
    let mut registers: BTreeMap<ObjectId, TaggedValue<Val>> = BTreeMap::new();
    if let Some((snapshot, wal)) = recovered {
        if let Some(snap) = snapshot {
            changes = snap.changes;
            registers = snap.registers;
        }
        for record in wal {
            match record {
                WalRecord::Change(c) => {
                    changes.insert(c);
                }
                WalRecord::Register(obj, reg) => match registers.get_mut(&obj) {
                    Some(cur) => {
                        cur.adopt_if_newer(&reg);
                    }
                    None => {
                        registers.insert(obj, reg);
                    }
                },
            }
        }
    }
    if changes.digest() != live_changes.digest() {
        return Some(format!(
            "WAL+snapshot replay yields change-set digest {:#x}, live set digests {:#x}",
            changes.digest(),
            live_changes.digest()
        ));
    }
    if &registers != live_registers {
        return Some(format!(
            "WAL+snapshot replay yields registers {:?}, live map is {:?}",
            registers
                .iter()
                .map(|(o, r)| (*o, r.tag))
                .collect::<Vec<_>>(),
            live_registers
                .iter()
                .map(|(o, r)| (*o, r.tag))
                .collect::<Vec<_>>(),
        ));
    }
    None
}

/// One checkable property.
pub trait Invariant {
    /// Short stable identifier (used in reports and tests).
    fn name(&self) -> &'static str;
    /// The paper property this operationalizes.
    fn paper_property(&self) -> &'static str;
    /// Evaluates the property on `cur` (with `prev` for history-sensitive
    /// predicates; `None` at the initial state).
    ///
    /// # Errors
    ///
    /// A human-readable description of the violation.
    fn check(&self, prev: Option<&StateView>, cur: &StateView) -> Result<(), String>;
}

/// The standard battery, in evaluation order.
pub fn default_invariants() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(QuorumIntersection),
        Box::new(TagMonotonicity),
        Box::new(RpIntegrityAudit),
        Box::new(WalSoundness),
        Box::new(JoinLiveness),
        Box::new(ReadAtomicity),
    ]
}

/// Any two quorums — judged by any two participants under their own
/// (possibly different) change sets — must intersect. This is the safety
/// core of the whole construction: Property 1 keeps every reachable
/// weight vector intersection-safe *across views*, and atomicity of the
/// storage stands on it.
pub struct QuorumIntersection;

impl Invariant for QuorumIntersection {
    fn name(&self) -> &'static str {
        "quorum-intersection"
    }
    fn paper_property(&self) -> &'static str {
        "Property 1 / Definition 1 (WMQS consistency across views)"
    }
    fn check(&self, _prev: Option<&StateView>, cur: &StateView) -> Result<(), String> {
        let n = cur.cfg.n;
        let half = cur.cfg.initial_total().half();
        let set_weight = |w: &WeightMap, mask: usize| -> Ratio {
            (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| w.weight(ServerId(i as u32)))
                .sum()
        };
        let full = (1usize << n) - 1;
        for (la, wa) in &cur.weights {
            for (lb, wb) in &cur.weights {
                for mask in 0..=full {
                    let comp = full & !mask;
                    if set_weight(wa, mask) > half && set_weight(wb, comp) > half {
                        return Err(format!(
                            "disjoint quorums: {la} accepts {{{}}} (weights {wa}), \
                             {lb} accepts the complement {{{}}} (weights {wb})",
                            mask_names(mask, n),
                            mask_names(comp, n),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

fn mask_names(mask: usize, n: usize) -> String {
    (0..n)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| format!("s{i}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// A server's register tag never decreases, per object — the server-side
/// face of atomicity (Algorithm 5's adopt-if-newer discipline), which
/// must survive refreshes, weight gains, and WAL recovery alike.
pub struct TagMonotonicity;

impl Invariant for TagMonotonicity {
    fn name(&self) -> &'static str {
        "tag-monotonicity"
    }
    fn paper_property(&self) -> &'static str {
        "Atomicity (Lemma 2 machinery: timestamps only grow)"
    }
    fn check(&self, prev: Option<&StateView>, cur: &StateView) -> Result<(), String> {
        let Some(prev) = prev else { return Ok(()) };
        for (i, prev_tags) in prev.register_tags.iter().enumerate() {
            for (obj, old_tag) in prev_tags {
                let new_tag = cur.register_tags[i]
                    .get(obj)
                    .copied()
                    .unwrap_or_else(Tag::bottom);
                if new_tag < *old_tag {
                    return Err(format!(
                        "server s{i} rolled {obj:?} back from tag {old_tag:?} to {new_tag:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The completed-transfer log must audit clean at every state: weights
/// stay above the RP-Integrity floor, the f heaviest stay below half,
/// totals are conserved, C1 holds, and change pairs cancel exactly.
pub struct RpIntegrityAudit;

impl Invariant for RpIntegrityAudit {
    fn name(&self) -> &'static str {
        "rp-integrity-audit"
    }
    fn paper_property(&self) -> &'static str {
        "RP-Integrity (Def. 5), Property 1, RP-Validity-I, C1"
    }
    fn check(&self, _prev: Option<&StateView>, cur: &StateView) -> Result<(), String> {
        let report = audit_transfers(&cur.cfg, &cur.completed);
        match report.violations.first() {
            None => Ok(()),
            Some(v) => Err(format!("transfer audit: {v}")),
        }
    }
}

/// Durable scenarios only: at every inter-event point, replaying a
/// server's snapshot + WAL must reproduce its live change set and
/// registers — the persist-before-send contract the recovery path
/// depends on.
pub struct WalSoundness;

impl Invariant for WalSoundness {
    fn name(&self) -> &'static str {
        "wal-soundness"
    }
    fn paper_property(&self) -> &'static str {
        "crash-recovery extension (PR 6): recoverable state ⊇ advertised state"
    }
    fn check(&self, _prev: Option<&StateView>, cur: &StateView) -> Result<(), String> {
        for (i, mismatch) in cur.wal_mismatch.iter().enumerate() {
            if let Some(err) = mismatch {
                return Err(format!("server s{i}: {err}"));
            }
        }
        Ok(())
    }
}

/// At crash-free terminal states (no pending events, nothing left to
/// schedule): every scripted client op completed, every issued transfer
/// reached an outcome, and all servers converged to the same change set.
/// With crashes in the schedule the predicate is vacuous — operations may
/// legitimately stall when their messages died with a down server (the
/// crash-free model's liveness assumes reliable links).
pub struct JoinLiveness;

impl Invariant for JoinLiveness {
    fn name(&self) -> &'static str {
        "join-liveness"
    }
    fn paper_property(&self) -> &'static str {
        "RP-Liveness / Validity-II at quiescence"
    }
    fn check(&self, _prev: Option<&StateView>, cur: &StateView) -> Result<(), String> {
        if !cur.terminal || cur.crashes_used > 0 {
            return Ok(());
        }
        if !cur.clients_done {
            return Err("quiescent with a client operation still in flight".into());
        }
        if cur.completed.len() != cur.transfers_issued {
            return Err(format!(
                "quiescent with {} of {} transfers completed",
                cur.completed.len(),
                cur.transfers_issued
            ));
        }
        let first = cur.change_digests[0];
        for (i, d) in cur.change_digests.iter().enumerate() {
            if *d != first {
                return Err(format!(
                    "change sets diverged at quiescence: s0 digests {first:#x}, s{i} digests {d:#x}"
                ));
            }
        }
        Ok(())
    }
}

/// The client-visible face of atomicity: at every terminal state with all
/// scripted ops completed, the operation history must be keyed-
/// linearizable. This is the invariant the fast-path read optimization
/// answers to — a one-phase read that returns a max tag whose replier
/// weight does *not* carry a quorum can produce a new–old inversion that
/// no per-server predicate sees, because every individual register is
/// perfectly monotone.
pub struct ReadAtomicity;

impl Invariant for ReadAtomicity {
    fn name(&self) -> &'static str {
        "read-atomicity"
    }
    fn paper_property(&self) -> &'static str {
        "Atomicity (Theorem 6: the weighted register linearizes)"
    }
    fn check(&self, _prev: Option<&StateView>, cur: &StateView) -> Result<(), String> {
        match &cur.lin_violation {
            None => Ok(()),
            Some(err) => Err(format!("completed history not linearizable: {err}")),
        }
    }
}
