//! # awr-check — a bounded model checker over the simulated protocols
//!
//! Seed-driven simulation (the rest of this workspace) samples schedules;
//! this crate *enumerates* them. For tiny configurations — 3–4 servers,
//! 1–2 clients, a reassignment or two — the explorer drives the existing
//! discrete-event simulator through **every** message-delivery order (plus
//! crash/restart points for durable scenarios, within a fault budget),
//! deduplicating states by canonical hash, and evaluates an invariant
//! battery at every reachable state:
//!
//! | invariant | paper property |
//! |---|---|
//! | `quorum-intersection` | Property 1 / Definition 1 (WMQS consistency across views) |
//! | `tag-monotonicity`    | atomicity machinery (timestamps only grow) |
//! | `rp-integrity-audit`  | RP-Integrity (Def. 5), Property 1, RP-Validity-I, C1 |
//! | `wal-soundness`       | durable extension: recoverable ⊇ advertised state |
//! | `join-liveness`       | RP-Liveness / Validity-II at quiescence |
//! | `read-atomicity`      | Theorem 6 (completed histories linearize) |
//!
//! On a violation the explorer emits the reaching schedule,
//! [`minimize`]s it by greedy deletion, and renders a replayable
//! counterexample through the simulator's trace machinery. See
//! `docs/CHECKING.md` for the state-space model and usage, and the
//! `check_awr` binary for the command-line entry point.
//!
//! The `mutate` feature compiles seeded protocol bugs into the crates
//! under test; `tests/mutation_detect.rs` asserts the explorer catches
//! every one of them — a checker that has never caught a bug proves
//! nothing.

#![warn(missing_docs)]

pub mod counterexample;
pub mod explore;
pub mod invariant;
pub mod scenario;

pub use counterexample::{minimize, render, schedule_violates};
pub use explore::{Explorer, Outcome, Stats, ViolationReport};
pub use invariant::{default_invariants, Invariant, StateView};
pub use scenario::{
    builtin_scenarios, parse_schedule, render_schedule, scenario_by_name, Choice, ClientOp,
    RunState, Scenario,
};
