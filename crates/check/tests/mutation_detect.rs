//! Checker validation by mutation: arm each seeded protocol bug
//! (`awr_sim::mutate`) and assert the explorer finds a counterexample for
//! it within the CI budget — then that the minimized schedule still
//! reproduces the violation, and that the *unmutated* protocol replays the
//! same schedule clean.
//!
//! Only meaningful with the seeded bugs compiled in:
//! `cargo test -p awr_check --features mutate --test mutation_detect`.

#![cfg(feature = "mutate")]

use awr_check::scenario::Val;
use awr_check::{
    default_invariants, minimize, schedule_violates, ClientOp, Explorer, Outcome, RunState,
    Scenario, ViolationReport,
};
use awr_core::RpConfig;
use awr_sim::mutate::{with_mutation, Mutation};
use awr_sim::{ActorId, PendingEvent, PendingKind};
use awr_storage::DynServer;
use awr_types::{ObjectId, Ratio, ServerId, Tag};

/// Runs the full detection pipeline under `mutation`: explore, assert the
/// expected invariant fails, minimize, assert the minimized schedule still
/// reproduces — then, disarmed, assert the same schedule replays clean
/// (the violation is the mutation's fault, not the scenario's).
fn assert_caught(
    scenario: &Scenario,
    mutation: Mutation,
    expected_invariant: &str,
    explore: impl FnOnce(&Explorer) -> Outcome,
) -> ViolationReport {
    let (report, minimized) = with_mutation(mutation, || {
        let explorer = Explorer {
            scenario: scenario.clone(),
            invariants: default_invariants(),
            max_depth: None,
            max_states: Some(500_000),
        };
        let outcome = explore(&explorer);
        let report = outcome
            .violation()
            .unwrap_or_else(|| {
                panic!(
                    "{mutation:?} not caught in {} ({:?})",
                    scenario.name,
                    outcome.stats()
                )
            })
            .clone();
        let minimized = minimize(scenario, &report);
        assert!(
            schedule_violates(scenario, &minimized, report.invariant),
            "{mutation:?}: minimized schedule must still reproduce the violation"
        );
        (report, minimized)
    });
    assert_eq!(
        report.invariant, expected_invariant,
        "{mutation:?} caught by the wrong invariant: {}",
        report.detail
    );
    assert!(
        !minimized.is_empty(),
        "counterexample minimized away to nothing"
    );
    assert!(
        !schedule_violates(scenario, &minimized, report.invariant),
        "unmutated protocol also violates {} on the minimized schedule — \
         the scenario is broken, not the mutation",
        report.invariant
    );
    report
}

/// Bounded clean sweep of the scenario without any mutation armed.
fn assert_clean_unmutated(scenario: &Scenario, depth: usize, states: u64) {
    let explorer = Explorer {
        scenario: scenario.clone(),
        invariants: default_invariants(),
        max_depth: Some(depth),
        max_states: Some(states),
    };
    let outcome = explorer.run();
    assert!(
        outcome.violation().is_none(),
        "unmutated {} must explore clean: {:?}",
        scenario.name,
        outcome.violation()
    );
}

/// Mutation 1 target: a transfer of 1/2 from a weight-1 issuer in
/// uniform(3,1). The floor is W/(2(n−f)) = 3/4, so the honest protocol
/// nullifies this at issue time (zero explorable events). With the clamp
/// dropped the transfer proceeds and its completion record puts s0 at
/// weight 1/2 < 3/4 — an RP-Integrity audit violation.
fn floor_scenario() -> Scenario {
    Scenario {
        name: "mut-floor",
        about: "3 servers, one below-floor transfer (null when honest)",
        cfg: RpConfig::uniform(3, 1),
        scripts: vec![],
        transfers: vec![(ServerId(0), ServerId(1), Ratio::new(1, 2))],
        durable: false,
        crash_budget: 0,
        setup: None,
    }
}

#[test]
fn drop_floor_clamp_is_caught() {
    let scenario = floor_scenario();
    assert_clean_unmutated(&scenario, 14, 60_000);
    let report = assert_caught(
        &scenario,
        Mutation::DropFloorClamp,
        "rp-integrity-audit",
        |e| e.run(),
    );
    assert!(report.detail.contains("audit"), "{}", report.detail);
}

/// Count of pending `kind` deliveries addressed to `to`.
fn pending_kind_to(rs: &RunState, to: ActorId, kind: &str) -> usize {
    rs.harness
        .world
        .pending_events()
        .iter()
        .filter(
            |e| matches!(e.kind, PendingKind::Deliver { to: t, kind: k, .. } if t == to && k == kind),
        )
        .count()
}

/// The tag server `i` currently stores for the default object.
fn reg_tag(rs: &RunState, i: usize) -> Tag {
    rs.harness
        .world
        .actor::<DynServer<Val>>(ActorId(i))
        .expect("server actor")
        .register_of(ObjectId::DEFAULT)
        .tag
}

/// Deterministic setup driver: repeatedly steps the earliest pending
/// event `step_ok` admits (running the closure after each) until `until`
/// holds. Panics on a stall — a scenario authoring error.
fn run_until(
    rs: &mut RunState,
    step_ok: impl Fn(&PendingEvent) -> bool,
    mut until: impl FnMut(&RunState) -> bool,
) {
    loop {
        if until(rs) {
            return;
        }
        let next = rs.harness.world.pending_events().into_iter().find(&step_ok);
        match next {
            Some(e) => {
                rs.harness.world.step_seq(e.seq);
                rs.closure();
            }
            None => panic!("setup stalled before reaching its target state"),
        }
    }
}

/// Mutation 2 target: server s0 gains weight (refresh on gain) while
/// writes race it. The refresh's `have` is fixed when the read starts,
/// and a server's change set only advances when the *paused* apply runs —
/// so the dangerous order is: the refresh starts while s0 is blank, s0
/// then adopts racing writes (accepted precisely because its change set
/// is still the initial one an unaware client references), and only
/// *then* does a replier's ack — carrying the older write — arrive. The
/// honest absorb compares tags and keeps the newer register; the mutated
/// one installs the stale ack, rolling s0's register back: tag
/// monotonicity.
///
/// Setup pins everything up to that race so the explorer only has to
/// order the refresh traffic, not rediscover a 20-step preamble. The
/// transfer issuer s1's change set advances synchronously at issue time,
/// so the client must never hear from s1 or it stops matching s0's stale
/// set — both writes run through the quorum {s0, s2} with s1 frozen:
///   1. deliver exactly the ⟨T⟩ envelope to s0: the weight gain pauses
///      behind a register refresh whose `have` is still empty;
///   2. complete write(1) through {s0, s2} — every party still holds the
///      initial change set, so the rounds accept cleanly (s0 adopting
///      tag1 is fine: `have` was fixed at bottom when the read started);
///   3. continue until write(2)'s W round is in flight;
///   4. deliver write(2)'s W to s0 only — s0 now holds tag2 while s2
///      still holds tag1, and the refresh acks are all still pending.
fn refresh_setup(rs: &mut RunState) {
    let envelope = rs
        .harness
        .world
        .pending_events()
        .iter()
        .find(|e| {
            matches!(e.kind, PendingKind::Deliver { to, kind, .. }
            if to == ActorId(0) && kind == "T")
        })
        .map(|e| e.seq)
        .expect("setup: no ⟨T⟩ envelope pending at s0");
    rs.harness.world.step_seq(envelope);
    rs.closure();
    let client = rs.harness.client_actor(0);
    let quorum = move |e: &PendingEvent| match e.kind {
        PendingKind::Deliver { to, kind, .. } => {
            (to == ActorId(0) || to == ActorId(2) || to == client)
                && matches!(kind, "R" | "R_A" | "W" | "W_A")
        }
        _ => false,
    };
    run_until(rs, quorum, |rs| !rs.harness.history().is_empty());
    run_until(rs, quorum, |rs| pending_kind_to(rs, ActorId(0), "W") >= 1);
    let w2 = rs
        .harness
        .world
        .pending_events()
        .iter()
        .find(|e| {
            matches!(e.kind, PendingKind::Deliver { to, kind, .. }
            if to == ActorId(0) && kind == "W")
        })
        .map(|e| e.seq)
        .expect("setup: write(2)'s W is not pending at s0");
    rs.harness.world.step_seq(w2);
    rs.closure();
    assert!(
        reg_tag(rs, 0) > reg_tag(rs, 2),
        "setup: s0 must hold the newer register while s2 holds the older"
    );
}

/// See [`refresh_setup`] for the staged race this scenario pins.
fn refresh_scenario() -> Scenario {
    Scenario {
        name: "mut-refresh",
        about: "weight gain refresh racing a second write (stale-ack adopt)",
        cfg: RpConfig::uniform(3, 1),
        scripts: vec![vec![
            ClientOp::Write(ObjectId::DEFAULT, 1),
            ClientOp::Write(ObjectId::DEFAULT, 2),
        ]],
        transfers: vec![(ServerId(1), ServerId(0), Ratio::new(1, 8))],
        durable: false,
        crash_budget: 0,
        setup: Some(refresh_setup),
    }
}

#[test]
fn skip_refresh_tag_check_is_caught() {
    let scenario = refresh_scenario();
    assert_clean_unmutated(&scenario, 12, 60_000);
    let report = assert_caught(
        &scenario,
        Mutation::SkipRefreshTagCheck,
        "tag-monotonicity",
        |e| e.run_deepening(6),
    );
    assert!(report.detail.contains("rolled"), "{}", report.detail);
}

/// Mutation 3 target: two transfers from the same issuer. The second is
/// queued behind the first and drained in a fresh RB broadcast on
/// completion; with the sequence number reused, every peer deduplicates
/// that broadcast as already-seen, nobody acks, and the second transfer
/// never completes — caught at quiescence by join-liveness.
///
/// Deltas are 1/16 so *both* transfers clear the uniform(3,1) floor of 3/4
/// (after a 1/8 debit the issuer sits exactly at floor + 1/8 and the clamp
/// is strict, so a second 1/8 would be nullified and never broadcast).
fn reuse_scenario() -> Scenario {
    Scenario {
        name: "mut-reuse",
        about: "same-issuer transfer pair; drained second broadcast swallowed",
        cfg: RpConfig::uniform(3, 1),
        scripts: vec![],
        transfers: vec![
            (ServerId(0), ServerId(1), Ratio::new(1, 16)),
            (ServerId(0), ServerId(2), Ratio::new(1, 16)),
        ],
        durable: false,
        crash_budget: 0,
        setup: None,
    }
}

/// Mutation 4 target: a fast-path read served off a max-tag replier set
/// whose cumulative weight is *not* a quorum. Setup pins the split
/// register state the disarmed rule turns into a new/old inversion:
/// writer c0 completes write(1) everywhere, then write(2)'s `W` round is
/// delivered to s0 *only* — s0 holds tag2/v2 while s1 and s2 still hold
/// tag1/v1 — with reader c1 frozen throughout (its phase-1 `R`s stay
/// pending, so its reads observe the split at delivery time). The
/// explorer then owns the order: deliver read(1)'s phase 1 to {s0, s1}
/// and the disarmed check serves v2 off the lone fresh replier s0 (weight
/// 1 < 3/2, honestly a miss); deliver read(2)'s phase 1 to {s1, s2} and
/// it *legitimately* fast-paths v1 (fresh weight 2). Same client, reads
/// back-to-back: v2 then v1 is a new/old inversion, flagged by
/// read-atomicity once write(2)'s stragglers drain and the run completes.
fn fastpath_inversion_setup(rs: &mut RunState) {
    // Setup runs before `build`'s trailing closure; start the scripted
    // ops now so there is traffic to schedule.
    rs.closure();
    let reader = rs.harness.client_actor(1);
    let not_reader = move |e: &PendingEvent| match e.kind {
        PendingKind::Deliver { from, to, .. } => from != reader && to != reader,
        _ => false,
    };
    run_until(rs, not_reader, |rs| !rs.harness.history().is_empty());
    run_until(rs, not_reader, |rs| {
        pending_kind_to(rs, ActorId(0), "W") >= 1
    });
    let w2 = rs
        .harness
        .world
        .pending_events()
        .iter()
        .find(|e| {
            matches!(e.kind, PendingKind::Deliver { to, kind, .. }
            if to == ActorId(0) && kind == "W")
        })
        .map(|e| e.seq)
        .expect("setup: write(2)'s W is not pending at s0");
    rs.harness.world.step_seq(w2);
    rs.closure();
    assert!(
        reg_tag(rs, 0) > reg_tag(rs, 1) && reg_tag(rs, 0) > reg_tag(rs, 2),
        "setup: s0 must hold write(2)'s register while s1/s2 hold write(1)'s"
    );
}

/// See [`fastpath_inversion_setup`] for the split this scenario pins.
fn fastpath_scenario() -> Scenario {
    Scenario {
        name: "mut-fastpath",
        about: "split registers; weight-free fast path serves a new/old inversion",
        cfg: RpConfig::uniform(3, 1),
        scripts: vec![
            vec![
                ClientOp::Write(ObjectId::DEFAULT, 1),
                ClientOp::Write(ObjectId::DEFAULT, 2),
            ],
            vec![
                ClientOp::Read(ObjectId::DEFAULT),
                ClientOp::Read(ObjectId::DEFAULT),
            ],
        ],
        transfers: vec![],
        durable: false,
        crash_budget: 0,
        setup: Some(fastpath_inversion_setup),
    }
}

#[test]
fn disarm_fastpath_weight_check_is_caught() {
    let scenario = fastpath_scenario();
    assert_clean_unmutated(&scenario, 12, 60_000);
    let report = assert_caught(
        &scenario,
        Mutation::DisarmFastPathWeightCheck,
        "read-atomicity",
        |e| e.run(),
    );
    assert!(report.detail.contains("linearizable"), "{}", report.detail);
}

#[test]
fn reuse_rb_seq_is_caught() {
    let scenario = reuse_scenario();
    assert_clean_unmutated(&scenario, 10, 60_000);
    let report = assert_caught(&scenario, Mutation::ReuseRbSeq, "join-liveness", |e| {
        e.run()
    });
    assert!(
        report.detail.contains("transfers completed"),
        "{}",
        report.detail
    );
}
