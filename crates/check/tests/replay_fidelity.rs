//! Replay fidelity: the foundation the explorer and the counterexample
//! minimizer stand on.
//!
//! The explorer names a state by the choice sequence that reaches it and
//! rebuilds worlds by replaying prefixes; [`awr_check::minimize`] replays
//! shortened schedules. Both are only sound if replay is *exact*: applying
//! the same prefix to a fresh scenario must land on the same canonical
//! state hash every time. This property test records a pseudo-random
//! schedule together with the state digest after every step, then replays
//! **every** prefix from scratch and asserts the digests match.

use awr_check::{builtin_scenarios, Choice, RunState, Scenario};
use proptest::prelude::*;

/// Drives `scenario` with a deterministic pseudo-random schedule derived
/// from `seed`, recording the digest after each applied choice (index 0 =
/// the root digest).
fn record(scenario: &Scenario, seed: u64, max_steps: usize) -> (Vec<Choice>, Vec<u64>) {
    let mut rs = RunState::build(scenario);
    let mut schedule = Vec::new();
    let mut digests = vec![rs.state_digest()];
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5);
    for _ in 0..max_steps {
        let choices = rs.choices();
        if choices.is_empty() {
            break;
        }
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let c = choices[((x >> 33) as usize) % choices.len()];
        assert!(rs.apply(c), "recorded choice must be applicable");
        schedule.push(c);
        digests.push(rs.state_digest());
    }
    (schedule, digests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any prefix of a recorded schedule replays to the recorded hash —
    /// across every built-in scenario (including the durable one, whose
    /// choices cover crash/restart points).
    #[test]
    fn any_prefix_replays_to_recorded_hash(seed in 0u64..10_000, pick in 0usize..16) {
        let scenarios = builtin_scenarios();
        let scenario = &scenarios[pick % scenarios.len()];
        let (schedule, digests) = record(scenario, seed, 24);
        prop_assert!(!digests.is_empty());
        for prefix in 0..=schedule.len() {
            let mut rs = RunState::build(scenario);
            for c in &schedule[..prefix] {
                prop_assert!(rs.apply(*c), "replay diverged: choice inapplicable");
            }
            prop_assert_eq!(
                rs.state_digest(),
                digests[prefix],
                "prefix of {} / {} choices diverged in scenario {}",
                prefix,
                schedule.len(),
                scenario.name
            );
        }
    }

    /// Replaying the *same full schedule* twice in a row is also stable —
    /// no hidden global state leaks between builds.
    #[test]
    fn full_replay_is_idempotent(seed in 0u64..10_000, pick in 0usize..16) {
        let scenarios = builtin_scenarios();
        let scenario = &scenarios[pick % scenarios.len()];
        let (schedule, digests) = record(scenario, seed, 24);
        let (schedule2, digests2) = record(scenario, seed, 24);
        prop_assert_eq!(schedule, schedule2);
        prop_assert_eq!(digests, digests2);
    }
}
