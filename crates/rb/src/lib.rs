//! # awr-rb — uniform reliable broadcast for crash-prone systems
//!
//! Algorithm 4 of the paper broadcasts each transfer's change pair with a
//! *reliable broadcast* primitive (citing Hadzilacos–Toueg). This crate
//! provides the classic eager-relay construction for the crash model:
//!
//! * **RB-broadcast(m)**: send `m` to every process (including yourself);
//! * **on first receipt of m**: relay `m` to every process, then deliver.
//!
//! Guarantees (with reliable links, any number of crash faults):
//!
//! * **Validity** — if a correct process broadcasts `m`, it delivers `m`;
//! * **Agreement (uniform)** — if *any* process delivers `m`, every correct
//!   process eventually delivers `m` (even if the origin crashed mid-send);
//! * **Integrity** — every process delivers `m` at most once, and only if
//!   it was broadcast.
//!
//! [`RbEngine`] is an embeddable component: protocols own one, wrap
//! [`RbEnvelope`]s into their own message enums, and call
//! [`RbEngine::on_envelope`] on receipt. This keeps one network (and one
//! adversary) for the whole protocol stack instead of layering actors.
//!
//! # Examples
//!
//! The typical embedding is:
//!
//! ```ignore
//! match msg {
//!     MyMsg::Rb(env) => {
//!         if let Some(payload) = self.rb.on_envelope(env, ctx, MyMsg::Rb) {
//!             self.handle_delivery(payload, ctx);
//!         }
//!     }
//!     // ... other protocol messages
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::fmt;

use awr_sim::{ActorId, Context, Message};
use serde::{Deserialize, Serialize};

/// A broadcast instance on the wire: the origin's id, the origin-local
/// sequence number (deduplication key), and the payload.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RbEnvelope<P> {
    /// The process that invoked `RB-broadcast`.
    pub origin: ActorId,
    /// Origin-local sequence number of the broadcast.
    pub seq: u64,
    /// The broadcast content.
    pub payload: P,
}

impl<P: fmt::Debug> fmt::Debug for RbEnvelope<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RB[{}#{} {:?}]", self.origin, self.seq, self.payload)
    }
}

/// Per-process state of the eager-relay uniform reliable broadcast.
///
/// One engine per actor. The engine does not know the enclosing protocol's
/// message type; callers pass a `wrap` function that injects an
/// [`RbEnvelope`] into their own message enum.
#[derive(Debug)]
pub struct RbEngine<P> {
    self_id: ActorId,
    /// All actor ids that participate in relays (typically all servers).
    members: Vec<ActorId>,
    seen: HashSet<(ActorId, u64)>,
    next_seq: u64,
    delivered_count: u64,
    _marker: std::marker::PhantomData<P>,
}

impl<P: Clone + fmt::Debug + Send + 'static> RbEngine<P> {
    /// Creates an engine for `self_id`, relaying among `members`.
    pub fn new(self_id: ActorId, members: Vec<ActorId>) -> RbEngine<P> {
        RbEngine {
            self_id,
            members,
            seen: HashSet::new(),
            next_seq: 0,
            delivered_count: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// The number of payloads this engine has delivered.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Advances the broadcast sequence to at least `seq` — the crash
    /// recovery hook. Deduplication is keyed by `(origin, seq)`, so a
    /// rebooted process that restarted its sequence at 0 would have every
    /// fresh broadcast swallowed as a duplicate of a pre-crash envelope;
    /// callers resume past an upper bound on the sequences they could have
    /// used (gaps are harmless — delivery is dedup-only, not ordered).
    pub fn resume_at(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// A canonical digest of this engine's logical state (sequence cursor
    /// and sorted dedup set), for the model-checking explorer.
    pub fn state_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.next_seq.hash(&mut h);
        self.delivered_count.hash(&mut h);
        let mut seen: Vec<(usize, u64)> = self.seen.iter().map(|(a, s)| (a.index(), *s)).collect();
        seen.sort_unstable();
        seen.hash(&mut h);
        h.finish()
    }

    /// RB-broadcasts `payload`. Sends the envelope to every *other* member
    /// and delivers locally at once (the local delivery is the return
    /// value — handle it exactly like a delivery from the network).
    pub fn broadcast<M: Message>(
        &mut self,
        payload: P,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(RbEnvelope<P>) -> M,
    ) -> P {
        #[cfg(feature = "mutate")]
        let seq =
            if awr_sim::mutate::armed(awr_sim::mutate::Mutation::ReuseRbSeq) && self.next_seq > 0 {
                // MUTATION: reuse the previous sequence number — every peer's
                // dedup set already contains (origin, seq), so this broadcast
                // is swallowed network-wide.
                self.next_seq - 1
            } else {
                self.next_seq
            };
        #[cfg(not(feature = "mutate"))]
        let seq = self.next_seq;
        let env = RbEnvelope {
            origin: self.self_id,
            seq,
            payload: payload.clone(),
        };
        self.next_seq = self.next_seq.max(seq + 1);
        self.seen.insert((env.origin, env.seq));
        self.delivered_count += 1;
        for &m in &self.members {
            if m != self.self_id {
                ctx.send(m, wrap(env.clone()));
            }
        }
        payload
    }

    /// Processes an incoming envelope. On first receipt, relays it to every
    /// other member and returns `Some(payload)` (the delivery); duplicate
    /// receipts return `None`.
    pub fn on_envelope<M: Message>(
        &mut self,
        env: RbEnvelope<P>,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(RbEnvelope<P>) -> M,
    ) -> Option<P> {
        if !self.seen.insert((env.origin, env.seq)) {
            return None;
        }
        for &m in &self.members {
            if m != self.self_id && m != env.origin {
                ctx.send(m, wrap(env.clone()));
            }
        }
        self.delivered_count += 1;
        Some(env.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awr_sim::{Actor, ActorId, Message, UniformLatency, World};
    use std::any::Any;

    #[derive(Clone, Debug)]
    enum Msg {
        Rb(RbEnvelope<String>),
        /// A "broken" direct send used to model a crash mid-broadcast: the
        /// origin manually sends the envelope to a subset and crashes.
        Partial(RbEnvelope<String>),
    }
    impl Message for Msg {
        fn kind(&self) -> &'static str {
            "rb"
        }
    }

    struct Node {
        rb: RbEngine<String>,
        delivered: Vec<String>,
        /// If set on actor 0: broadcast this payload on start.
        broadcast_on_start: Option<String>,
        /// If set: send the envelope to only this many peers, then crash.
        partial_then_crash: Option<usize>,
    }

    impl Node {
        fn new(id: usize, n: usize) -> Node {
            Node {
                rb: RbEngine::new(ActorId(id), (0..n).map(ActorId).collect()),
                delivered: Vec::new(),
                broadcast_on_start: None,
                partial_then_crash: None,
            }
        }
    }

    impl Actor for Node {
        type Msg = Msg;

        fn on_start(&mut self, ctx: &mut awr_sim::Context<'_, Msg>) {
            if let Some(k) = self.partial_then_crash {
                // Crash mid-broadcast: envelope reaches only k peers.
                let env = RbEnvelope {
                    origin: ctx.id(),
                    seq: 0,
                    payload: "half-done".to_string(),
                };
                let n = ctx.n_actors();
                for i in 0..n {
                    if ActorId(i) != ctx.id() && i <= k {
                        ctx.send(ActorId(i), Msg::Partial(env.clone()));
                    }
                }
                ctx.crash_self();
            } else if let Some(p) = self.broadcast_on_start.take() {
                let delivered = self.rb.broadcast(p, ctx, Msg::Rb);
                self.delivered.push(delivered);
            }
        }

        fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut awr_sim::Context<'_, Msg>) {
            let env = match msg {
                Msg::Rb(e) | Msg::Partial(e) => e,
            };
            if let Some(p) = self.rb.on_envelope(env, ctx, Msg::Rb) {
                self.delivered.push(p);
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build(n: usize, seed: u64) -> World<Msg> {
        let mut w = World::new(seed, UniformLatency::new(1, 100_000));
        for i in 0..n {
            w.add_actor(Node::new(i, n));
        }
        w
    }

    #[test]
    fn validity_and_agreement_no_faults() {
        let mut w = build(5, 1);
        w.actor_mut::<Node>(ActorId(0)).unwrap().broadcast_on_start = Some("hello".into());
        w.run_to_quiescence();
        for i in 0..5 {
            let node = w.actor::<Node>(ActorId(i)).unwrap();
            assert_eq!(node.delivered, vec!["hello".to_string()], "actor {i}");
        }
    }

    #[test]
    fn integrity_no_duplicates_under_heavy_reordering() {
        for seed in 0..20 {
            let mut w = build(6, seed);
            for i in 0..3 {
                w.actor_mut::<Node>(ActorId(i)).unwrap().broadcast_on_start = Some(format!("m{i}"));
            }
            w.run_to_quiescence();
            for i in 0..6 {
                let node = w.actor::<Node>(ActorId(i)).unwrap();
                assert_eq!(node.delivered.len(), 3, "seed {seed} actor {i}");
                let mut sorted = node.delivered.clone();
                sorted.sort();
                assert_eq!(sorted, vec!["m0", "m1", "m2"]);
            }
        }
    }

    #[test]
    fn uniform_agreement_crash_mid_broadcast() {
        // Origin crashes after the envelope reaches a single peer. The
        // eager relay must still deliver to every correct process.
        for seed in 0..20 {
            let mut w = build(5, seed);
            w.actor_mut::<Node>(ActorId(0)).unwrap().partial_then_crash = Some(1);
            w.run_to_quiescence();
            for i in 1..5 {
                let node = w.actor::<Node>(ActorId(i)).unwrap();
                assert_eq!(
                    node.delivered,
                    vec!["half-done".to_string()],
                    "seed {seed} actor {i}"
                );
            }
        }
    }

    #[test]
    fn agreement_with_extra_crashes() {
        // Origin partial-crashes AND one relay may crash mid-run; remaining
        // correct processes must agree (uniformity).
        for seed in 0..20 {
            let mut w = build(6, seed);
            w.actor_mut::<Node>(ActorId(0)).unwrap().partial_then_crash = Some(1);
            if seed % 2 == 0 {
                w.schedule_crash(ActorId(2), awr_sim::Time(50_000));
            }
            w.run_to_quiescence();
            let mut delivered_by_correct = Vec::new();
            for i in 1..6 {
                if w.is_crashed(ActorId(i)) {
                    continue;
                }
                let node = w.actor::<Node>(ActorId(i)).unwrap();
                delivered_by_correct.push(node.delivered.clone());
            }
            let first = &delivered_by_correct[0];
            for d in &delivered_by_correct {
                assert_eq!(d, first, "seed {seed}");
            }
        }
    }

    #[test]
    fn delivered_count_tracks() {
        let mut w = build(3, 9);
        w.actor_mut::<Node>(ActorId(0)).unwrap().broadcast_on_start = Some("x".into());
        w.run_to_quiescence();
        for i in 0..3 {
            assert_eq!(w.actor::<Node>(ActorId(i)).unwrap().rb.delivered_count(), 1);
        }
    }
}
