//! # awr-epoch — the epoch-based weight reassignment baseline
//!
//! A reconstruction of the consensus-free, epoch-based protocol of
//! Heydari, Silvestre & Arantes (NCA 2021) — reference \[11\] of the paper —
//! capturing the two properties the paper criticizes (§VIII):
//!
//! 1. reassignment requests issued during an epoch are only **applied at
//!    the end of the epoch**, so the epoch length lower-bounds reassignment
//!    latency; and
//! 2. the **total weight can shrink** over time: at an epoch boundary every
//!    requested *decrease* applies unconditionally, while an *increase*
//!    applies only up to the weight actually released in the same epoch —
//!    unmatched decreases leak voting power.
//!
//! The restricted pairwise protocol of `awr-core` is *epochless* and
//! conserves the total; experiment E8 quantifies both advantages.
//!
//! The reconstruction is deliberately simulator-local (a [`EpochEngine`]
//! driven by the harness at epoch boundaries) rather than a full
//! message-passing re-implementation of \[11\]: the compared quantities —
//! application delay and total weight — depend only on the epoch semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use awr_quorum::rp_floor;
use awr_sim::Time;
use awr_types::{Ratio, ServerId, WeightMap};

/// A reassignment request submitted during an epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochRequest {
    /// The server whose weight changes.
    pub server: ServerId,
    /// The signed delta (positive = increase, negative = decrease).
    pub delta: Ratio,
    /// Submission time (for latency accounting).
    pub submitted: Time,
}

/// The outcome of one applied request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochApplied {
    /// The original request.
    pub request: EpochRequest,
    /// The delta actually applied (may be clipped for increases).
    pub applied: Ratio,
    /// The epoch boundary at which it took effect.
    pub applied_at: Time,
}

/// Epoch-based reassignment engine: collects requests, applies them in
/// batch at each epoch boundary.
///
/// # Examples
///
/// ```
/// use awr_epoch::{EpochEngine, EpochRequest};
/// use awr_sim::Time;
/// use awr_types::{Ratio, ServerId, WeightMap};
///
/// let mut e = EpochEngine::new(WeightMap::uniform(5, Ratio::ONE), 1);
/// e.submit(EpochRequest { server: ServerId(0), delta: Ratio::dec("-0.2"),
///                         submitted: Time(10) });
/// // Nothing applies until the boundary.
/// assert_eq!(e.weights().weight(ServerId(0)), Ratio::ONE);
/// let applied = e.end_epoch(Time(1_000));
/// assert_eq!(applied.len(), 1);
/// assert_eq!(e.weights().weight(ServerId(0)), Ratio::dec("0.8"));
/// // The decrease was unmatched: total weight shrank from 5 to 4.8.
/// assert_eq!(e.weights().total(), Ratio::dec("4.8"));
/// ```
#[derive(Clone, Debug)]
pub struct EpochEngine {
    weights: WeightMap,
    f: usize,
    floor: Ratio,
    pending: Vec<EpochRequest>,
    /// Everything applied so far, in application order.
    pub applied_log: Vec<EpochApplied>,
    /// Requests rejected at a boundary (would breach the floor or
    /// Property 1).
    pub rejected: Vec<EpochRequest>,
}

impl EpochEngine {
    /// Creates an engine with the given initial weights and fault
    /// threshold.
    pub fn new(initial: WeightMap, f: usize) -> EpochEngine {
        let floor = rp_floor(initial.total(), initial.len(), f);
        EpochEngine {
            weights: initial,
            f,
            floor,
            pending: Vec::new(),
            applied_log: Vec::new(),
            rejected: Vec::new(),
        }
    }

    /// Current weights (reflecting all closed epochs).
    pub fn weights(&self) -> &WeightMap {
        &self.weights
    }

    /// Requests waiting for the next boundary.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Submits a request during the current epoch.
    pub fn submit(&mut self, req: EpochRequest) {
        self.pending.push(req);
    }

    /// Closes the epoch at time `boundary`: applies the batch and returns
    /// what was applied.
    ///
    /// Application rule (the \[11\] reconstruction):
    /// * decreases apply first, clipped so no server falls to or below the
    ///   floor (a fully infeasible decrease is rejected);
    /// * increases then apply, but only up to the *pool* of weight released
    ///   by this epoch's decreases — weight is never minted, and any
    ///   unmatched released weight is lost (the total-shrink property);
    /// * any application that would break Property 1 is rejected.
    pub fn end_epoch(&mut self, boundary: Time) -> Vec<EpochApplied> {
        let mut batch: Vec<EpochRequest> = std::mem::take(&mut self.pending);
        // Deterministic order: decreases first, then by (server, submitted).
        batch.sort_by_key(|r| (r.delta.is_positive(), r.server, r.submitted));

        let mut released = Ratio::ZERO;
        let mut applied = Vec::new();
        for req in batch {
            if req.delta.is_negative() {
                let decrease = -req.delta; // positive magnitude
                let headroom = self.weights.weight(req.server) - self.floor;
                if headroom <= Ratio::ZERO {
                    self.rejected.push(req);
                    continue;
                }
                // Clip so the server stays strictly above the floor — use
                // the largest grid step below headroom.
                let take = if decrease < headroom {
                    decrease
                } else {
                    // leave a hair above the floor
                    headroom - headroom.min(Ratio::new(1, 100))
                };
                if !take.is_positive() {
                    self.rejected.push(req);
                    continue;
                }
                self.weights.add(req.server, -take);
                released += take;
                applied.push(EpochApplied {
                    request: req,
                    applied: -take,
                    applied_at: boundary,
                });
            } else {
                // Increase: only from the released pool.
                let grant = req.delta.min(released);
                if !grant.is_positive() {
                    self.rejected.push(req);
                    continue;
                }
                let mut hypothetical = self.weights.clone();
                hypothetical.add(req.server, grant);
                if !awr_quorum::integrity_holds(&hypothetical, self.f) {
                    self.rejected.push(req);
                    continue;
                }
                released -= grant;
                self.weights = hypothetical;
                applied.push(EpochApplied {
                    request: req,
                    applied: grant,
                    applied_at: boundary,
                });
            }
        }
        // `released` that nobody claimed is gone — the leak the paper
        // criticizes. Nothing to do: the weights already reflect it.
        self.applied_log.extend(applied.iter().cloned());
        applied
    }

    /// Mean request→application delay over the applied log, in virtual ms.
    pub fn mean_apply_delay_ms(&self) -> f64 {
        if self.applied_log.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .applied_log
            .iter()
            .map(|a| (a.applied_at - a.request.submitted) as f64 / 1e6)
            .sum();
        total / self.applied_log.len() as f64
    }
}

/// When a durable replica checkpoints, and how much history it keeps.
///
/// Epochs are this crate's vocabulary for batched, boundary-driven state
/// transitions; the durability layer reuses it for a replica's *private*
/// logs: a checkpoint is an epoch boundary over the replica's own
/// append-order state — its `ChangeSet` journal (compacted via
/// `ChangeSet::compact_journal`) and its write-ahead log (folded into a
/// snapshot) — rather than over the shared weight map.
///
/// Two knobs govern the trade:
///
/// * [`every`](CheckpointCadence::every) bounds how much un-checkpointed
///   log a crash can force recovery to replay (and how much journal memory
///   a replica carries between checkpoints);
/// * [`min_retain`](CheckpointCadence::min_retain) keeps a tail of recent
///   journal entries alive past each checkpoint so slightly-behind peers
///   still negotiate cheap deltas instead of degrading to full change
///   sets.
///
/// # Examples
///
/// ```
/// use awr_epoch::CheckpointCadence;
///
/// let cadence = CheckpointCadence::new(8, 4);
/// assert!(!cadence.due(7));
/// assert!(cadence.due(8));
/// // Keep whichever is larger: the floor, or what the slowest acked
/// // peer still needs for a delta.
/// assert_eq!(cadence.retain(2), 4);
/// assert_eq!(cadence.retain(9), 9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointCadence {
    /// Checkpoint whenever the log has grown by this many entries since
    /// the last checkpoint (clamped to at least 1).
    pub every: usize,
    /// Always retain at least this many of the most recent journal
    /// entries across a compaction.
    pub min_retain: usize,
}

impl CheckpointCadence {
    /// Creates a cadence that checkpoints every `every` log entries and
    /// retains at least `min_retain` journal entries.
    pub const fn new(every: usize, min_retain: usize) -> CheckpointCadence {
        CheckpointCadence { every, min_retain }
    }

    /// Whether a log that has accumulated `grown` entries since the last
    /// checkpoint is due for one.
    pub fn due(&self, grown: usize) -> bool {
        grown >= self.every.max(1)
    }

    /// How many journal entries a compaction should keep, given the
    /// longest suffix any acked peer still needs for a delta.
    pub fn retain(&self, deepest_peer_suffix: usize) -> usize {
        self.min_retain.max(deepest_peer_suffix)
    }
}

/// Checkpoint every 64 log entries, retaining a 16-entry delta tail —
/// frequent enough that recovery replay and journal memory stay small,
/// sparse enough that checkpoint work is amortized across many operations.
impl Default for CheckpointCadence {
    fn default() -> CheckpointCadence {
        CheckpointCadence::new(64, 16)
    }
}

#[cfg(test)]
mod cadence_tests {
    use super::CheckpointCadence;

    #[test]
    fn due_is_threshold_with_floor_of_one() {
        let c = CheckpointCadence::new(0, 0);
        assert!(!c.due(0));
        assert!(c.due(1), "every=0 clamps to 1, not to never");
        let c = CheckpointCadence::new(5, 2);
        assert!(!c.due(4));
        assert!(c.due(5) && c.due(50));
    }

    #[test]
    fn retain_floors_at_min() {
        let c = CheckpointCadence::new(8, 6);
        assert_eq!(c.retain(0), 6);
        assert_eq!(c.retain(6), 6);
        assert_eq!(c.retain(7), 7);
    }

    #[test]
    fn default_is_sane() {
        let c = CheckpointCadence::default();
        assert!(c.every > c.min_retain);
        assert!(c.due(c.every));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    fn engine() -> EpochEngine {
        EpochEngine::new(WeightMap::uniform(7, Ratio::ONE), 2)
    }

    #[test]
    fn requests_wait_for_boundary() {
        let mut e = engine();
        e.submit(EpochRequest {
            server: s(0),
            delta: Ratio::dec("-0.1"),
            submitted: Time(5),
        });
        assert_eq!(e.pending_count(), 1);
        assert_eq!(e.weights().weight(s(0)), Ratio::ONE);
        e.end_epoch(Time(100));
        assert_eq!(e.pending_count(), 0);
        assert_eq!(e.weights().weight(s(0)), Ratio::dec("0.9"));
    }

    #[test]
    fn matched_transfer_conserves_total() {
        let mut e = engine();
        e.submit(EpochRequest {
            server: s(0),
            delta: Ratio::dec("-0.2"),
            submitted: Time(1),
        });
        e.submit(EpochRequest {
            server: s(1),
            delta: Ratio::dec("0.2"),
            submitted: Time(2),
        });
        let applied = e.end_epoch(Time(100));
        assert_eq!(applied.len(), 2);
        assert_eq!(e.weights().total(), Ratio::integer(7));
        assert_eq!(e.weights().weight(s(1)), Ratio::dec("1.2"));
    }

    #[test]
    fn unmatched_decrease_leaks_total() {
        let mut e = engine();
        e.submit(EpochRequest {
            server: s(0),
            delta: Ratio::dec("-0.2"),
            submitted: Time(1),
        });
        e.end_epoch(Time(100));
        assert_eq!(e.weights().total(), Ratio::dec("6.8"));
    }

    #[test]
    fn increase_without_release_rejected() {
        let mut e = engine();
        e.submit(EpochRequest {
            server: s(0),
            delta: Ratio::dec("0.2"),
            submitted: Time(1),
        });
        let applied = e.end_epoch(Time(100));
        assert!(applied.is_empty());
        assert_eq!(e.rejected.len(), 1);
        assert_eq!(e.weights().total(), Ratio::integer(7));
    }

    #[test]
    fn increase_clipped_to_released_pool() {
        let mut e = engine();
        e.submit(EpochRequest {
            server: s(0),
            delta: Ratio::dec("-0.1"),
            submitted: Time(1),
        });
        e.submit(EpochRequest {
            server: s(1),
            delta: Ratio::dec("0.5"),
            submitted: Time(2),
        });
        let applied = e.end_epoch(Time(100));
        assert_eq!(applied.len(), 2);
        // The increase got only the released 0.1.
        assert_eq!(e.weights().weight(s(1)), Ratio::dec("1.1"));
        assert_eq!(e.weights().total(), Ratio::integer(7));
    }

    #[test]
    fn floor_respected_with_clipping() {
        let mut e = engine(); // floor 0.7
        e.submit(EpochRequest {
            server: s(0),
            delta: Ratio::dec("-0.5"), // headroom is only 0.3
            submitted: Time(1),
        });
        e.end_epoch(Time(100));
        assert!(e.weights().weight(s(0)) > Ratio::dec("0.7"));
        assert!(awr_quorum::rp_integrity_holds(
            e.weights(),
            Ratio::dec("0.7")
        ));
    }

    #[test]
    fn apply_delay_tracks_epoch_length() {
        let mut e = engine();
        e.submit(EpochRequest {
            server: s(0),
            delta: Ratio::dec("-0.1"),
            submitted: Time(0),
        });
        e.end_epoch(Time(1_000_000_000)); // 1 s boundary
        assert!((e.mean_apply_delay_ms() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn property1_never_violated_across_epochs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = engine();
        for epoch in 0..50u64 {
            for _ in 0..4 {
                let server = s(rng.random_range(0..7));
                let mag = Ratio::new(rng.random_range(1..=3i128), 10);
                let delta = if rng.random_range(0..2) == 0 {
                    mag
                } else {
                    -mag
                };
                e.submit(EpochRequest {
                    server,
                    delta,
                    submitted: Time(epoch * 1000),
                });
            }
            e.end_epoch(Time((epoch + 1) * 1000));
            assert!(
                awr_quorum::integrity_holds(e.weights(), 2),
                "epoch {epoch}: {:?}",
                e.weights()
            );
            // Total never grows.
            assert!(e.weights().total() <= Ratio::integer(7));
        }
    }
}
