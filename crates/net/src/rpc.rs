//! Request-id-tagged exchanges: many overlapping broadcasts on one pool.
//!
//! [`crate::Replies`] matches replies **by peer**, which forces the
//! documented single-exchange-in-flight contract: a straggler answering
//! request *k* while the caller waits on request *k+1* would be
//! indistinguishable from a fresh reply and is therefore dropped. That is
//! fine for one-shot control-plane calls, but the fast-path read
//! optimization wants to *overlap* exchanges on one pool — fire the
//! targeted write-back of one read while late phase-1 replies of the
//! previous read are still in flight.
//!
//! [`RpcPool`] lifts the contract with a request-id wire field: every
//! outbound message is wrapped in an [`Rpc`] envelope carrying a
//! pool-local `req` counter, responders echo the id back
//! ([`Rpc::reply`]), and the pool routes each inbound reply to the
//! exchange that asked for it. Waiting on exchange B while a reply to
//! still-pending exchange A arrives *buffers* A's reply instead of
//! dropping it; a reply to a finished (retired) exchange is discarded,
//! like the network losing a late ack.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use awr_sim::ActorId;
use awr_types::{ChangeSet, Ratio, ServerId};
use serde::{Deserialize, DeserializeOwned, Serialize};

use crate::pool::{ConnectionPool, PoolStats, QuorumTimeout, Reconnect};

/// The request-id envelope: `req` names the exchange, `body` is the
/// protocol message. Serialized as-is, so the frame layer needs no
/// changes — the id is just two extra payload fields away from a bare
/// body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rpc<T> {
    /// Pool-local exchange id, echoed verbatim by responders.
    pub req: u64,
    /// The wrapped protocol message.
    pub body: T,
}

impl<T> Rpc<T> {
    /// Builds the reply envelope for this request: same `req`, new body.
    /// Responders answer `Rpc<Req>` with `msg.reply(ans)`.
    pub fn reply<U>(&self, body: U) -> Rpc<U> {
        Rpc {
            req: self.req,
            body,
        }
    }
}

/// One pending exchange: who has not answered yet, and what arrived.
#[derive(Debug)]
struct Exchange<R> {
    outstanding: Vec<ActorId>,
    got: Vec<(ActorId, R)>,
}

/// A [`ConnectionPool`] speaking [`Rpc`]-enveloped frames, with any
/// number of exchanges in flight.
///
/// [`RpcPool::broadcast_to`] starts an exchange and returns its id;
/// [`RpcPool::wait`] (and the [`RpcPool::wait_weight`] /
/// [`RpcPool::wait_weight_quorum`] quorum shapes mirroring
/// [`crate::Replies`]) blocks on *one* exchange while still routing
/// replies that belong to the others. An exchange retires when its wait
/// returns (quorum met or timed out); late replies to a retired id are
/// dropped.
#[derive(Debug)]
pub struct RpcPool<S, R> {
    pool: ConnectionPool<Rpc<S>, Rpc<R>>,
    next_req: u64,
    pending: BTreeMap<u64, Exchange<R>>,
}

impl<S: Serialize, R: DeserializeOwned> RpcPool<S, R> {
    /// Creates a pool speaking for `me`, one slot per peer address.
    pub fn new(me: ActorId, addrs: Vec<std::net::SocketAddr>) -> RpcPool<S, R> {
        RpcPool::with_reconnect(me, addrs, Reconnect::default())
    }

    /// [`RpcPool::new`] with an explicit dial-retry policy.
    pub fn with_reconnect(
        me: ActorId,
        addrs: Vec<std::net::SocketAddr>,
        reconnect: Reconnect,
    ) -> RpcPool<S, R> {
        RpcPool {
            pool: ConnectionPool::with_reconnect(me, addrs, reconnect),
            next_req: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Send-side counters of the underlying pool.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Exchanges started and not yet retired by a wait.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Starts an exchange over the whole mesh.
    pub fn broadcast(&mut self, msg: &S) -> u64
    where
        S: Clone,
    {
        let all: Vec<ActorId> = (0..self.pool.n_peers()).map(ActorId).collect();
        self.broadcast_to(all, msg)
    }

    /// Starts an exchange over the peers satisfying `keep` — the
    /// target-filter shape shared with the simulator's
    /// `Context::broadcast_filter` (targeted write-backs contact only the
    /// stale repliers).
    pub fn broadcast_filter(&mut self, msg: &S, mut keep: impl FnMut(ActorId) -> bool) -> u64
    where
        S: Clone,
    {
        let targets: Vec<ActorId> = (0..self.pool.n_peers())
            .map(ActorId)
            .filter(|a| keep(*a))
            .collect();
        self.broadcast_to(targets, msg)
    }

    /// Starts an exchange over an explicit target set and returns its id.
    /// Unreachable targets are dropped per the pool's crash-model
    /// semantics but stay formally outstanding (like a message the
    /// network ate).
    pub fn broadcast_to(&mut self, targets: Vec<ActorId>, msg: &S) -> u64
    where
        S: Clone,
    {
        let req = self.next_req;
        self.next_req += 1;
        let envelope = Rpc {
            req,
            body: msg.clone(),
        };
        for &t in &targets {
            self.pool.send(t, &envelope);
        }
        self.pending.insert(
            req,
            Exchange {
                outstanding: targets,
                got: Vec::new(),
            },
        );
        req
    }

    /// Routes one inbound reply, if any, into its exchange. Replies with
    /// an unknown (retired or never-issued) id, duplicate replies, and
    /// replies from peers outside the exchange's target set are dropped.
    fn pump(&mut self) -> bool {
        let Some((from, envelope)) = self.pool.poll_any() else {
            return false;
        };
        if let Some(ex) = self.pending.get_mut(&envelope.req) {
            if let Some(i) = ex.outstanding.iter().position(|&t| t == from) {
                ex.outstanding.swap_remove(i);
                ex.got.push((from, envelope.body));
            }
        }
        true
    }

    /// Waits until `done` holds over exchange `req`'s replies, or until
    /// `timeout` passes, or until every target has answered without
    /// satisfying the predicate. The exchange retires either way; replies
    /// to *other* pending exchanges arriving meanwhile are buffered for
    /// their own waits.
    ///
    /// # Panics
    ///
    /// Panics if `req` was never issued or has already retired.
    pub fn wait(
        &mut self,
        req: u64,
        timeout: Duration,
        mut done: impl FnMut(&[(ActorId, R)]) -> bool,
    ) -> Result<Vec<(ActorId, R)>, QuorumTimeout<R>> {
        assert!(self.pending.contains_key(&req), "unknown exchange {req}");
        let deadline = Instant::now() + timeout;
        loop {
            let ex = self.pending.get(&req).expect("checked above");
            if done(&ex.got) {
                let ex = self.pending.remove(&req).expect("checked above");
                return Ok(ex.got);
            }
            if ex.outstanding.is_empty() || Instant::now() >= deadline {
                let ex = self.pending.remove(&req).expect("checked above");
                return Err(QuorumTimeout { got: ex.got });
            }
            if !self.pump() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Waits for at least `count` replies to exchange `req`.
    pub fn wait_count(
        &mut self,
        req: u64,
        timeout: Duration,
        count: usize,
    ) -> Result<Vec<(ActorId, R)>, QuorumTimeout<R>> {
        self.wait(req, timeout, |got| got.len() >= count)
    }

    /// Weight-aware quorum wait on exchange `req`: completes once the
    /// summed weight of the replied peers strictly exceeds half of
    /// `total` (the paper's quorum rule).
    pub fn wait_weight(
        &mut self,
        req: u64,
        timeout: Duration,
        total: Ratio,
        mut weight_of: impl FnMut(ActorId) -> Ratio,
    ) -> Result<Vec<(ActorId, R)>, QuorumTimeout<R>> {
        let half = total.half();
        self.wait(req, timeout, |got| {
            let mut sum = Ratio::ZERO;
            for (from, _) in got {
                sum += weight_of(*from);
            }
            sum > half
        })
    }

    /// [`RpcPool::wait_weight`] with weights from a [`ChangeSet`] over an
    /// `n`-server system, peer `i` standing for `ServerId(i)`.
    pub fn wait_weight_quorum(
        &mut self,
        req: u64,
        timeout: Duration,
        changes: &ChangeSet,
        n: usize,
    ) -> Result<Vec<(ActorId, R)>, QuorumTimeout<R>> {
        let total = changes.total_weight(n);
        self.wait_weight(req, timeout, total, |a| {
            changes.server_weight(ServerId(a.index() as u32))
        })
    }

    /// Closes every live connection.
    pub fn close_all(&mut self) {
        self.pool.close_all();
    }
}
