//! Dialer-side connection management: framed channels, a per-peer
//! [`ConnectionPool`] with reconnect-on-error, broadcast, and the
//! weight-aware quorum-wait [`Replies`] combinator.
//!
//! The pool owns the **outbound** half of a node's connectivity: every
//! process dials its peers lazily on first send, prefixing each connection
//! with a fixed 13-byte hello (`magic ∥ version ∥ ActorId`) so the
//! acceptor knows who is talking, then switching to [`crate::frame`]
//! frames. A send that hits a dead socket redials once
//! ([`Reconnect::attempts`] dials with [`Reconnect::backoff`] between
//! them) and then **drops** the message — the crash model's contract: an
//! unreachable peer is indistinguishable from a crashed one, and the
//! protocols above already tolerate crashed peers (see
//! `awr_sim::transport`'s module docs).
//!
//! Channels are duplex: the pool can also *receive* on the connections it
//! dialed, which is the classic RPC shape — broadcast a request, collect
//! replies on the same sockets. [`BroadcastPool::broadcast`] returns a
//! [`Replies`] collector whose quorum predicates are weight-aware:
//! [`Replies::wait_weight`] completes as soon as the replied weight
//! strictly exceeds half the total, the paper's read/write quorum rule,
//! under *any* weight assignment. (The full replicated-register protocols
//! do their own reply matching inside the actors and use the pool only for
//! sending, via `TcpTransport`; the RPC shape is for control planes,
//! tools, and tests.)

use std::io::{Read, Write};
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use awr_sim::ActorId;
use awr_types::{ChangeSet, Ratio, ServerId};
use serde::{DeserializeOwned, Serialize};

use crate::frame::{decode_frame, write_frame, FrameError, WIRE_VERSION};

/// First bytes of every connection, before any frame.
pub const HELLO_MAGIC: [u8; 4] = *b"AWRT";

/// Writes the connection hello: magic, wire version, and the dialer's id.
pub fn write_hello(w: &mut impl Write, me: ActorId) -> Result<(), FrameError> {
    let mut hello = [0u8; 13];
    hello[..4].copy_from_slice(&HELLO_MAGIC);
    hello[4] = WIRE_VERSION;
    hello[5..].copy_from_slice(&(me.index() as u64).to_le_bytes());
    w.write_all(&hello).map_err(FrameError::Io)
}

/// Reads and validates a connection hello, returning the dialer's id.
pub fn read_hello(r: &mut impl Read) -> Result<ActorId, FrameError> {
    let mut hello = [0u8; 13];
    r.read_exact(&mut hello)?;
    if hello[..4] != HELLO_MAGIC {
        return Err(FrameError::Codec(serde::Error::custom("bad hello magic")));
    }
    if hello[4] != WIRE_VERSION {
        return Err(FrameError::BadVersion(hello[4]));
    }
    let id = u64::from_le_bytes(hello[5..].try_into().unwrap());
    Ok(ActorId(id as usize))
}

/// Dial-retry policy for [`ConnectionPool`].
#[derive(Clone, Copy, Debug)]
pub struct Reconnect {
    /// Dial attempts per send before the message is dropped.
    pub attempts: u32,
    /// Pause between attempts.
    pub backoff: Duration,
}

impl Default for Reconnect {
    fn default() -> Reconnect {
        Reconnect {
            attempts: 5,
            backoff: Duration::from_millis(40),
        }
    }
}

/// One framed, duplex TCP connection: typed sends of `S`, typed receives
/// of `R`.
///
/// Receives go through an internal buffer filled by non-blocking reads, so
/// polling never strands a half-read frame: bytes accumulate until a whole
/// frame is present, then it is decoded and drained atomically.
#[derive(Debug)]
pub struct Channel<S, R> {
    stream: TcpStream,
    rbuf: Vec<u8>,
    _types: PhantomData<fn(&S) -> R>,
}

impl<S: Serialize, R: DeserializeOwned> Channel<S, R> {
    /// Dials `addr` and sends the hello identifying this side as `me`.
    pub fn connect(addr: SocketAddr, me: ActorId) -> Result<Channel<S, R>, FrameError> {
        let mut stream = TcpStream::connect(addr).map_err(FrameError::Io)?;
        stream.set_nodelay(true).map_err(FrameError::Io)?;
        write_hello(&mut stream, me)?;
        Ok(Channel::from_stream(stream))
    }

    /// Wraps an already-established stream (the acceptor side, after it
    /// has consumed the hello itself).
    pub fn from_stream(stream: TcpStream) -> Channel<S, R> {
        Channel {
            stream,
            rbuf: Vec::new(),
            _types: PhantomData,
        }
    }

    /// Sends one message as a frame (blocking write), returning the frame
    /// size in bytes.
    pub fn send(&mut self, msg: &S) -> Result<usize, FrameError> {
        self.stream.set_nonblocking(false).map_err(FrameError::Io)?;
        write_frame(&mut self.stream, msg)
    }

    /// Non-blocking receive: returns a message if a whole frame has
    /// arrived, `None` if the connection is merely quiet. Errors mean the
    /// connection is dead (closed, reset, or speaking garbage).
    pub fn poll(&mut self) -> Result<Option<R>, FrameError> {
        self.stream.set_nonblocking(true).map_err(FrameError::Io)?;
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.rbuf.is_empty() {
                        Err(FrameError::Closed)
                    } else {
                        Err(FrameError::Truncated)
                    };
                }
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        match decode_frame::<R>(&self.rbuf)? {
            Some((msg, consumed)) => {
                self.rbuf.drain(..consumed);
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }

    /// Shuts the connection down in both directions (best effort).
    pub fn close(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// Send-side counters of a [`ConnectionPool`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Frames successfully written.
    pub frames_sent: u64,
    /// Total frame bytes written (header + version + payload).
    pub frame_bytes_sent: u64,
    /// Messages dropped after the reconnect budget was exhausted.
    pub dropped: u64,
    /// Successful dials (first connections and reconnects).
    pub dials: u64,
}

/// Lazily-dialed, self-healing connections to a fixed set of peers.
///
/// Peer `i` of `addrs` is [`ActorId`]`(i)` — the same dense id space the
/// rest of the workspace uses. See the [module docs](self) for the
/// send/drop semantics.
#[derive(Debug)]
pub struct ConnectionPool<S, R> {
    me: ActorId,
    addrs: Vec<SocketAddr>,
    conns: Vec<Option<Channel<S, R>>>,
    reconnect: Reconnect,
    stats: PoolStats,
}

impl<S: Serialize, R: DeserializeOwned> ConnectionPool<S, R> {
    /// Creates a pool speaking for `me`, with one slot per peer address.
    pub fn new(me: ActorId, addrs: Vec<SocketAddr>) -> ConnectionPool<S, R> {
        ConnectionPool::with_reconnect(me, addrs, Reconnect::default())
    }

    /// [`ConnectionPool::new`] with an explicit dial-retry policy.
    pub fn with_reconnect(
        me: ActorId,
        addrs: Vec<SocketAddr>,
        reconnect: Reconnect,
    ) -> ConnectionPool<S, R> {
        let conns = addrs.iter().map(|_| None).collect();
        ConnectionPool {
            me,
            addrs,
            conns,
            reconnect,
            stats: PoolStats::default(),
        }
    }

    /// The id this pool dials as.
    pub fn local_id(&self) -> ActorId {
        self.me
    }

    /// Number of peer slots (the mesh size).
    pub fn n_peers(&self) -> usize {
        self.addrs.len()
    }

    /// Send-side counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    fn dial(&mut self, to: ActorId) -> bool {
        for attempt in 0..self.reconnect.attempts {
            if attempt > 0 {
                std::thread::sleep(self.reconnect.backoff);
            }
            if let Ok(ch) = Channel::connect(self.addrs[to.index()], self.me) {
                self.conns[to.index()] = Some(ch);
                self.stats.dials += 1;
                return true;
            }
        }
        false
    }

    /// Sends `msg` to `to`: dials on first use, redials once on a write
    /// error, and otherwise drops the message (crash-model semantics).
    /// Returns the frame size written, or `None` if the message was
    /// dropped.
    pub fn send(&mut self, to: ActorId, msg: &S) -> Option<usize> {
        for _ in 0..2 {
            if self.conns[to.index()].is_none() && !self.dial(to) {
                break;
            }
            let ch = self.conns[to.index()].as_mut().expect("dialed above");
            match ch.send(msg) {
                Ok(bytes) => {
                    self.stats.frames_sent += 1;
                    self.stats.frame_bytes_sent += bytes as u64;
                    return Some(bytes);
                }
                Err(_) => {
                    // Dead socket: discard it and let the next loop
                    // iteration redial exactly once.
                    ch.close();
                    self.conns[to.index()] = None;
                }
            }
        }
        self.stats.dropped += 1;
        None
    }

    /// Polls every live dialed connection once for an inbound message.
    /// Dead connections are discarded (their peer is "crashed" until a
    /// send redials).
    pub fn poll_any(&mut self) -> Option<(ActorId, R)> {
        for i in 0..self.conns.len() {
            let Some(ch) = self.conns[i].as_mut() else {
                continue;
            };
            match ch.poll() {
                Ok(Some(msg)) => return Some((ActorId(i), msg)),
                Ok(None) => {}
                Err(_) => {
                    ch.close();
                    self.conns[i] = None;
                }
            }
        }
        None
    }

    /// Broadcast view over the whole mesh: [`BroadcastPool::broadcast`]
    /// sends to every peer and collects replies.
    pub fn all(&mut self) -> BroadcastPool<'_, S, R> {
        let targets = (0..self.n_peers()).map(ActorId).collect();
        BroadcastPool {
            pool: self,
            targets,
        }
    }

    /// Broadcast view over an explicit target set.
    pub fn targets(&mut self, targets: Vec<ActorId>) -> BroadcastPool<'_, S, R> {
        BroadcastPool {
            pool: self,
            targets,
        }
    }

    /// Broadcast view over the peers satisfying `keep` — the
    /// target-filter shape shared with the simulator's
    /// `Context::broadcast_filter` (a targeted write-back contacts only
    /// the repliers observed stale).
    pub fn filtered(&mut self, mut keep: impl FnMut(ActorId) -> bool) -> BroadcastPool<'_, S, R> {
        let targets = (0..self.n_peers())
            .map(ActorId)
            .filter(|a| keep(*a))
            .collect();
        BroadcastPool {
            pool: self,
            targets,
        }
    }

    /// Closes every live connection.
    pub fn close_all(&mut self) {
        for c in self.conns.iter_mut() {
            if let Some(ch) = c.take() {
                ch.close();
            }
        }
    }
}

/// A one-shot broadcast over a subset of a pool's peers.
#[derive(Debug)]
pub struct BroadcastPool<'p, S, R> {
    pool: &'p mut ConnectionPool<S, R>,
    targets: Vec<ActorId>,
}

impl<'p, S: Serialize, R: DeserializeOwned> BroadcastPool<'p, S, R> {
    /// Sends `msg` to every target (unreachable targets are dropped, per
    /// the pool's semantics) and returns the reply collector.
    pub fn broadcast(self, msg: &S) -> Replies<'p, S, R> {
        for &t in &self.targets {
            self.pool.send(t, msg);
        }
        Replies {
            outstanding: self.targets,
            pool: self.pool,
            got: Vec::new(),
        }
    }
}

/// Why a [`Replies`] wait gave up.
#[derive(Debug)]
pub struct QuorumTimeout<R> {
    /// The replies that did arrive before the deadline.
    pub got: Vec<(ActorId, R)>,
}

/// Collects one reply per broadcast target until a quorum predicate is
/// satisfied.
///
/// The collector reads the pool's dialed connections directly, so it is
/// for the RPC usage shape: one request in flight per pool, each target
/// answering each request at most once. Replies from targets that answer
/// *after* the predicate is satisfied stay buffered in their channels and
/// surface on the next broadcast's wait — matching replies to requests
/// across overlapping operations is the caller's protocol concern (the
/// replicated-register actors do exactly that with op-tagged messages).
/// To overlap exchanges on one pool without that caller-side matching,
/// use [`crate::RpcPool`], which tags every message with a request id and
/// routes replies to the exchange that asked.
#[derive(Debug)]
pub struct Replies<'p, S, R> {
    pool: &'p mut ConnectionPool<S, R>,
    outstanding: Vec<ActorId>,
    got: Vec<(ActorId, R)>,
}

impl<S: Serialize, R: DeserializeOwned> Replies<'_, S, R> {
    /// Waits until `done(&replies)` holds, polling the mesh, or until
    /// `timeout` passes. On success returns the replies collected when the
    /// predicate first held.
    pub fn wait(
        mut self,
        timeout: Duration,
        mut done: impl FnMut(&[(ActorId, R)]) -> bool,
    ) -> Result<Vec<(ActorId, R)>, QuorumTimeout<R>> {
        let deadline = Instant::now() + timeout;
        loop {
            if done(&self.got) {
                return Ok(self.got);
            }
            if self.outstanding.is_empty() || Instant::now() >= deadline {
                return Err(QuorumTimeout { got: self.got });
            }
            match self.pool.poll_any() {
                Some((from, msg)) => {
                    if let Some(i) = self.outstanding.iter().position(|&t| t == from) {
                        self.outstanding.swap_remove(i);
                        self.got.push((from, msg));
                    }
                    // A reply from a non-outstanding peer is a straggler
                    // from an earlier exchange: dropped, like the network
                    // losing a late ack.
                }
                None => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }

    /// Waits for at least `count` replies.
    pub fn wait_count(
        self,
        timeout: Duration,
        count: usize,
    ) -> Result<Vec<(ActorId, R)>, QuorumTimeout<R>> {
        self.wait(timeout, |got| got.len() >= count)
    }

    /// Weight-aware quorum wait: completes once the summed weight of the
    /// replied peers **strictly exceeds half of `total`** — the paper's
    /// quorum rule, valid under any weight assignment. `weight_of` maps a
    /// peer to its current weight (zero for non-servers).
    pub fn wait_weight(
        self,
        timeout: Duration,
        total: Ratio,
        mut weight_of: impl FnMut(ActorId) -> Ratio,
    ) -> Result<Vec<(ActorId, R)>, QuorumTimeout<R>> {
        let half = total.half();
        self.wait(timeout, |got| {
            let mut sum = Ratio::ZERO;
            for (from, _) in got {
                sum += weight_of(*from);
            }
            sum > half
        })
    }

    /// [`Replies::wait_weight`] with weights taken from a [`ChangeSet`]
    /// over an `n`-server system, mapping peer `i` to `ServerId(i)` (the
    /// workspace's server placement).
    pub fn wait_weight_quorum(
        self,
        timeout: Duration,
        changes: &ChangeSet,
        n: usize,
    ) -> Result<Vec<(ActorId, R)>, QuorumTimeout<R>> {
        let total = changes.total_weight(n);
        self.wait_weight(timeout, total, |a| {
            changes.server_weight(ServerId(a.index() as u32))
        })
    }
}
