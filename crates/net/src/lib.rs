//! # awr-net — the real-transport runtime
//!
//! The third runtime of the workspace: the same protocol actors that run
//! in the deterministic simulator (`awr_sim::World`) and the in-process
//! threaded system (`awr_sim::ThreadedSystem`) here run **one OS process
//! per actor**, exchanging length-prefixed binary frames over plain
//! blocking [`std::net::TcpStream`]s on localhost or a real network.
//!
//! Nothing in the protocol crates changes: this crate only implements the
//! [`awr_sim::Transport`] seam (see `awr_sim::transport`) and the plumbing
//! under it —
//!
//! * [`frame`] — the wire format: `u32` little-endian length prefix, a
//!   version byte, and a compact binary encoding of the message's serde
//!   value tree, with oversize/truncation/version checks on both ends;
//! * [`pool`] — dialer-side connectivity: framed duplex [`Channel`]s, the
//!   per-peer [`ConnectionPool`] with reconnect-on-error and crash-model
//!   drop semantics, [`BroadcastPool`], and the weight-aware quorum-wait
//!   [`Replies`] combinator;
//! * [`rpc`] — [`Rpc`] request-id envelopes and the [`RpcPool`] that
//!   lifts `Replies`' single-exchange-in-flight contract: any number of
//!   broadcasts may overlap on one pool, each reply routed to the
//!   exchange that asked for it (the shape targeted write-backs need);
//! * [`tcp`] — [`TcpTransport`], the mesh endpoint (listener thread +
//!   reader threads feeding an inbox) that an `awr_sim::NodeHost` pumps.
//!
//! The `tcp_demo` binary in this crate boots a full multi-process system:
//! N durable server processes and K client processes on localhost, the
//! keyed workload driven over real sockets, per-kind wire accounting
//! cross-validated against a same-seed simulator run. `docs/RUNTIME.md`
//! at the repository root walks through all three runtimes and the demo.
//!
//! ## Example: a two-node mesh in two threads
//!
//! Processes are the intended unit, but the transport does not care —
//! each endpoint is self-contained, so a test can run a mesh in threads:
//!
//! ```
//! use std::net::TcpListener;
//! use std::time::Duration;
//! use awr_net::TcpTransport;
//! use awr_sim::{ActorId, Message, Transport};
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
//! struct Ping(u32);
//! impl Message for Ping {}
//!
//! // Bind both listeners first so the address list is complete...
//! let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
//! let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
//! let addrs = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];
//!
//! // ...then start one endpoint per node.
//! let mut t0 = TcpTransport::<Ping>::start(ActorId(0), l0, addrs.clone()).unwrap();
//! let mut t1 = TcpTransport::<Ping>::start(ActorId(1), l1, addrs).unwrap();
//!
//! t0.send(ActorId(1), Ping(7));
//! let (from, msg) = t1.recv_timeout(Duration::from_secs(5)).unwrap();
//! assert_eq!((from, msg), (ActorId(0), Ping(7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod pool;
pub mod rpc;
pub mod tcp;

pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, FrameError, MAX_FRAME, WIRE_VERSION,
};
pub use pool::{
    BroadcastPool, Channel, ConnectionPool, PoolStats, QuorumTimeout, Reconnect, Replies,
};
pub use rpc::{Rpc, RpcPool};
pub use tcp::TcpTransport;
