//! The socket-mesh [`Transport`]: one OS process per actor, TCP links
//! between them.
//!
//! Topology: every process — server or client — **listens**, and every
//! message travels on a connection *dialed by its sender* (the
//! [`crate::pool::ConnectionPool`]). Accepted connections are
//! receive-only: a listener thread accepts them, reads the
//! [hello](crate::pool::read_hello) identifying the dialer, and hands the
//! socket to a reader thread that decodes frames into a shared inbox. The
//! hosting [`awr_sim::NodeHost`] then consumes that inbox through
//! [`Transport::recv_timeout`], single-threaded, exactly as it would any
//! other transport.
//!
//! This shape gives the transport contract of `awr_sim::transport` for
//! free:
//!
//! * **FIFO per directed link** — each `(sender, receiver)` pair is one
//!   TCP connection at a time, and TCP preserves byte order;
//! * **best-effort send, crash-model drops** — a send that outlives its
//!   reconnect budget is dropped, like traffic to a crashed process;
//! * **no duplication** — a reconnect opens a fresh connection but the
//!   failed frame is *not* retransmitted.
//!
//! The transport meters what actually crosses the wire: per-kind frame
//! counts and frame bytes on the send side ([`TcpTransport::sent_frames`])
//! and aggregate receive counters. The hosting `NodeHost` independently
//! meters the same sends by [`Message::wire_size`], which is what the
//! simulator charges — the two views together let the demo cross-validate
//! the sim's byte accounting against real sockets.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use awr_sim::{ActorId, KindStats, Message, Transport};
use serde::{DeserializeOwned, Serialize};

use crate::frame::read_frame;
use crate::pool::{read_hello, ConnectionPool, PoolStats, Reconnect};

/// Receive-side counters, shared with the reader threads.
#[derive(Debug, Default)]
struct RecvCounters {
    frames: AtomicU64,
    bytes: AtomicU64,
}

/// A node's endpoint in the TCP mesh. See the [module docs](self).
///
/// Build one with [`TcpTransport::start`] from a bound listener and the
/// full mesh address list, then hand it to an `awr_sim::NodeHost`.
/// Dropping the transport stops the listener and closes every connection.
#[derive(Debug)]
pub struct TcpTransport<M> {
    me: ActorId,
    n: usize,
    pool: ConnectionPool<M, M>,
    inbox: mpsc::Receiver<(ActorId, M)>,
    sent_frames: KindStats,
    recv: Arc<RecvCounters>,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<Mutex<Vec<TcpStream>>>,
    listener_thread: Option<JoinHandle<()>>,
}

impl<M> TcpTransport<M>
where
    M: Message + Serialize + DeserializeOwned + Send + 'static,
{
    /// Starts the endpoint for `me`: spawns the acceptor loop on
    /// `listener` (which must already be bound; `127.0.0.1:0` then
    /// [`TcpListener::local_addr`] is the usual dance) and prepares a
    /// dialer pool toward `addrs`, where `addrs[i]` is the listener of
    /// [`ActorId`]`(i)`.
    pub fn start(
        me: ActorId,
        listener: TcpListener,
        addrs: Vec<SocketAddr>,
    ) -> std::io::Result<TcpTransport<M>> {
        TcpTransport::start_with(me, listener, addrs, Reconnect::default())
    }

    /// [`TcpTransport::start`] with an explicit reconnect policy.
    pub fn start_with(
        me: ActorId,
        listener: TcpListener,
        addrs: Vec<SocketAddr>,
        reconnect: Reconnect,
    ) -> std::io::Result<TcpTransport<M>> {
        let n = addrs.len();
        let (tx, inbox) = mpsc::channel::<(ActorId, M)>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(Mutex::new(Vec::new()));
        let recv = Arc::new(RecvCounters::default());

        listener.set_nonblocking(true)?;
        let listener_thread = {
            let shutdown = Arc::clone(&shutdown);
            let accepted = Arc::clone(&accepted);
            let recv = Arc::clone(&recv);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(false).is_err() {
                                continue;
                            }
                            if let Ok(clone) = stream.try_clone() {
                                accepted.lock().expect("accepted list lock").push(clone);
                            }
                            let tx = tx.clone();
                            let recv = Arc::clone(&recv);
                            std::thread::spawn(move || reader_loop(stream, tx, recv));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(TcpTransport {
            me,
            n,
            pool: ConnectionPool::with_reconnect(me, addrs, reconnect),
            inbox,
            sent_frames: KindStats::default(),
            recv,
            shutdown,
            accepted,
            listener_thread: Some(listener_thread),
        })
    }

    /// Per-kind counts and byte totals of the frames actually written to
    /// sockets (header + version + payload — compare against the
    /// `wire_size`-metered numbers the hosting `NodeHost` records).
    pub fn sent_frames(&self) -> &KindStats {
        &self.sent_frames
    }

    /// Send-side pool counters (dials, drops).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Total frames decoded from accepted connections.
    pub fn frames_received(&self) -> u64 {
        self.recv.frames.load(Ordering::Relaxed)
    }

    /// Total frame bytes decoded from accepted connections.
    pub fn frame_bytes_received(&self) -> u64 {
        self.recv.bytes.load(Ordering::Relaxed)
    }
}

/// [`std::io::Read`] adapter that tallies how many bytes pass through, so
/// the reader loop can meter frame sizes without re-encoding anything.
struct CountingReader<R> {
    inner: R,
    count: u64,
}

impl<R: std::io::Read> std::io::Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.count += n as u64;
        Ok(n)
    }
}

/// Drains frames from one accepted connection into the shared inbox.
fn reader_loop<M: DeserializeOwned>(
    mut stream: TcpStream,
    tx: mpsc::Sender<(ActorId, M)>,
    recv: Arc<RecvCounters>,
) {
    let Ok(from) = read_hello(&mut stream) else {
        return;
    };
    let mut counting = CountingReader {
        inner: stream,
        count: 0,
    };
    loop {
        let before = counting.count;
        match read_frame::<M>(&mut counting) {
            Ok(msg) => {
                recv.frames.fetch_add(1, Ordering::Relaxed);
                recv.bytes
                    .fetch_add(counting.count - before, Ordering::Relaxed);
                if tx.send((from, msg)).is_err() {
                    return; // transport dropped; process is going away
                }
            }
            Err(_) => return, // closed, truncated, or corrupt: peer is gone
        }
    }
}

impl<M> Transport<M> for TcpTransport<M>
where
    M: Message + Serialize + DeserializeOwned + Send + 'static,
{
    fn local_id(&self) -> ActorId {
        self.me
    }

    fn n_actors(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: ActorId, msg: M) {
        if let Some(bytes) = self.pool.send(to, &msg) {
            let kind = msg.kind().to_string();
            *self.sent_frames.msgs.entry(kind.clone()).or_default() += 1;
            *self.sent_frames.wire_bytes.entry(kind).or_default() += bytes as u64;
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ActorId, M)> {
        self.inbox.recv_timeout(timeout).ok()
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Ok(streams) = self.accepted.lock() {
            for s in streams.iter() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(h) = self.listener_thread.take() {
            let _ = h.join();
        }
    }
}
