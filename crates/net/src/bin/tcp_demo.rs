//! Multi-process localhost demo of the TCP runtime.
//!
//! The parent process spawns `N` durable server processes and `K` client
//! processes (re-executing this binary in `--server` / `--client` child
//! modes), wires them into a full TCP mesh, drives the keyed read/write
//! workload over real sockets, and then **cross-validates the byte
//! accounting**: the per-kind `Message::wire_size` totals metered by each
//! process's `NodeHost` must equal, exactly, the totals a same-seed
//! simulator run charges for the same workload — and the frames actually
//! written to the sockets must cost only bounded per-message overhead on
//! top. A weight transfer is then invoked on a live server, propagated
//! through the mesh (RB envelopes, refresh, client restarts — all on the
//! wire), and a second burst of client operations proves the system still
//! serves reads and writes under the moved weights. Exits 0 only if every
//! phase (including clean child shutdown) succeeds.
//!
//! ```text
//! tcp_demo [--smoke] [--servers N] [--clients K] [--ops M] [--objects O] [--seed S]
//! ```
//!
//! Child protocol (internal): children print `PORT <p>` after binding,
//! receive `MESH <p0> <p1> …` on stdin, and then obey line commands —
//! `report`, `transfer <to> <num> <den>`, `ops <m>`, `quit` — answering
//! with `METRICS <json>` / `DONE <json>` / `TRANSFER_DONE` lines. See
//! `docs/RUNTIME.md` for a walkthrough.

#![allow(clippy::print_stdout)]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child as OsChild, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use awr_core::RpConfig;
use awr_net::TcpTransport;
use awr_sim::{ActorId, KindStats, NodeHost, UniformLatency};
use awr_storage::{DynClient, DynMsg, DynOptions, DynServer, StorageHandle, StorageHarness};
use awr_types::{ClientId, ObjectId, ProcessId, Ratio, ServerId};
use serde::{Deserialize, Serialize};

/// Value type carried by the replicated registers in this demo.
type V = u64;

/// The four steady-state ABD kinds whose byte totals are validated
/// exactly against the simulator.
const VALIDATED_KINDS: [&str; 4] = ["R", "R_A", "W", "W_A"];

/// Allowed mean per-frame overhead of the real wire over the simulator's
/// `wire_size` charge (framing header, field names, varints).
const FRAME_SLACK_PER_MSG: u64 = 512;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    if let Some(i) = get("--server") {
        return server_main(i.parse().expect("--server index"), Params::from_args(&get));
    }
    if let Some(k) = get("--client") {
        return client_main(k.parse().expect("--client index"), Params::from_args(&get));
    }

    // Parent mode.
    let smoke = args.iter().any(|a| a == "--smoke");
    let p = Params {
        servers: get("--servers")
            .map(|v| v.parse().expect("--servers"))
            .unwrap_or(if smoke { 3 } else { 5 }),
        clients: get("--clients")
            .map(|v| v.parse().expect("--clients"))
            .unwrap_or(if smoke { 2 } else { 3 }),
        ops: get("--ops")
            .map(|v| v.parse().expect("--ops"))
            .unwrap_or(if smoke { 6 } else { 20 }),
        objects: get("--objects")
            .map(|v| v.parse().expect("--objects"))
            .unwrap_or(3),
        seed: get("--seed")
            .map(|v| v.parse().expect("--seed"))
            .unwrap_or(7),
        data_dir: PathBuf::new(), // parent fills per spawn
    };
    std::process::exit(parent_main(p));
}

/// Workload parameters shared by the parent and both child roles.
#[derive(Clone, Debug)]
struct Params {
    servers: usize,
    clients: usize,
    ops: u64,
    objects: u64,
    seed: u64,
    data_dir: PathBuf,
}

impl Params {
    fn from_args(get: &impl Fn(&str) -> Option<String>) -> Params {
        Params {
            servers: get("--servers").expect("--servers").parse().unwrap(),
            clients: get("--clients").expect("--clients").parse().unwrap(),
            ops: get("--ops").map(|v| v.parse().unwrap()).unwrap_or(0),
            objects: get("--objects").map(|v| v.parse().unwrap()).unwrap_or(1),
            seed: get("--seed").expect("--seed").parse().unwrap(),
            data_dir: get("--data-dir").map(PathBuf::from).unwrap_or_default(),
        }
    }

    fn cfg(&self) -> RpConfig {
        RpConfig::uniform(self.servers, (self.servers - 1) / 2)
    }

    fn mesh_size(&self) -> usize {
        self.servers + self.clients
    }
}

/// One process's stats report, shipped as JSON on stdout.
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    role: String,
    idx: usize,
    /// Completed client operations (0 for servers).
    ops: u64,
    /// `wire_size`-metered sends (what the simulator charges).
    wire: KindStats,
    /// Frames actually written to sockets, per kind.
    frames: KindStats,
    /// Sends dropped after the reconnect budget.
    dropped: u64,
    /// Frames decoded off accepted connections.
    frames_received: u64,
}

// ---------------------------------------------------------------------
// Deterministic workload derivation (shared by TCP clients and the
// simulator comparator — this is what makes the byte totals comparable).
// ---------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Operation `j` of client `k`: `(object, Some(value) = write / None = read)`.
fn op_spec(seed: u64, k: usize, j: u64, objects: u64) -> (ObjectId, Option<V>) {
    let h = splitmix64(seed ^ (k as u64).wrapping_mul(0x517C_C1B7_2722_0A95) ^ j);
    let obj = ObjectId(h % objects.max(1));
    if j.is_multiple_of(2) {
        (obj, Some(h | 1)) // writes carry a nonzero derived value
    } else {
        (obj, None)
    }
}

// ---------------------------------------------------------------------
// Child-side plumbing.
// ---------------------------------------------------------------------

/// Binds a listener, prints `PORT`, waits for `MESH`, and returns the
/// transport plus the stdin command channel.
fn child_handshake(me: ActorId, p: &Params) -> (TcpTransport<DynMsg<V>>, mpsc::Receiver<String>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let port = listener.local_addr().expect("local_addr").port();
    println!("PORT {port}");
    std::io::stdout().flush().expect("flush");

    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });

    let mesh = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("MESH line before timeout");
    let ports: Vec<u16> = mesh
        .strip_prefix("MESH ")
        .expect("MESH prefix")
        .split_whitespace()
        .map(|p| p.parse().expect("port"))
        .collect();
    assert_eq!(ports.len(), p.mesh_size(), "mesh size mismatch");
    let addrs: Vec<SocketAddr> = ports
        .iter()
        .map(|&p| SocketAddr::from(([127, 0, 0, 1], p)))
        .collect();
    let transport = TcpTransport::start(me, listener, addrs).expect("transport start");
    (transport, rx)
}

fn report<A: awr_sim::Actor<Msg = DynMsg<V>>>(
    role: &str,
    idx: usize,
    ops: u64,
    host: &NodeHost<A, TcpTransport<DynMsg<V>>>,
) -> String {
    let r = Report {
        role: role.to_string(),
        idx,
        ops,
        wire: KindStats::of(host.metrics()),
        frames: host.transport().sent_frames().clone(),
        dropped: host.transport().pool_stats().dropped,
        frames_received: host.transport().frames_received(),
    };
    serde_json::to_string(&r).expect("report json")
}

fn server_main(i: usize, p: Params) {
    let dir = p.data_dir.join(format!("s{i}"));
    std::fs::create_dir_all(&dir).expect("server data dir");
    let storage = StorageHandle::<V>::file(&dir);
    let server =
        DynServer::with_storage(p.cfg(), ServerId(i as u32), DynOptions::default(), storage);
    let (transport, rx) = child_handshake(ActorId(i), &p);
    let mut host = NodeHost::start(server, transport, p.seed);

    let mut transfer_watch: Option<usize> = None;
    loop {
        host.step(Duration::from_millis(2));
        if let Some(baseline) = transfer_watch {
            if host.actor().completed_transfers().len() > baseline {
                println!("TRANSFER_DONE");
                std::io::stdout().flush().expect("flush");
                transfer_watch = None;
            }
        }
        let cmd = match rx.try_recv() {
            Ok(c) => c,
            Err(mpsc::TryRecvError::Empty) => continue,
            Err(mpsc::TryRecvError::Disconnected) => return,
        };
        let mut words = cmd.split_whitespace();
        match words.next() {
            Some("report") => {
                // Drain in-flight traffic so the counters are settled.
                host.run_until_idle(Duration::from_millis(50));
                println!("METRICS {}", report("server", i, 0, &host));
                std::io::stdout().flush().expect("flush");
            }
            Some("transfer") => {
                let to: u32 = words.next().expect("to").parse().expect("to");
                let num: i128 = words.next().expect("num").parse().expect("num");
                let den: i128 = words.next().expect("den").parse().expect("den");
                transfer_watch = Some(host.actor().completed_transfers().len());
                host.with_actor(|s, ctx| {
                    s.begin_transfer_queued(ServerId(to), Ratio::new(num, den), ctx)
                })
                .expect("transfer start");
            }
            Some("quit") => return,
            _ => {}
        }
    }
}

fn client_main(k: usize, p: Params) {
    let client = DynClient::<V>::new(
        ProcessId::Client(ClientId(k as u32)),
        p.cfg(),
        DynOptions::default(),
    );
    let (transport, rx) = child_handshake(ActorId(p.servers + k), &p);
    let mut host = NodeHost::start(client, transport, p.seed);

    let mut next_j: u64 = 0;
    let run_burst = |host: &mut NodeHost<DynClient<V>, TcpTransport<DynMsg<V>>>,
                     next_j: &mut u64,
                     burst: u64| {
        for _ in 0..burst {
            let (obj, value) = op_spec(p.seed, k, *next_j, p.objects);
            *next_j += 1;
            let done_before = host.actor().driver.completed.len();
            host.with_actor(|c, ctx| match value {
                Some(v) => c.begin_write_obj(obj, v, ctx),
                None => c.begin_read_obj(obj, ctx),
            });
            let deadline = Instant::now() + Duration::from_secs(20);
            while host.actor().driver.completed.len() == done_before {
                host.step(Duration::from_millis(2));
                assert!(
                    Instant::now() < deadline,
                    "client {k} op {} timed out",
                    *next_j
                );
            }
        }
    };

    // Initial validation burst, then obey commands.
    run_burst(&mut host, &mut next_j, p.ops);
    let done = host.actor().driver.completed.len() as u64;
    println!("DONE {}", report("client", k, done, &host));
    std::io::stdout().flush().expect("flush");

    loop {
        host.step(Duration::from_millis(2));
        let cmd = match rx.try_recv() {
            Ok(c) => c,
            Err(mpsc::TryRecvError::Empty) => continue,
            Err(mpsc::TryRecvError::Disconnected) => return,
        };
        let mut words = cmd.split_whitespace();
        match words.next() {
            Some("ops") => {
                let burst: u64 = words.next().expect("count").parse().expect("count");
                run_burst(&mut host, &mut next_j, burst);
                let done = host.actor().driver.completed.len() as u64;
                println!("DONE {}", report("client", k, done, &host));
                std::io::stdout().flush().expect("flush");
            }
            Some("quit") => return,
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Parent: orchestration and validation.
// ---------------------------------------------------------------------

/// A spawned child with a line-reader thread over its stdout.
struct Proc {
    name: String,
    child: OsChild,
    lines: mpsc::Receiver<String>,
}

impl Proc {
    fn spawn(name: String, args: Vec<String>) -> Proc {
        let exe = std::env::current_exe().expect("current_exe");
        let mut child = Command::new(exe)
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn child");
        let stdout = child.stdout.take().expect("child stdout");
        let (tx, lines) = mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        Proc { name, child, lines }
    }

    fn send(&mut self, line: &str) {
        let stdin = self.child.stdin.as_mut().expect("child stdin");
        writeln!(stdin, "{line}").expect("write to child");
        stdin.flush().expect("flush to child");
    }

    /// Waits for the next line starting with `prefix`, returning the rest.
    fn expect(&mut self, prefix: &str, timeout: Duration) -> Result<String, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.lines.recv_timeout(left) {
                Ok(line) => {
                    if let Some(rest) = line.strip_prefix(prefix) {
                        return Ok(rest.trim().to_string());
                    }
                    // Unexpected chatter: surface it but keep waiting.
                    eprintln!("[{}] {}", self.name, line);
                }
                Err(_) => return Err(format!("{}: no `{prefix}` line in time", self.name)),
            }
        }
    }

    fn join(mut self, timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) if status.success() => return Ok(()),
                Ok(Some(status)) => return Err(format!("{}: exited {status}", self.name)),
                Ok(None) if Instant::now() >= deadline => {
                    let _ = self.child.kill();
                    return Err(format!("{}: killed after shutdown timeout", self.name));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => return Err(format!("{}: wait failed: {e}", self.name)),
            }
        }
    }
}

/// The simulator's per-kind accounting for the identical workload.
fn simulate_reference(p: &Params) -> KindStats {
    let mut h = StorageHarness::<V>::build(
        p.cfg(),
        p.clients,
        p.seed,
        UniformLatency::new(1_000, 50_000),
        DynOptions::default(),
    );
    for k in 0..p.clients {
        for j in 0..p.ops {
            let (obj, value) = op_spec(p.seed, k, j, p.objects);
            match value {
                Some(v) => {
                    h.write_obj(k, obj, v).expect("sim write");
                }
                None => {
                    h.read_obj(k, obj).expect("sim read");
                }
            }
        }
    }
    KindStats::of(h.world.metrics())
}

fn parent_main(mut p: Params) -> i32 {
    let started = Instant::now();
    p.data_dir = std::env::temp_dir().join(format!("awr_tcp_demo_{}", std::process::id()));
    std::fs::create_dir_all(&p.data_dir).expect("data dir");
    println!(
        "tcp_demo: {} servers + {} clients on localhost, {} ops/client over {} objects, seed {}",
        p.servers, p.clients, p.ops, p.objects, p.seed
    );

    let common = |p: &Params| {
        vec![
            "--servers".into(),
            p.servers.to_string(),
            "--clients".into(),
            p.clients.to_string(),
            "--seed".into(),
            p.seed.to_string(),
        ]
    };

    // 1. Spawn the mesh and exchange ports.
    let mut procs: Vec<Proc> = Vec::new();
    for i in 0..p.servers {
        let mut args = vec!["--server".to_string(), i.to_string()];
        args.extend(common(&p));
        args.extend(["--data-dir".into(), p.data_dir.display().to_string()]);
        procs.push(Proc::spawn(format!("server{i}"), args));
    }
    for k in 0..p.clients {
        let mut args = vec!["--client".to_string(), k.to_string()];
        args.extend(common(&p));
        args.extend([
            "--ops".into(),
            p.ops.to_string(),
            "--objects".into(),
            p.objects.to_string(),
        ]);
        procs.push(Proc::spawn(format!("client{k}"), args));
    }
    let mut ports = Vec::new();
    for proc in procs.iter_mut() {
        match proc.expect("PORT ", Duration::from_secs(30)) {
            Ok(port) => ports.push(port),
            Err(e) => {
                eprintln!("tcp_demo: {e}");
                return fail(procs, &p);
            }
        }
    }
    let mesh = format!("MESH {}", ports.join(" "));
    for proc in procs.iter_mut() {
        proc.send(&mesh);
    }
    println!("tcp_demo: mesh up on ports [{}]", ports.join(", "));

    // 2. Clients run the validation workload.
    let mut reports: Vec<Report> = Vec::new();
    for k in 0..p.clients {
        let proc = &mut procs[p.servers + k];
        match proc.expect("DONE ", Duration::from_secs(120)) {
            Ok(json) => reports.push(serde_json::from_str(&json).expect("client report")),
            Err(e) => {
                eprintln!("tcp_demo: {e}");
                return fail(procs, &p);
            }
        }
    }
    let tcp_ops: u64 = reports.iter().map(|r| r.ops).sum();
    assert_eq!(tcp_ops, p.ops * p.clients as u64);
    println!(
        "tcp_demo: {} operations completed over TCP in {:.2}s",
        tcp_ops,
        started.elapsed().as_secs_f64()
    );

    // 3. Byte cross-validation against the same-seed simulator run.
    let expected = simulate_reference(&p);
    let mut agg = KindStats::default();
    let mut frames = KindStats::default();
    for r in &reports {
        agg.absorb(&r.wire);
        frames.absorb(&r.frames);
    }
    // Servers may still be writing their final acks when the clients
    // report; poll until their counters settle at the expectation.
    let mut server_reports: Vec<Report> = Vec::new();
    let poll_deadline = Instant::now() + Duration::from_secs(15);
    loop {
        server_reports.clear();
        let mut all = agg.clone();
        let mut all_frames = frames.clone();
        for i in 0..p.servers {
            procs[i].send("report");
            match procs[i].expect("METRICS ", Duration::from_secs(10)) {
                Ok(json) => {
                    let r: Report = serde_json::from_str(&json).expect("server report");
                    all.absorb(&r.wire);
                    all_frames.absorb(&r.frames);
                    server_reports.push(r);
                }
                Err(e) => {
                    eprintln!("tcp_demo: {e}");
                    return fail(procs, &p);
                }
            }
        }
        let settled = VALIDATED_KINDS
            .iter()
            .all(|k| all.msgs.get(*k) == expected.msgs.get(*k));
        if settled || Instant::now() >= poll_deadline {
            agg = all;
            frames = all_frames;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    println!();
    println!("  kind   msgs(tcp)  msgs(sim)  wire_bytes(tcp)  wire_bytes(sim)  frame_bytes");
    let mut ok = true;
    for kind in VALIDATED_KINDS {
        let (tm, sm) = (
            agg.msgs.get(kind).copied().unwrap_or(0),
            expected.msgs.get(kind).copied().unwrap_or(0),
        );
        let (tb, sb) = (
            agg.wire_bytes.get(kind).copied().unwrap_or(0),
            expected.wire_bytes.get(kind).copied().unwrap_or(0),
        );
        let fb = frames.wire_bytes.get(kind).copied().unwrap_or(0);
        let row_ok = tm == sm && tb == sb && tm > 0 && {
            // Real frames may only cost bounded overhead per message.
            let fm = frames.msgs.get(kind).copied().unwrap_or(0);
            fm == tm && fb / fm.max(1) <= tb / tm.max(1) + FRAME_SLACK_PER_MSG
        };
        ok &= row_ok;
        println!(
            "  {kind:<6} {tm:>9}  {sm:>9}  {tb:>15}  {sb:>15}  {fb:>11}  {}",
            if row_ok { "ok" } else { "MISMATCH" }
        );
    }
    if !ok {
        eprintln!("tcp_demo: byte accounting diverged from the simulator");
        return fail(procs, &p);
    }
    println!("  wire_size accounting matches the simulator exactly; frame overhead bounded");

    // 4. Live weight transfer, then prove the system still serves ops.
    println!();
    println!("tcp_demo: transferring 1/8 weight from server 0 to server 1 over TCP …");
    procs[0].send("transfer 1 1 8");
    if let Err(e) = procs[0].expect("TRANSFER_DONE", Duration::from_secs(30)) {
        eprintln!("tcp_demo: {e}");
        return fail(procs, &p);
    }
    let post_burst: u64 = 4;
    for k in 0..p.clients {
        procs[p.servers + k].send(&format!("ops {post_burst}"));
        match procs[p.servers + k].expect("DONE ", Duration::from_secs(60)) {
            Ok(json) => {
                let r: Report = serde_json::from_str(&json).expect("client report");
                assert_eq!(r.ops, p.ops + post_burst, "client {k} post-transfer ops");
            }
            Err(e) => {
                eprintln!("tcp_demo: {e}");
                return fail(procs, &p);
            }
        }
    }
    println!(
        "tcp_demo: all {} post-transfer operations completed under the moved weights",
        post_burst * p.clients as u64
    );

    // 5. Clean shutdown.
    for proc in procs.iter_mut() {
        proc.send("quit");
    }
    let mut clean = true;
    for proc in procs {
        if let Err(e) = proc.join(Duration::from_secs(10)) {
            eprintln!("tcp_demo: {e}");
            clean = false;
        }
    }
    let _ = std::fs::remove_dir_all(&p.data_dir);
    if !clean {
        return 1;
    }
    println!(
        "tcp_demo: PASS in {:.2}s ({} processes, clean exit)",
        started.elapsed().as_secs_f64(),
        p.mesh_size()
    );
    0
}

fn fail(procs: Vec<Proc>, p: &Params) -> i32 {
    for mut proc in procs {
        let _ = proc.child.kill();
    }
    let _ = std::fs::remove_dir_all(&p.data_dir);
    1
}
