//! Length-prefixed binary frames over byte streams.
//!
//! Every message on an `awr_net` socket is one **frame**:
//!
//! ```text
//! +----------------+-----------+------------------------------+
//! | length: u32 LE | version u8| payload: encoded Value tree  |
//! +----------------+-----------+------------------------------+
//! ```
//!
//! * `length` counts everything after itself (version byte + payload), so
//!   a reader needs exactly `4 + length` bytes for a whole frame;
//! * `version` is [`WIRE_VERSION`]; any other value is rejected before the
//!   payload is touched, so incompatible peers fail fast instead of
//!   misparsing each other;
//! * the payload is the message's [`serde::Value`] tree in a compact
//!   tag-length-value binary encoding (see [`encode_value`]): one tag byte
//!   per node, LEB128 varints for integers and lengths, IEEE-754 little
//!   endian for floats. Struct/enum layout is whatever the type's
//!   [`serde::Serialize`] impl produces — the same layout `serde_json`
//!   renders, just binary instead of text.
//!
//! Frames longer than [`MAX_FRAME`] are rejected on both sides
//! ([`FrameError::Oversized`]) so a corrupt or hostile length prefix
//! cannot make a reader allocate unboundedly. A stream that ends cleanly
//! *between* frames reports [`FrameError::Closed`]; one that ends *inside*
//! a frame reports [`FrameError::Truncated`].

use std::fmt;
use std::io::{self, Read, Write};

use serde::{DeserializeOwned, Error as SerdeError, Serialize, Value};

/// The wire protocol version carried in every frame header.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on `version byte + payload` length, in bytes. Generous for
/// this workspace's messages (a full change-set transfer is kilobytes) but
/// small enough that a garbage length prefix cannot exhaust memory.
pub const MAX_FRAME: usize = 16 << 20;

/// Nesting bound for the payload decoder: deeper trees are rejected as
/// corrupt rather than recursing toward stack exhaustion.
const MAX_DEPTH: u32 = 64;

/// Everything that can go wrong reading or writing a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream closed cleanly at a frame boundary (orderly peer exit).
    Closed,
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The length the prefix claimed.
        len: usize,
    },
    /// The frame's version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// The payload bytes do not decode to the expected message type.
    Codec(SerdeError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::Closed => write!(f, "stream closed at frame boundary"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds MAX_FRAME {MAX_FRAME}")
            }
            FrameError::BadVersion(v) => {
                write!(f, "frame version {v} (expected {WIRE_VERSION})")
            }
            FrameError::Codec(e) => write!(f, "frame payload codec error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => FrameError::Truncated,
            _ => FrameError::Io(e),
        }
    }
}

// ---------------------------------------------------------------------
// Value codec: tag byte + varint lengths.
// ---------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_UINT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

fn put_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u128, FrameError> {
    let mut v: u128 = 0;
    for shift in (0..19).map(|i| i * 7) {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| FrameError::Codec(SerdeError::custom("varint past payload end")))?;
        *pos += 1;
        v |= u128::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(FrameError::Codec(SerdeError::custom("varint too long")))
}

fn zigzag(i: i128) -> u128 {
    ((i << 1) ^ (i >> 127)) as u128
}

fn unzigzag(u: u128) -> i128 {
    ((u >> 1) as i128) ^ -((u & 1) as i128)
}

/// Appends the binary encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            put_varint(out, zigzag(*i));
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            put_varint(out, *u);
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u128);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            put_varint(out, items.len() as u128);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            put_varint(out, entries.len() as u128);
            for (k, val) in entries {
                put_varint(out, k.len() as u128);
                out.extend_from_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

fn get_len(buf: &[u8], pos: &mut usize) -> Result<usize, FrameError> {
    let n = get_varint(buf, pos)?;
    let n = usize::try_from(n)
        .map_err(|_| FrameError::Codec(SerdeError::custom("length overflows usize")))?;
    // Every encoded element costs at least one byte, so a count that
    // exceeds the remaining payload is provably corrupt — reject it before
    // reserving anything.
    if n > buf.len() - *pos {
        return Err(FrameError::Codec(SerdeError::custom(
            "length exceeds remaining payload",
        )));
    }
    Ok(n)
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, FrameError> {
    let len = get_len(buf, pos)?;
    let bytes = &buf[*pos..*pos + len];
    *pos += len;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| FrameError::Codec(SerdeError::custom("invalid utf-8 in string")))
}

/// Decodes one [`Value`] from `buf` starting at `*pos`, advancing `*pos`
/// past it.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, FrameError> {
    decode_value_at(buf, pos, 0)
}

fn decode_value_at(buf: &[u8], pos: &mut usize, depth: u32) -> Result<Value, FrameError> {
    if depth > MAX_DEPTH {
        return Err(FrameError::Codec(SerdeError::custom("value tree too deep")));
    }
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| FrameError::Codec(SerdeError::custom("tag past payload end")))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(unzigzag(get_varint(buf, pos)?))),
        TAG_UINT => Ok(Value::UInt(get_varint(buf, pos)?)),
        TAG_FLOAT => {
            let end = *pos + 8;
            let bytes = buf
                .get(*pos..end)
                .ok_or_else(|| FrameError::Codec(SerdeError::custom("float past payload end")))?;
            *pos = end;
            Ok(Value::Float(f64::from_le_bytes(bytes.try_into().unwrap())))
        }
        TAG_STR => Ok(Value::Str(get_str(buf, pos)?)),
        TAG_SEQ => {
            let n = get_len(buf, pos)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value_at(buf, pos, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let n = get_len(buf, pos)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let k = get_str(buf, pos)?;
                let v = decode_value_at(buf, pos, depth + 1)?;
                entries.push((k, v));
            }
            Ok(Value::Map(entries))
        }
        other => Err(FrameError::Codec(SerdeError::custom(format!(
            "unknown value tag {other}"
        )))),
    }
}

// ---------------------------------------------------------------------
// Frames.
// ---------------------------------------------------------------------

/// Encodes `msg` as one complete frame (header + payload).
pub fn encode_frame<T: Serialize>(msg: &T) -> Vec<u8> {
    let mut payload = vec![WIRE_VERSION];
    encode_value(&msg.to_value(), &mut payload);
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Tries to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a *prefix* of a frame (read
/// more bytes and retry), `Ok(Some((msg, consumed)))` on success — drain
/// `consumed` bytes — and an error when the bytes present already prove
/// the frame bad (oversized length, wrong version, corrupt payload).
pub fn decode_frame<T: DeserializeOwned>(buf: &[u8]) -> Result<Option<(T, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len });
    }
    if len == 0 {
        return Err(FrameError::Codec(SerdeError::custom("empty frame")));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let version = buf[4];
    if version != WIRE_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let payload = &buf[5..4 + len];
    let mut pos = 0;
    let value = decode_value(payload, &mut pos)?;
    if pos != payload.len() {
        return Err(FrameError::Codec(SerdeError::custom(
            "trailing bytes after payload",
        )));
    }
    let msg = T::from_value(&value).map_err(FrameError::Codec)?;
    Ok(Some((msg, 4 + len)))
}

/// Writes `msg` as one frame, returning the number of bytes written.
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<usize, FrameError> {
    let frame = encode_frame(msg);
    w.write_all(&frame).map_err(FrameError::Io)?;
    Ok(frame.len())
}

/// Reads exactly one frame, blocking. A clean end-of-stream before the
/// first header byte is [`FrameError::Closed`]; end-of-stream anywhere
/// after that is [`FrameError::Truncated`].
pub fn read_frame<T: DeserializeOwned>(r: &mut impl Read) -> Result<T, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len });
    }
    let mut rest = vec![0u8; len];
    r.read_exact(&mut rest)?;
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&header);
    buf.extend_from_slice(&rest);
    match decode_frame(&buf)? {
        Some((msg, _)) => Ok(msg),
        // decode_frame saw the full `4 + len` bytes; None is unreachable.
        None => Err(FrameError::Truncated),
    }
}

/// A deserialize round-trip through the frame codec, for tests and for
/// cross-checking that a type's serde impls survive the wire.
pub fn roundtrip<T: Serialize + DeserializeOwned>(msg: &T) -> Result<T, FrameError> {
    match decode_frame(&encode_frame(msg))? {
        Some((out, _)) => Ok(out),
        None => Err(FrameError::Truncated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value_roundtrip(v: &Value) {
        let mut out = Vec::new();
        encode_value(v, &mut out);
        let mut pos = 0;
        let back = decode_value(&out, &mut pos).unwrap();
        assert_eq!(pos, out.len());
        assert_eq!(&back, v);
    }

    #[test]
    fn scalar_values_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i128::MAX),
            Value::Int(i128::MIN),
            Value::UInt(u128::MAX),
            Value::Float(3.25),
            Value::Str("héllo".into()),
        ] {
            value_roundtrip(&v);
        }
    }

    #[test]
    fn nested_values_roundtrip() {
        value_roundtrip(&Value::Map(vec![
            ("xs".into(), Value::Seq(vec![Value::Int(1), Value::Null])),
            (
                "m".into(),
                Value::Map(vec![("k".into(), Value::Str(String::new()))]),
            ),
        ]));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let frame = encode_frame(&vec![1u64, 2, 3]);
        for cut in 1..frame.len() {
            let mut r = io::Cursor::new(&frame[..cut]);
            match read_frame::<Vec<u64>>(&mut r) {
                Err(FrameError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        // And the buffer-level parser reports "incomplete", never a panic.
        for cut in 0..frame.len() {
            assert!(matches!(decode_frame::<Vec<u64>>(&frame[..cut]), Ok(None)));
        }
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut frame = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        frame.push(WIRE_VERSION);
        assert!(matches!(
            decode_frame::<u64>(&frame),
            Err(FrameError::Oversized { .. })
        ));
        let mut r = io::Cursor::new(&frame);
        assert!(matches!(
            read_frame::<u64>(&mut r),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut frame = encode_frame(&7u64);
        frame[4] = WIRE_VERSION + 1;
        assert!(matches!(
            decode_frame::<u64>(&frame),
            Err(FrameError::BadVersion(_))
        ));
    }

    #[test]
    fn clean_close_is_distinguished_from_truncation() {
        let mut r = io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame::<u64>(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn corrupt_payload_is_a_codec_error() {
        let mut frame = encode_frame(&7u64);
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        assert!(matches!(
            decode_frame::<u64>(&frame),
            Err(FrameError::Codec(_))
        ));
    }
}
