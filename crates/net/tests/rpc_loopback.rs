//! Loopback exercise of the request-id RPC layer: overlapping exchanges
//! on one pool, replies routed by `req`, targeted second broadcasts —
//! the wire shape of the fast-path read's targeted write-back.

use std::net::TcpListener;
use std::time::Duration;

use awr_net::frame::{read_frame, write_frame};
use awr_net::pool::read_hello;
use awr_net::rpc::{Rpc, RpcPool};
use awr_sim::ActorId;
use awr_types::Ratio;

/// Spawns an echo peer answering every `Rpc<u64>` request with
/// `req.reply(body + offset)` after `delay`. The echoed request id is
/// what lets the pool route the reply even when exchanges overlap.
fn spawn_peer(delay: Duration, offset: u64) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        if read_hello(&mut stream).is_err() {
            return;
        }
        while let Ok(req) = read_frame::<Rpc<u64>>(&mut stream) {
            std::thread::sleep(delay);
            if write_frame(&mut stream, &req.reply(req.body + offset)).is_err() {
                return;
            }
        }
    });
    addr
}

#[test]
fn overlapping_exchanges_route_replies_by_request_id() {
    // Peer 2 is slow: its reply to the FIRST exchange arrives while the
    // pool is waiting on the SECOND. Under the peer-matched `Replies`
    // contract that reply would corrupt exchange B (or be dropped); the
    // request id routes it into exchange A's buffer instead.
    let slow = Duration::from_millis(150);
    let addrs = vec![
        spawn_peer(Duration::ZERO, 100),
        spawn_peer(Duration::ZERO, 100),
        spawn_peer(slow, 100),
    ];
    let mut pool = RpcPool::<u64, u64>::new(ActorId(9), addrs);

    let a = pool.broadcast(&7);
    let b = pool.broadcast(&20);
    assert_eq!(pool.in_flight(), 2);

    // Wait on B first: only fast peers are needed (count 2), but the
    // slow peer's reply to A lands in between and must not count here.
    let got_b = pool
        .wait_count(b, Duration::from_secs(10), 2)
        .expect("two fast replies to B");
    for (_, reply) in &got_b {
        assert_eq!(*reply, 120, "reply routed into the wrong exchange");
    }

    // A's replies — including the slow one buffered during B's wait —
    // are all still there.
    let got_a = pool
        .wait_count(a, Duration::from_secs(10), 3)
        .expect("all three replies to A");
    assert_eq!(got_a.len(), 3);
    for (_, reply) in &got_a {
        assert_eq!(*reply, 107);
    }
    assert_eq!(pool.in_flight(), 0, "both exchanges retired");
}

#[test]
fn targeted_second_broadcast_overlaps_a_pending_read() {
    // The fast-path wire shape: a weighted phase-1 broadcast to all
    // peers, then a *targeted* write-back to a subset while a straggler
    // reply to phase 1 is still in flight.
    let slow = Duration::from_millis(150);
    let addrs = vec![
        spawn_peer(Duration::ZERO, 0),
        spawn_peer(Duration::ZERO, 0),
        spawn_peer(slow, 0),
    ];
    let mut pool = RpcPool::<u64, u64>::new(ActorId(9), addrs);
    let weight_of = |a: ActorId| match a.index() {
        0 | 1 => Ratio::new(1, 4),
        _ => Ratio::new(2, 4),
    };

    // Phase 1 to everyone; peers 0 and 1 (weight 1/2) are NOT a quorum,
    // so this wait needs the slow peer — but we only wait long enough to
    // collect the fast two, then give up and write back to them.
    let p1 = pool.broadcast(&1);
    let timeout = pool
        .wait_weight(p1, Duration::from_millis(60), Ratio::ONE, weight_of)
        .expect_err("quorum needs the slow peer");
    assert_eq!(timeout.got.len(), 2);

    // Targeted write-back to exactly the two fast repliers, via the
    // filter shape. The slow peer's late phase-1 reply arrives during
    // this wait; its retired id means it is dropped, not miscounted.
    let wb = pool.broadcast_filter(&2, |a| a.index() < 2);
    let got = pool
        .wait_count(wb, Duration::from_secs(10), 2)
        .expect("both targeted peers ack");
    let mut from: Vec<usize> = got.iter().map(|(a, _)| a.index()).collect();
    from.sort_unstable();
    assert_eq!(from, vec![0, 1]);
    for (_, reply) in &got {
        assert_eq!(*reply, 2, "write-back ack must echo the write-back body");
    }
    // Exactly 5 frames left the pool: 3 for phase 1, 2 for the
    // write-back — the targeted broadcast really skipped peer 2.
    assert_eq!(pool.stats().frames_sent, 5);
}

#[test]
fn reply_to_a_retired_exchange_is_dropped() {
    let addrs = vec![spawn_peer(Duration::from_millis(100), 0)];
    let mut pool = RpcPool::<u64, u64>::new(ActorId(9), addrs);

    // Exchange A times out before its reply arrives → retired.
    let a = pool.broadcast(&1);
    pool.wait_count(a, Duration::from_millis(10), 1)
        .expect_err("reply is still sleeping");

    // Exchange B's wait sees A's late reply first; it must neither
    // satisfy B nor resurrect A.
    let b = pool.broadcast(&5);
    let got = pool
        .wait_count(b, Duration::from_secs(10), 1)
        .expect("B's own reply arrives");
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].1, 5, "late reply to A leaked into B");
    assert_eq!(pool.in_flight(), 0);
}
