//! Loopback exercise of the broadcast → quorum-wait RPC shape: echo
//! servers on localhost, one slow and one silent, under weighted quorum
//! predicates.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use awr_net::frame::{read_frame, write_frame};
use awr_net::pool::{read_hello, ConnectionPool};
use awr_sim::ActorId;
use awr_types::Ratio;

/// Spawns an echo peer: accepts one connection, reads the hello, and
/// answers every `u64` request with `request + offset` after `delay` —
/// or, if `mute`, swallows requests forever (a live-but-useless peer).
fn spawn_peer(delay: Duration, mute: bool, offset: u64) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        if read_hello(&mut stream).is_err() {
            return;
        }
        while let Ok(req) = read_frame::<u64>(&mut stream) {
            if mute {
                continue;
            }
            std::thread::sleep(delay);
            if write_frame(&mut stream, &(req + offset)).is_err() {
                return;
            }
        }
    });
    addr
}

/// Weights: fast peers 0 and 1 hold 1/6 each, the slow peer holds 2/6,
/// the mute peer 2/6. Total 1, quorum > 1/2 — so the two fast replies
/// (2/6) are NOT a quorum, and the wait must hold on for the slow peer
/// (reaching 4/6) while never needing the mute one.
fn weight_of(a: ActorId) -> Ratio {
    match a.index() {
        0 | 1 => Ratio::new(1, 6),
        _ => Ratio::new(2, 6),
    }
}

#[test]
fn weighted_quorum_waits_for_slow_peer_and_survives_a_dead_one() {
    let slow = Duration::from_millis(200);
    let addrs = vec![
        spawn_peer(Duration::ZERO, false, 100),
        spawn_peer(Duration::ZERO, false, 100),
        spawn_peer(slow, false, 100),
        spawn_peer(Duration::ZERO, true, 0), // mute: holds weight, never answers
    ];
    let mut pool = ConnectionPool::<u64, u64>::new(ActorId(9), addrs);

    let t0 = Instant::now();
    let got = pool
        .all()
        .broadcast(&7)
        .wait_weight(Duration::from_secs(10), Ratio::ONE, weight_of)
        .expect("quorum should form without the mute peer");
    let elapsed = t0.elapsed();

    // The slow peer was necessary: the wait can't have finished before its
    // delay, and its reply must be among those collected.
    assert!(elapsed >= slow, "quorum formed too early: {elapsed:?}");
    let mut from: Vec<usize> = got.iter().map(|(a, _)| a.index()).collect();
    from.sort_unstable();
    assert_eq!(from, vec![0, 1, 2]);
    for (_, reply) in &got {
        assert_eq!(*reply, 107);
    }
}

#[test]
fn count_quorum_times_out_when_it_needs_the_dead_peer() {
    let addrs = vec![
        spawn_peer(Duration::ZERO, false, 1),
        spawn_peer(Duration::ZERO, false, 1),
        spawn_peer(Duration::ZERO, true, 0),
    ];
    let mut pool = ConnectionPool::<u64, u64>::new(ActorId(9), addrs);
    let err = pool
        .all()
        .broadcast(&41)
        .wait_count(Duration::from_millis(400), 3)
        .expect_err("three replies can never arrive");
    // Both live peers did answer before the deadline.
    assert_eq!(err.got.len(), 2);
    for (_, reply) in &err.got {
        assert_eq!(*reply, 42);
    }
}

#[test]
fn sends_to_an_unreachable_peer_drop_instead_of_failing() {
    // A peer that was never started: dialing must exhaust the reconnect
    // budget and drop, like traffic to a crashed process.
    let live = spawn_peer(Duration::ZERO, false, 1);
    let dead = {
        // Bind-then-drop guarantees an unused port at the time of test.
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr")
    };
    let mut pool = ConnectionPool::<u64, u64>::with_reconnect(
        ActorId(5),
        vec![live, dead],
        awr_net::Reconnect {
            attempts: 1,
            backoff: Duration::ZERO,
        },
    );
    assert!(pool.send(ActorId(0), &1).is_some());
    assert!(pool.send(ActorId(1), &1).is_none());
    assert_eq!(pool.stats().dropped, 1);
    // Drain the echo of the direct send so it can't be mistaken for a
    // reply to the upcoming broadcast (replies match by peer, not by
    // request — the documented single-exchange-in-flight contract).
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while pool.poll_any().is_none() {
        assert!(Instant::now() < drain_deadline, "echo never arrived");
        std::thread::sleep(Duration::from_millis(1));
    }
    let got = pool
        .all()
        .broadcast(&9)
        .wait_count(Duration::from_secs(5), 1)
        .expect("the live peer answers");
    assert_eq!(got[0].1, 10);
    assert_eq!(pool.stats().dropped, 2, "broadcast dropped the dead leg");
}
