//! Property tests for the frame codec: encode/decode identity over
//! arbitrary value trees and real protocol messages, and rejection of
//! truncated or oversized frames.

use awr_net::frame::{self, decode_frame, encode_frame, read_frame, FrameError, MAX_FRAME};
use awr_rb::RbEnvelope;
use awr_sim::ActorId;
use awr_storage::DynMsg;
use awr_types::{Change, ChangeSet, CsRef, ObjectId, ProcessId, Ratio, ServerId, Tag, TaggedValue};
use proptest::prelude::*;
use serde::{Serialize, Value};

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pseudo-random value tree, depth-bounded, derived entirely from `seed`.
fn arb_value(seed: &mut u64, depth: u32) -> Value {
    let pick = splitmix(seed) % if depth == 0 { 6 } else { 8 };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(splitmix(seed).is_multiple_of(2)),
        2 => Value::Int((splitmix(seed) as i64 as i128) << (splitmix(seed) % 64)),
        3 => Value::UInt((splitmix(seed) as u128) << (splitmix(seed) % 64)),
        4 => Value::Float(f64::from_bits(
            0x3FF0_0000_0000_0000 | (splitmix(seed) >> 12),
        )),
        5 => {
            let len = (splitmix(seed) % 12) as usize;
            Value::Str(
                (0..len)
                    .map(|_| char::from_u32(0x61 + (splitmix(seed) % 26) as u32).unwrap())
                    .collect(),
            )
        }
        6 => {
            let len = (splitmix(seed) % 4) as usize;
            Value::Seq((0..len).map(|_| arb_value(seed, depth - 1)).collect())
        }
        _ => {
            let len = (splitmix(seed) % 4) as usize;
            Value::Map(
                (0..len)
                    .map(|i| (format!("k{i}"), arb_value(seed, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// A pseudo-random `DynMsg<u64>`, covering every wire variant.
fn arb_dyn_msg(seed: &mut u64) -> DynMsg<u64> {
    let tag = Tag::new(
        splitmix(seed) % 50,
        ProcessId::Client(awr_types::ClientId((splitmix(seed) % 4) as u32)),
    );
    let reg = TaggedValue {
        tag,
        value: Some(splitmix(seed)),
    };
    let mut set = ChangeSet::new();
    for _ in 0..(splitmix(seed) % 4) {
        set.insert(Change::new(
            ServerId((splitmix(seed) % 5) as u32),
            2 + splitmix(seed) % 7,
            ServerId((splitmix(seed) % 5) as u32),
            Ratio::new(1 + (splitmix(seed) % 3) as i128, 8),
        ));
    }
    let cs = match splitmix(seed) % 3 {
        0 => CsRef::summary(&set),
        1 => CsRef::Delta {
            base_digest: splitmix(seed),
            adds: set.iter().cloned().collect(),
        },
        _ => CsRef::Full(set.clone()),
    };
    let obj = ObjectId(splitmix(seed) % 3);
    let op = splitmix(seed) % 100;
    match splitmix(seed) % 6 {
        0 => DynMsg::R {
            op,
            obj,
            changes: cs,
        },
        1 => DynMsg::RAck {
            op,
            obj,
            reg,
            changes: cs,
            accepted: splitmix(seed).is_multiple_of(2),
        },
        2 => DynMsg::W {
            op,
            obj,
            reg,
            changes: cs,
        },
        3 => DynMsg::WAck {
            op,
            obj,
            changes: cs,
            accepted: splitmix(seed).is_multiple_of(2),
        },
        4 => DynMsg::SyncR {
            digest: splitmix(seed),
        },
        _ => DynMsg::Wr(awr_core::restricted::WrMsg::Rb(RbEnvelope {
            origin: ActorId((splitmix(seed) % 5) as usize),
            seq: splitmix(seed) % 9,
            payload: vec![],
        })),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any value tree survives encode → decode unchanged, and the decoder
    /// consumes exactly the bytes the encoder produced.
    #[test]
    fn value_trees_roundtrip(seed in 0u64..u64::MAX) {
        let mut s = seed;
        let v = arb_value(&mut s, 4);
        let mut bytes = Vec::new();
        frame::encode_value(&v, &mut bytes);
        let mut pos = 0;
        let back = frame::decode_value(&bytes, &mut pos).expect("decode");
        prop_assert_eq!(pos, bytes.len());
        prop_assert_eq!(back, v);
    }

    /// Every protocol message variant round-trips through a whole frame
    /// (version byte, length prefix, payload) to an identical value tree.
    #[test]
    fn protocol_messages_roundtrip(seed in 0u64..u64::MAX) {
        let mut s = seed;
        let msg = arb_dyn_msg(&mut s);
        let back: DynMsg<u64> = frame::roundtrip(&msg).expect("roundtrip");
        prop_assert_eq!(back.to_value(), msg.to_value());
    }

    /// Any proper prefix of a frame is `Ok(None)` (incomplete) from the
    /// buffer parser and `Truncated` from the blocking reader — never a
    /// bogus message, never a panic.
    #[test]
    fn truncated_frames_rejected(seed in 0u64..u64::MAX, frac in 0.0f64..1.0) {
        let mut s = seed;
        let msg = arb_dyn_msg(&mut s);
        let full = encode_frame(&msg);
        let cut = ((full.len() - 1) as f64 * frac) as usize;
        prop_assert!(matches!(
            decode_frame::<DynMsg<u64>>(&full[..cut]),
            Ok(None)
        ));
        if cut > 0 {
            let mut r = std::io::Cursor::new(&full[..cut]);
            prop_assert!(matches!(
                read_frame::<DynMsg<u64>>(&mut r),
                Err(FrameError::Truncated)
            ));
        }
    }

    /// Any length prefix above `MAX_FRAME` is rejected before allocation.
    #[test]
    fn oversized_lengths_rejected(extra in 1u64..u32::MAX as u64 - MAX_FRAME as u64) {
        let len = (MAX_FRAME as u64 + extra) as u32;
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&[frame::WIRE_VERSION, 0, 0, 0]);
        prop_assert!(matches!(
            decode_frame::<u64>(&buf),
            Err(FrameError::Oversized { .. })
        ));
    }
}
