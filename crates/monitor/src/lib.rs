//! # awr-monitor — synthetic monitoring and weight planning
//!
//! The paper assumes "servers invoke `transfer` based on the information
//! provided by a monitoring system" (§VI, citing AWARE \[10\] and \[11\]) and
//! deliberately leaves that system out of scope. This crate supplies the
//! missing piece so the examples and experiments can exercise the
//! reassignment code path end-to-end:
//!
//! * [`LatencyMonitor`] — exponentially-weighted moving averages of observed
//!   per-server latencies;
//! * [`WeightPolicy`] — turns latency estimates into *target weights* that
//!   respect the RP-Integrity floor and Property 1;
//! * [`plan_transfers`] (re-exported from [`awr_quorum::placement`], where
//!   the full policy suite lives) — decomposes a current→target weight move
//!   into pairwise transfers that honour C1 (only a server moves its own
//!   weight) and C2 (donors stay above the floor), ready to feed to
//!   `TransferCore::transfer`;
//! * [`DecisionLog`] / [`PolicyDecision`] — telemetry for the adaptive
//!   placement loop: every observe→decide→reassign tick records what the
//!   policy saw, what it proposed, and what was actually issued, so
//!   experiments can audit *why* weights moved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use awr_core::RpConfig;
use awr_types::{Ratio, ServerId, WeightMap};

/// Exponentially-weighted moving average latency estimator, one lane per
/// server.
///
/// # Examples
///
/// ```
/// use awr_monitor::LatencyMonitor;
/// use awr_types::ServerId;
///
/// let mut m = LatencyMonitor::new(3, 0.2);
/// for _ in 0..50 { m.observe(ServerId(0), 10.0); m.observe(ServerId(1), 100.0); }
/// assert!(m.estimate(ServerId(0)).unwrap() < m.estimate(ServerId(1)).unwrap());
/// ```
#[derive(Clone, Debug)]
pub struct LatencyMonitor {
    alpha: f64,
    ewma: Vec<Option<f64>>,
    samples: Vec<u64>,
}

impl LatencyMonitor {
    /// Creates a monitor for `n` servers with smoothing factor `alpha`
    /// (0 < alpha ≤ 1; higher reacts faster).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(n: usize, alpha: f64) -> LatencyMonitor {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        LatencyMonitor {
            alpha,
            ewma: vec![None; n],
            samples: vec![0; n],
        }
    }

    /// Feeds one latency sample (any consistent unit) for `s`.
    pub fn observe(&mut self, s: ServerId, latency: f64) {
        let lane = &mut self.ewma[s.index()];
        *lane = Some(match *lane {
            None => latency,
            Some(prev) => prev + self.alpha * (latency - prev),
        });
        self.samples[s.index()] += 1;
    }

    /// Current estimate for `s` (`None` until the first sample).
    pub fn estimate(&self, s: ServerId) -> Option<f64> {
        self.ewma[s.index()]
    }

    /// Number of samples seen for `s`.
    pub fn sample_count(&self, s: ServerId) -> u64 {
        self.samples[s.index()]
    }

    /// All estimates, substituting `default` where no sample exists.
    pub fn estimates_or(&self, default: f64) -> Vec<f64> {
        self.ewma.iter().map(|e| e.unwrap_or(default)).collect()
    }
}

/// Computes target weights from latency estimates.
///
/// Faster servers get more weight, inversely proportional to latency, then
/// the vector is clamped so that every server stays strictly above the
/// RP-Integrity floor and renormalized to preserve the total (C2-compatible
/// targets). The result always satisfies Property 1.
#[derive(Clone, Debug)]
pub struct WeightPolicy {
    /// Safety margin above the floor, as a fraction of the floor (e.g. 0.05
    /// keeps every target ≥ 1.05 × floor).
    pub margin: f64,
}

impl Default for WeightPolicy {
    fn default() -> WeightPolicy {
        WeightPolicy { margin: 0.1 }
    }
}

impl WeightPolicy {
    /// Computes a target weight vector for `cfg` given latency estimates.
    ///
    /// # Panics
    ///
    /// Panics if `latencies.len() != cfg.n` or any latency is non-positive.
    pub fn targets(&self, cfg: &RpConfig, latencies: &[f64]) -> WeightMap {
        assert_eq!(latencies.len(), cfg.n, "one latency per server");
        assert!(
            latencies.iter().all(|&l| l > 0.0),
            "latencies must be positive"
        );
        let total = cfg.initial_total().to_f64();
        let floor = cfg.floor().to_f64();
        let min_w = floor * (1.0 + self.margin);

        // Inverse-latency shares.
        let inv: Vec<f64> = latencies.iter().map(|l| 1.0 / l).collect();
        let inv_sum: f64 = inv.iter().sum();
        let mut w: Vec<f64> = inv.iter().map(|i| total * i / inv_sum).collect();

        // Clamp to the floor+margin and redistribute the deficit from the
        // richest lanes (iterate to a fixed point; n is small).
        for _ in 0..cfg.n {
            let mut deficit = 0.0;
            for x in w.iter_mut() {
                if *x < min_w {
                    deficit += min_w - *x;
                    *x = min_w;
                }
            }
            if deficit <= 1e-12 {
                break;
            }
            let headroom: f64 = w.iter().map(|x| (x - min_w).max(0.0)).sum();
            if headroom <= deficit {
                // Degenerate: fall back to uniform.
                let u = total / cfg.n as f64;
                for x in w.iter_mut() {
                    *x = u;
                }
                break;
            }
            for x in w.iter_mut() {
                let h = (*x - min_w).max(0.0);
                *x -= deficit * h / headroom;
            }
        }

        // Quantize to exact rationals (1/1000 grid) preserving the total.
        let scale = 1000i128;
        let mut q: Vec<i128> = w
            .iter()
            .map(|x| (x * scale as f64).round() as i128)
            .collect();
        let target_total = (total * scale as f64).round() as i128;
        let drift: i128 = target_total - q.iter().sum::<i128>();
        // Dump the rounding drift on the largest entry (it has headroom).
        if let Some(max_idx) = (0..q.len()).max_by_key(|&i| q[i]) {
            q[max_idx] += drift;
        }
        WeightMap::from_vec(q.into_iter().map(|n| Ratio::new(n, scale)).collect())
    }
}

pub use awr_quorum::placement::{plan_transfers, PlannedTransfer};

/// Validates that a plan is executable under C2: simulating the transfers
/// in order, every donor stays strictly above the floor. Returns the index
/// of the first infeasible step, or `None` if the plan is clean.
pub fn first_infeasible_step(
    cfg: &RpConfig,
    current: &WeightMap,
    plan: &[PlannedTransfer],
) -> Option<usize> {
    let floor = cfg.floor();
    let mut w = current.clone();
    for (i, t) in plan.iter().enumerate() {
        if w.weight(t.from) <= t.delta + floor {
            return Some(i);
        }
        w.add(t.from, -t.delta);
        w.add(t.to, t.delta);
    }
    None
}

/// One recorded placement decision: what the policy saw, what it proposed,
/// and what was issued to the protocol.
#[derive(Clone, Debug)]
pub struct PolicyDecision {
    /// Virtual time of the decision, nanoseconds.
    pub at_nanos: u64,
    /// The deciding policy's name.
    pub policy: &'static str,
    /// The weight map in force when the policy ran.
    pub current: WeightMap,
    /// The map the policy proposed.
    pub proposed: WeightMap,
    /// Whether the proposal passed safety validation (RP-Integrity floor
    /// and Property 1). Invalid proposals are recorded but never issued.
    pub accepted: bool,
    /// Transfers the plan decomposed into (post hysteresis filtering).
    pub planned: usize,
    /// Transfers actually handed to the protocol.
    pub issued: usize,
}

impl PolicyDecision {
    /// Whether this tick changed anything (a no-op decision proposes the
    /// current map back, or plans zero transfers).
    pub fn is_noop(&self) -> bool {
        self.issued == 0
    }
}

/// An append-only log of placement decisions — the policy-side audit trail
/// mirroring what `awr_core::audit_transfers` does for the protocol side.
#[derive(Clone, Debug, Default)]
pub struct DecisionLog {
    entries: Vec<PolicyDecision>,
}

impl DecisionLog {
    /// An empty log.
    pub fn new() -> DecisionLog {
        DecisionLog::default()
    }

    /// Appends a decision.
    pub fn push(&mut self, d: PolicyDecision) {
        self.entries.push(d);
    }

    /// All decisions, oldest first.
    pub fn entries(&self) -> &[PolicyDecision] {
        &self.entries
    }

    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether any decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most recent decision.
    pub fn last(&self) -> Option<&PolicyDecision> {
        self.entries.last()
    }

    /// Decisions that actually issued transfers.
    pub fn effective(&self) -> usize {
        self.entries.iter().filter(|d| !d.is_noop()).count()
    }

    /// Total transfers issued across all decisions.
    pub fn transfers_issued(&self) -> usize {
        self.entries.iter().map(|d| d.issued).sum()
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} decision(s), {} effective, {} transfer(s) issued",
            self.len(),
            self.effective(),
            self.transfers_issued(),
        )
    }
}

/// A synthetic latency regime for experiments: per-server base latency with
/// a step change ("regime shift") at a given sample index.
#[derive(Clone, Debug)]
pub struct RegimeShift {
    /// Base latency per server before the shift.
    pub before: Vec<f64>,
    /// Base latency per server after the shift.
    pub after: Vec<f64>,
    /// The sample index at which the shift happens.
    pub at_sample: u64,
}

impl RegimeShift {
    /// The latency of server `s` at sample `k`.
    pub fn latency(&self, s: ServerId, k: u64) -> f64 {
        if k < self.at_sample {
            self.before[s.index()]
        } else {
            self.after[s.index()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    #[test]
    fn ewma_converges() {
        let mut m = LatencyMonitor::new(2, 0.5);
        assert_eq!(m.estimate(s(0)), None);
        for _ in 0..30 {
            m.observe(s(0), 10.0);
        }
        assert!((m.estimate(s(0)).unwrap() - 10.0).abs() < 1e-6);
        assert_eq!(m.sample_count(s(0)), 30);
        assert_eq!(m.estimates_or(99.0)[1], 99.0);
    }

    #[test]
    fn ewma_tracks_shift() {
        let mut m = LatencyMonitor::new(1, 0.3);
        for _ in 0..20 {
            m.observe(s(0), 10.0);
        }
        for _ in 0..20 {
            m.observe(s(0), 100.0);
        }
        assert!(m.estimate(s(0)).unwrap() > 90.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = LatencyMonitor::new(1, 0.0);
    }

    #[test]
    fn policy_targets_respect_floor_and_total() {
        let cfg = RpConfig::uniform(7, 2);
        let policy = WeightPolicy::default();
        // Server 7 is 20× slower than the rest.
        let lat = [10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 200.0];
        let t = policy.targets(&cfg, &lat);
        assert_eq!(t.total(), cfg.initial_total());
        assert!(awr_quorum::rp_integrity_holds(&t, cfg.floor()), "{t}");
        assert!(awr_quorum::integrity_holds(&t, cfg.f));
        // The slow server ends up lightest.
        assert_eq!(t.weight(s(6)), t.min_weight());
    }

    #[test]
    fn policy_uniform_latencies_give_uniform_weights() {
        let cfg = RpConfig::uniform(5, 1);
        let t = WeightPolicy::default().targets(&cfg, &[20.0; 5]);
        for (_, w) in t.iter() {
            assert_eq!(w, Ratio::ONE);
        }
    }

    #[test]
    fn plan_roundtrip_reaches_target() {
        let cfg = RpConfig::uniform(7, 2);
        let target = WeightMap::dec(&["1.25", "1.25", "1.25", "0.75", "0.75", "0.75", "1"]);
        let plan = plan_transfers(&cfg.initial_weights, &target);
        assert!(!plan.is_empty());
        assert!(first_infeasible_step(&cfg, &cfg.initial_weights, &plan).is_none());
        // Apply and verify.
        let mut w = cfg.initial_weights.clone();
        for t in &plan {
            w.add(t.from, -t.delta);
            w.add(t.to, t.delta);
        }
        assert_eq!(w, target);
        assert!(plan.iter().all(|t| t.from != t.to));
    }

    #[test]
    fn plan_empty_when_already_at_target() {
        let cfg = RpConfig::uniform(4, 1);
        assert!(plan_transfers(&cfg.initial_weights, &cfg.initial_weights).is_empty());
    }

    #[test]
    #[should_panic(expected = "totals differ")]
    fn plan_rejects_total_mismatch() {
        let a = WeightMap::dec(&["1", "1"]);
        let b = WeightMap::dec(&["1", "2"]);
        let _ = plan_transfers(&a, &b);
    }

    #[test]
    fn infeasible_step_detected() {
        let cfg = RpConfig::uniform(4, 1); // floor = 4/6 = 2/3
        let plan = vec![PlannedTransfer {
            from: s(0),
            to: s(1),
            delta: Ratio::dec("0.4"), // 1 > 0.4 + 2/3 is false
        }];
        assert_eq!(
            first_infeasible_step(&cfg, &cfg.initial_weights, &plan),
            Some(0)
        );
    }

    #[test]
    fn regime_shift_steps() {
        let r = RegimeShift {
            before: vec![10.0, 10.0],
            after: vec![10.0, 500.0],
            at_sample: 5,
        };
        assert_eq!(r.latency(s(1), 4), 10.0);
        assert_eq!(r.latency(s(1), 5), 500.0);
        assert_eq!(r.latency(s(0), 9), 10.0);
    }

    #[test]
    fn policy_then_plan_end_to_end() {
        // Monitoring → targets → plan → all feasible.
        let cfg = RpConfig::uniform(7, 2);
        let mut mon = LatencyMonitor::new(7, 0.3);
        for k in 0..40u64 {
            for i in 0..7 {
                let base = if i >= 4 { 150.0 } else { 15.0 };
                mon.observe(s(i), base + (k % 3) as f64);
            }
        }
        let targets = WeightPolicy::default().targets(&cfg, &mon.estimates_or(50.0));
        let plan = plan_transfers(&cfg.initial_weights, &targets);
        assert!(first_infeasible_step(&cfg, &cfg.initial_weights, &plan).is_none());
        // Fast servers gained weight.
        assert!(targets.weight(s(0)) > targets.weight(s(5)));
    }
}
