//! # awr-storage — dynamic-weighted atomic storage
//!
//! The case study of *“How Hard is Asynchronous Weight Reassignment?”*
//! (§VII): a multi-writer atomic register whose quorums are weighted and
//! whose weights are reassigned online by the restricted pairwise protocol —
//! plus the static baselines it is evaluated against and a linearizability
//! checker that makes Theorem 6 testable.
//!
//! * [`AbdClient`]/[`AbdServer`] — classic multi-writer ABD over a static
//!   [`QuorumRule`] (majority, or weighted with fixed weights);
//! * [`DynClient`]/[`DynServer`] — Algorithms 5 & 6: change-set-referencing
//!   phases over the delta-negotiated wire of [`awr_types::sync`]
//!   (steady-state payloads O(1) in |C|; [`WireMode::ForceFull`] restores
//!   the paper-literal full sets on the ABD phases), stale-`C` rejection
//!   with client restart,
//!   and the Algorithm 4 register refresh on weight gain;
//! * [`StorageHarness`] — a wired world for experiments;
//! * [`check_linearizable`] — Wing&Gong-style atomicity checking with
//!   quiescent partitioning and memoization;
//! * [`workload`] — random closed-loop workload generators;
//! * [`placement`] — the [`PlacementDriver`] closing the
//!   observe→decide→reassign loop: it feeds the simulator's per-link
//!   metrics to an `awr_quorum` [`awr_quorum::PlacementPolicy`], validates
//!   the proposal, and issues the planned transfers through the restricted
//!   protocol (decision telemetry lands in an `awr_monitor::DecisionLog`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abd_static;
pub mod durable;
mod dynamic;
mod harness;
mod history;
mod lin;
pub mod openloop;
pub mod placement;
mod quorum_rule;
pub mod workload;

pub use abd_static::{AbdClient, AbdMsg, AbdServer, CompletedOp, Value};
pub use awr_epoch::CheckpointCadence;
pub use durable::{
    FileStorage, MemStorage, Recovered, Snapshot, Storage, StorageHandle, WalRecord,
};
pub use dynamic::{
    reg_tag_digest, DynClient, DynCompletedOp, DynMsg, DynOpDriver, DynOptions, DynServer,
    ReadMode, RefreshHave, RetryPolicy, WireMode,
};
pub use harness::StorageHarness;
pub use history::{HistOp, History, OpKind};
pub use lin::{check_linearizable, check_linearizable_keyed, KeyedLinError, LinError};
pub use openloop::{OpenLoopClient, OpenLoopHarness, OpenLoopSpec, OpenLoopStats};
pub use placement::{run_adaptive_workload, PlacementDriver};
pub use quorum_rule::QuorumRule;

#[cfg(test)]
mod dynamic_tests {
    use super::*;
    use awr_core::{audit_transfers, RpConfig};
    use awr_sim::UniformLatency;
    use awr_types::{Ratio, ServerId};

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    fn harness(seed: u64) -> StorageHarness<u64> {
        StorageHarness::build(
            RpConfig::uniform(7, 2),
            3,
            seed,
            UniformLatency::new(1_000, 60_000),
            DynOptions::default(),
        )
    }

    #[test]
    fn write_then_read() {
        let mut h = harness(1);
        h.write(0, 42).unwrap();
        let (v, _) = h.read(1).unwrap();
        assert_eq!(v, Some(42));
    }

    #[test]
    fn read_before_write_is_none() {
        let mut h = harness(2);
        let (v, _) = h.read(0).unwrap();
        assert_eq!(v, None);
    }

    #[test]
    fn storage_survives_transfers_mid_stream() {
        let mut h = harness(3);
        h.write(0, 1).unwrap();
        // Shift weight so {s1, s2, s3} becomes a quorum.
        for (from, to) in [(3, 0), (4, 1), (5, 2)] {
            let out = h
                .transfer_and_wait(s(from), s(to), Ratio::dec("0.25"))
                .unwrap();
            assert!(out.is_effective());
        }
        h.write(1, 2).unwrap();
        let (v, _) = h.read(2).unwrap();
        assert_eq!(v, Some(2));
        // The audit certifies RP-Integrity throughout.
        let report = audit_transfers(h.config(), &h.all_completed_transfers());
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn storage_survives_f_crashes_after_reassignment() {
        let mut h = harness(4);
        h.write(0, 10).unwrap();
        h.transfer_and_wait(s(3), s(0), Ratio::dec("0.25")).unwrap();
        h.crash_server(s(5));
        h.crash_server(s(6));
        h.write(1, 20).unwrap();
        let (v, _) = h.read(2).unwrap();
        assert_eq!(v, Some(20));
    }

    #[test]
    fn interleaved_ops_and_transfers_linearizable() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in 0..5 {
            let mut h = harness(100 + seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut next_val = 1u64;
            for round in 0..15 {
                for k in 0..3 {
                    if !h.client_busy(k) && rng.random_range(0..10) < 6 {
                        if rng.random_range(0..2) == 0 {
                            h.begin_async(k, Some(next_val));
                            next_val += 1;
                        } else {
                            h.begin_async(k, None);
                        }
                    }
                }
                if round % 3 == 0 {
                    let from = s(rng.random_range(0..7));
                    let to = s(rng.random_range(0..7));
                    if from != to {
                        let _ = h.transfer_async(from, to, Ratio::dec("0.05"));
                    }
                }
                h.world.run_for(150_000);
            }
            h.settle();
            let hist = h.history();
            assert!(hist.len() >= 10, "seed {seed}: history too small");
            check_linearizable(&hist).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let report = audit_transfers(h.config(), &h.all_completed_transfers());
            assert!(report.is_clean(), "seed {seed}: {:?}", report.violations);
        }
    }

    #[test]
    fn minority_quorum_weight_after_reassignment() {
        // After concentrating weight on {s1,s2,s3}, those three alone carry
        // a quorum by weight.
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(7, 2),
            2,
            5,
            UniformLatency::new(1_000, 30_000),
            DynOptions::default(),
        );
        h.write(0, 7).unwrap();
        for (from, to) in [(3, 0), (4, 1), (5, 2)] {
            h.transfer_and_wait(s(from), s(to), Ratio::dec("0.25"))
                .unwrap();
        }
        h.settle();
        let server_changes = h
            .world
            .actor::<DynServer<u64>>(h.server_actor(s(0)))
            .unwrap()
            .changes()
            .clone();
        let weights = server_changes.weights(7);
        let fast: Ratio = [s(0), s(1), s(2)].iter().map(|x| weights.weight(*x)).sum();
        assert!(fast > Ratio::dec("3.5"), "minority quorum should suffice");
    }

    #[test]
    fn restarts_happen_when_client_is_stale() {
        let mut h = harness(6);
        h.write(0, 1).unwrap();
        h.transfer_and_wait(s(3), s(0), Ratio::dec("0.25")).unwrap();
        h.settle();
        // Client 1 never operated: its C is stale → first op restarts.
        let (v, op) = h.read(1).unwrap();
        assert_eq!(v, Some(1));
        assert!(op.restarts > 0, "expected a stale-C restart");
    }

    #[test]
    fn ablation_no_restart_returns_stale_reads() {
        // E10(b): with restart-on-stale OFF, a reader judging quorums under
        // the *old* weights assembles an old-weight quorum of four light
        // servers that never saw the latest write. The adversary (allowed in
        // an asynchronous system!) merely delays two flows:
        //   * reader ↔ heavy trio {s1,s2,s3},
        //   * writer → light quartet {s4..s7}.
        use awr_sim::{ActorId, TargetedDelay, Time, SECOND};
        let reader = ActorId(7); // client 0
        let writer = ActorId(8); // client 1
        let heavy = |a: ActorId| a.index() < 3;
        let light = |a: ActorId| (3..7).contains(&a.index());
        let hold = Time(600 * SECOND);
        let base = UniformLatency::new(1_000, 10_000);
        let d1 = TargetedDelay::new(
            base,
            move |f, t| (f == reader && heavy(t)) || (heavy(f) && t == reader),
            hold,
        );
        let d2 = TargetedDelay::new(d1, move |f, t| f == writer && light(t), hold);
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(7, 2),
            3,
            42,
            d2,
            DynOptions {
                restart_on_stale: false,
                ..DynOptions::default()
            },
        );
        // Client 2 (unconstrained) writes v1 everywhere under initial C.
        h.write(2, 1).unwrap();
        // Concentrate weight: {s1,s2,s3} = 3.75 becomes a quorum.
        for (from, to) in [(3, 0), (4, 1), (5, 2)] {
            let out = h
                .transfer_and_wait(s(from), s(to), Ratio::dec("0.25"))
                .unwrap();
            assert!(out.is_effective());
        }
        // Sync the writer's view; its v2 write completes on the heavy trio
        // alone (its W messages to the lights are held by the adversary).
        let server_changes = h
            .world
            .actor::<DynServer<u64>>(h.server_actor(s(0)))
            .unwrap()
            .changes()
            .clone();
        let c1 = h.client_actor(1);
        h.world
            .actor_mut::<DynClient<u64>>(c1)
            .unwrap()
            .driver
            .changes = server_changes;
        h.write(1, 2).unwrap();
        // The stale reader now assembles {s4..s7} = 4.0 under the OLD map.
        let (v, _) = h.read(0).unwrap();
        assert_eq!(v, Some(1), "expected the stale value");
        // The checker must flag the execution as non-atomic.
        assert!(
            check_linearizable(&h.history()).is_err(),
            "stale read was not flagged"
        );
    }

    #[test]
    fn writer_conflict_resolved_by_tags() {
        let mut h = harness(8);
        h.begin_async(0, Some(100));
        h.begin_async(1, Some(200));
        h.settle();
        let (v1, _) = h.read(2).unwrap();
        let (v2, _) = h.read(2).unwrap();
        assert!(v1 == Some(100) || v1 == Some(200));
        assert_eq!(v1, v2, "reads after quiescence must agree");
        check_linearizable(&h.history()).unwrap();
    }

    #[test]
    fn refresh_on_gain_runs() {
        let mut h = harness(9);
        h.write(0, 5).unwrap();
        h.transfer_and_wait(s(3), s(0), Ratio::dec("0.2")).unwrap();
        h.settle();
        let srv = h
            .world
            .actor::<DynServer<u64>>(h.server_actor(s(0)))
            .unwrap();
        assert!(srv.refreshes >= 1, "the gaining server must refresh");
        assert_eq!(srv.weight(), Ratio::dec("1.2"));
    }
}
