//! The adaptive placement driver: closes the observe→decide→reassign loop
//! over a live [`StorageHarness`].
//!
//! Each [`PlacementDriver::tick`] snapshots the world's per-link
//! [`awr_sim::Metrics`] (the *observe* step), asks its
//! [`PlacementPolicy`] for a target weight map (*decide*), validates the
//! proposal against the RP-Integrity floor and Property 1, plans the move
//! as pairwise transfers, and issues each on its donor through the
//! restricted protocol in queued mode (*reassign* — C1 is preserved
//! because every transfer is invoked by the server that loses the weight,
//! and C2 is enforced by the protocol's own local check even if the plan
//! raced with concurrent reassignment). Every tick is recorded in a
//! [`DecisionLog`] so experiments can audit why weights moved.
//!
//! [`run_adaptive_workload`] packages the periodic version: a closed-loop
//! read/write workload with a policy tick every `decide_every` rounds —
//! the shape `bench_placement` and `examples/placement_policies.rs` use.

use awr_monitor::{DecisionLog, PolicyDecision};
use awr_quorum::placement::{plan_transfers, PlacementInputs, PlacementPolicy};
use awr_quorum::{integrity_holds, rp_integrity_holds};
use awr_sim::{ActorId, Metrics};
use awr_types::{Ratio, ServerId, WeightMap};

use crate::abd_static::Value;
use crate::dynamic::DynServer;
use crate::harness::StorageHarness;
use crate::workload::{WorkloadSpec, WorkloadStats};

/// Drives a [`PlacementPolicy`] against a [`StorageHarness`].
pub struct PlacementDriver {
    policy: Box<dyn PlacementPolicy>,
    observers: Vec<ActorId>,
    /// Hysteresis: planned transfers smaller than this are dropped, so the
    /// loop does not churn the protocol over rounding-grade imbalances.
    pub min_step: Ratio,
    /// Observe over the *window since the previous tick*
    /// ([`Metrics::since`]) instead of the cumulative run. Off by default
    /// (the historical behaviour). Windowing is what makes re-deciding
    /// through a regime shift work: cumulative means dilute the new regime
    /// under the old one's samples, so a driver that decided once under
    /// congestion would keep seeing that congestion forever.
    pub windowed: bool,
    /// The metrics snapshot taken at the previous windowed tick.
    last_snapshot: Option<Metrics>,
    /// The decision audit trail.
    pub log: DecisionLog,
}

impl PlacementDriver {
    /// A driver for `policy` optimizing the latency of `observers`
    /// (typically the harness's client actors). The default hysteresis
    /// drops planned transfers below 1/100.
    pub fn new(policy: impl PlacementPolicy + 'static, observers: Vec<ActorId>) -> PlacementDriver {
        PlacementDriver {
            policy: Box::new(policy),
            observers,
            min_step: Ratio::new(1, 100),
            windowed: false,
            last_snapshot: None,
            log: DecisionLog::new(),
        }
    }

    /// The policy's name (for reports).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The weight map currently in force, as seen by server 0.
    pub fn current_weights<V: Value>(&self, h: &StorageHarness<V>) -> WeightMap {
        let n = h.config().n;
        h.world
            .actor::<DynServer<V>>(h.server_actor(ServerId(0)))
            .expect("server 0")
            .changes()
            .weights(n)
    }

    /// One observe→decide→reassign round. Returns the number of transfers
    /// issued (0 for a no-op decision); run the world afterwards to let
    /// them complete.
    pub fn tick<V: Value>(&mut self, h: &mut StorageHarness<V>) -> usize {
        let cfg = h.config().clone();
        let current = self.current_weights(h);
        // Windowed mode: the policy sees only what happened since the last
        // tick; cumulative mode (default) sees the whole run.
        let observed: Metrics = if self.windowed {
            let now = h.world.metrics().clone();
            let window = match &self.last_snapshot {
                Some(base) => now.since(base),
                None => now.clone(),
            };
            self.last_snapshot = Some(now);
            window
        } else {
            h.world.metrics().clone()
        };
        let proposed = {
            let inputs = PlacementInputs::for_prefix_servers(
                &observed,
                &current,
                cfg.floor(),
                cfg.f,
                self.observers.clone(),
            );
            self.policy.propose(&inputs)
        };
        // Defense in depth: a policy proposal must already be safe by
        // construction, but nothing unsafe may reach the wire either way.
        let accepted = proposed.len() == current.len()
            && proposed.total() == current.total()
            && rp_integrity_holds(&proposed, cfg.floor())
            && integrity_holds(&proposed, cfg.f);
        let plan: Vec<_> = if accepted {
            plan_transfers(&current, &proposed)
                .into_iter()
                .filter(|t| t.delta >= self.min_step)
                .collect()
        } else {
            Vec::new()
        };
        let mut issued = 0;
        for t in &plan {
            // Queued mode: a donor already mid-transfer batches instead of
            // failing Busy; the protocol's C2 check still guards the floor.
            if h.transfer_queued(t.from, t.to, t.delta).is_ok() {
                issued += 1;
            }
        }
        self.log.push(PolicyDecision {
            at_nanos: h.world.now().nanos(),
            policy: self.policy.name(),
            current,
            proposed,
            accepted,
            planned: plan.len(),
            issued,
        });
        issued
    }
}

/// Runs the closed-loop workload of
/// [`run_mixed_workload`](crate::workload::run_mixed_workload) — the
/// `spec`'s client ops *and* random transfers are honoured — with a
/// placement tick every `decide_every` rounds (0 disables adaptation).
/// Returns the workload statistics; `WorkloadStats::transfers_attempted`
/// counts the spec's random transfers as documented, while the
/// driver-issued placement transfers are reported by the driver's own
/// [`DecisionLog`] (`driver.log.transfers_issued()`).
pub fn run_adaptive_workload(
    h: &mut StorageHarness<u64>,
    n_clients: usize,
    spec: &WorkloadSpec,
    seed: u64,
    driver: &mut PlacementDriver,
    decide_every: usize,
) -> WorkloadStats {
    crate::workload::run_workload_with_hook(h, n_clients, spec, seed, |h, round| {
        if decide_every > 0 && round > 0 && round % decide_every == 0 {
            driver.tick(h);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynOptions;
    use crate::lin::check_linearizable;
    use awr_core::{audit_transfers, RpConfig};
    use awr_quorum::placement::{LatencyGreedy, Static};
    use awr_sim::{geo_network, Region};

    fn geo_placement(n_clients: usize) -> Vec<Region> {
        // One server per region, clients co-located with Virginia.
        let mut p = Region::ALL.to_vec();
        p.extend(std::iter::repeat_n(Region::Virginia, n_clients));
        p
    }

    fn build(seed: u64) -> StorageHarness<u64> {
        StorageHarness::build(
            RpConfig::uniform(5, 1),
            1,
            seed,
            geo_network(&geo_placement(1), 0.0),
            DynOptions::default(),
        )
    }

    #[test]
    fn static_policy_never_moves_weight() {
        let mut h = build(41);
        let mut d = PlacementDriver::new(Static, vec![h.client_actor(0)]);
        h.write(0, 1).unwrap();
        assert_eq!(d.tick(&mut h), 0);
        h.settle();
        assert_eq!(d.log.len(), 1);
        let rec = d.log.last().unwrap();
        assert!(rec.accepted && rec.is_noop());
        assert_eq!(rec.proposed, rec.current);
        assert_eq!(
            d.current_weights(&h),
            h.config().initial_weights,
            "static must leave the deployment untouched"
        );
    }

    #[test]
    fn latency_greedy_concentrates_weight_near_the_client() {
        let mut h = build(42);
        let mut d = PlacementDriver::new(LatencyGreedy::default(), vec![h.client_actor(0)]);
        // Observe: a few ops populate the per-link delay matrices.
        for v in 0..6 {
            h.write(0, v).unwrap();
            h.read(0).unwrap();
        }
        // Decide + reassign.
        let issued = d.tick(&mut h);
        assert!(issued > 0, "geo imbalance must trigger transfers");
        h.settle();
        let w = d.current_weights(&h);
        // Virginia (server 0, co-located with the client) gained weight.
        assert_eq!(w.max_weight(), w.weight(ServerId(0)), "{w}");
        assert!(w.weight(ServerId(0)) > Ratio::ONE, "{w}");
        assert_eq!(w.total(), h.config().initial_total());
        // The run stays linearizable and the protocol audit stays clean.
        h.write(0, 99).unwrap();
        let (v, _) = h.read(0).unwrap();
        assert_eq!(v, Some(99));
        h.settle();
        check_linearizable(&h.history()).expect("linearizable under adaptive reassignment");
        let report = audit_transfers(h.config(), &h.all_completed_transfers());
        assert!(report.is_clean(), "{:?}", report.violations);
        // Telemetry captured the decision.
        assert_eq!(d.log.len(), 1);
        assert_eq!(d.log.last().unwrap().policy, "latency-greedy");
        assert_eq!(d.log.transfers_issued(), issued);
    }

    #[test]
    fn adaptive_workload_ticks_periodically() {
        let mut h = build(43);
        let mut d = PlacementDriver::new(LatencyGreedy::default(), vec![h.client_actor(0)]);
        let spec = WorkloadSpec {
            rounds: 12,
            round_ns: 120 * awr_sim::MILLI,
            op_percent: 90,
            write_percent: 50,
            transfer_percent: 0,
            transfer_delta: Ratio::ZERO,
        };
        let stats = run_adaptive_workload(&mut h, 1, &spec, 7, &mut d, 4);
        assert!(stats.reads + stats.writes > 0);
        assert_eq!(d.log.len(), 2, "rounds 4 and 8 tick");
        check_linearizable(&h.history()).unwrap();
    }
}
