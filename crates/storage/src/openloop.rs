//! Open-loop load harness: thousands of logical clients offering
//! operations at a target rate, with tail latency recorded per op kind
//! and per object.
//!
//! Every earlier harness drives the protocol *closed-loop*: the next
//! operation starts when the previous one returns, so the offered rate
//! collapses exactly when the system congests and the
//! latency-vs-throughput knee is invisible. Here arrivals come from an
//! [`ArrivalSpec`] (Poisson or bursty on/off) fixed up front:
//!
//! * each [`OpenLoopClient`] owns a private arrival process and a
//!   private op-script RNG — neither touches the simulation RNG, and
//!   neither observes completions, so the arrival sequence for a given
//!   `(spec, seed)` is identical no matter how the system behaves (the
//!   *open-loop invariant*, pinned by [`OpenLoopStats::arrival_hash`]
//!   being latency-model-independent);
//! * arrivals that land while an operation is in flight queue in a
//!   client-side backlog and start FIFO as completions free the slot —
//!   recorded latency is *completion minus arrival*, so queueing delay
//!   is part of the number and the knee shows up in p99/p99.9;
//! * latencies feed mergeable [`hist::Histogram`]s (read, write, and
//!   optionally per object), allocation-free on the record path.
//!
//! The harness wraps a [`StorageHarness`] built with zero built-in
//! clients and adds [`OpenLoopClient`] actors on top, so every
//! server-side facility — durable stores, fault plans,
//! [`PlacementDriver`] ticks, converged-change seeding — works
//! unchanged.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use awr_core::RpConfig;
use awr_sim::{Actor, ActorId, ArrivalProcess, ArrivalSpec, Context, Nanos, NetworkModel, Time};
use awr_types::{ChangeSet, ClientId, ObjectId, ProcessId};
use hist::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dynamic::{DynClient, DynCompletedOp, DynMsg, DynOptions};
use crate::harness::StorageHarness;
use crate::history::{HistOp, History, OpKind};
use crate::placement::PlacementDriver;
use crate::workload::{KeyDistribution, KeySampler};

/// Timer tag reserved for arrival ticks. The embedded [`DynClient`]'s
/// only timers are retry timers tagged with its operation counter — a
/// small integer — so a tag with the top bit set can never collide.
const ARRIVAL_TAG: u64 = 1 << 63;

/// One splitmix64 step — the harness's deterministic seed derivation.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a few words — the arrival-stream fingerprint.
fn fnv_words(words: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
    }
    h
}

/// The workload one open-loop run offers.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopSpec {
    /// Number of logical clients the aggregate load splits across.
    pub n_clients: usize,
    /// Size of the key space.
    pub n_objects: usize,
    /// How keys are drawn per operation.
    pub dist: KeyDistribution,
    /// Fraction of operations that are writes (the rest read).
    pub write_fraction: f64,
    /// The aggregate arrival process (split by Poisson superposition).
    pub arrivals: ArrivalSpec,
    /// Load window: arrivals stop at this virtual time; in-flight and
    /// backlogged operations then drain.
    pub duration: Nanos,
    /// Record a per-object histogram alongside the per-kind ones.
    pub per_object: bool,
    /// Master seed for the world, every arrival process, and every
    /// op script.
    pub seed: u64,
}

/// Shared mutable recording state, one per harness, handed to every
/// client. `Rc<RefCell>` because the [`awr_sim::World`] is
/// single-threaded by construction.
struct RecInner {
    reads: Histogram,
    writes: Histogram,
    per_object: Option<BTreeMap<ObjectId, Histogram>>,
    generated: u64,
    completed: u64,
    arrival_hash: u64,
    max_backlog: usize,
}

impl RecInner {
    fn new(per_object: bool) -> RecInner {
        RecInner {
            reads: Histogram::new(),
            writes: Histogram::new(),
            per_object: per_object.then(BTreeMap::new),
            generated: 0,
            completed: 0,
            arrival_hash: 0,
            max_backlog: 0,
        }
    }
}

/// A snapshot of everything an open-loop run recorded.
#[derive(Clone, Debug)]
pub struct OpenLoopStats {
    /// Operations the arrival processes generated.
    pub generated: u64,
    /// Operations that completed (== `generated` after a full drain).
    pub completed: u64,
    /// Order-insensitive fingerprint of the arrival stream — every
    /// arrival's `(client, time, object, kind)` hashed and summed. Equal
    /// across runs with the same spec and seed *regardless of the
    /// network model or scheduler*: the open-loop invariant.
    pub arrival_hash: u64,
    /// Largest client-side backlog observed on any single client — how
    /// deep the queueing went past the knee.
    pub max_backlog: usize,
    /// Read latency (arrival → completion), nanoseconds.
    pub reads: Histogram,
    /// Write latency (arrival → completion), nanoseconds.
    pub writes: Histogram,
    /// Per-object latency, if [`OpenLoopSpec::per_object`] was set.
    pub per_object: BTreeMap<ObjectId, Histogram>,
}

impl OpenLoopStats {
    /// Reads and writes merged into one distribution.
    pub fn all(&self) -> Histogram {
        let mut h = self.reads.clone();
        h.merge(&self.writes);
        h
    }
}

/// A logical open-loop client: an embedded [`DynClient`] driven by a
/// private arrival process, with a FIFO backlog for arrivals that land
/// while an operation is in flight.
pub struct OpenLoopClient {
    inner: DynClient<u64>,
    client_ix: u64,
    arrivals: Box<dyn ArrivalProcess>,
    /// Private op script (keys, read/write coin): never touches the
    /// world RNG, so the script is independent of system behaviour.
    script: StdRng,
    sampler: KeySampler,
    write_fraction: f64,
    /// Arrivals waiting for the in-flight slot: `(arrival, object,
    /// write value or None for a read)`.
    backlog: VecDeque<(Time, ObjectId, Option<u64>)>,
    /// The op in flight: `(arrival, object)`.
    inflight: Option<(Time, ObjectId)>,
    seen_completed: usize,
    next_val: u64,
    rec: Rc<RefCell<RecInner>>,
}

impl OpenLoopClient {
    /// Completed-operation records (the raw per-op trace).
    pub fn completed_ops(&self) -> &[DynCompletedOp<u64>] {
        &self.inner.driver.completed
    }

    /// Completed ops as history entries for client index `ci`.
    pub fn history_ops(&self, ci: usize) -> Vec<HistOp<u64>> {
        self.inner.history_ops(ci)
    }

    fn start(
        &mut self,
        arrived: Time,
        obj: ObjectId,
        val: Option<u64>,
        ctx: &mut Context<'_, DynMsg<u64>>,
    ) {
        self.inflight = Some((arrived, obj));
        match val {
            Some(v) => self.inner.begin_write_obj(obj, v, ctx),
            None => self.inner.begin_read_obj(obj, ctx),
        }
    }

    /// After any delegation into the embedded client: if an op just
    /// completed, record its latency and start the next backlogged one.
    fn after_progress(&mut self, ctx: &mut Context<'_, DynMsg<u64>>) {
        let n = self.inner.driver.completed.len();
        if n == self.seen_completed {
            return;
        }
        debug_assert_eq!(n, self.seen_completed + 1, "one op in flight at a time");
        self.seen_completed = n;
        let (arrived, obj) = self
            .inflight
            .take()
            .expect("completion with no op in flight");
        let latency = ctx.now().0.saturating_sub(arrived.0);
        {
            let mut rec = self.rec.borrow_mut();
            rec.completed += 1;
            match self.inner.driver.completed[n - 1].kind {
                OpKind::Read(_) => rec.reads.record(latency),
                OpKind::Write(_) => rec.writes.record(latency),
            }
            if let Some(m) = rec.per_object.as_mut() {
                m.entry(obj).or_default().record(latency);
            }
        }
        if let Some((arrived, obj, val)) = self.backlog.pop_front() {
            self.start(arrived, obj, val, ctx);
        }
    }
}

impl Actor for OpenLoopClient {
    type Msg = DynMsg<u64>;

    fn on_start(&mut self, ctx: &mut Context<'_, DynMsg<u64>>) {
        if let Some(t) = self.arrivals.next_arrival() {
            ctx.set_timer(t.0.saturating_sub(ctx.now().0), ARRIVAL_TAG);
        }
    }

    fn on_message(&mut self, from: ActorId, msg: DynMsg<u64>, ctx: &mut Context<'_, DynMsg<u64>>) {
        Actor::on_message(&mut self.inner, from, msg, ctx);
        self.after_progress(ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, DynMsg<u64>>) {
        if tag != ARRIVAL_TAG {
            // The embedded client's retry timer.
            Actor::on_timer(&mut self.inner, tag, ctx);
            self.after_progress(ctx);
            return;
        }
        let now = ctx.now();
        let obj = self.sampler.sample(&mut self.script);
        let is_write = self.script.random_range(0.0f64..1.0) < self.write_fraction;
        let val = is_write.then(|| {
            self.next_val += 1;
            // Globally unique write values: client index in the top bits.
            (self.client_ix + 1) << 40 | self.next_val
        });
        {
            let mut rec = self.rec.borrow_mut();
            rec.generated += 1;
            // Summed, not chained: insensitive to how same-instant
            // arrivals of different clients interleave.
            rec.arrival_hash = rec.arrival_hash.wrapping_add(fnv_words(&[
                self.client_ix,
                now.0,
                obj.key(),
                is_write as u64,
            ]));
        }
        if self.inflight.is_none() {
            self.start(now, obj, val, ctx);
        } else {
            self.backlog.push_back((now, obj, val));
            let depth = self.backlog.len();
            let mut rec = self.rec.borrow_mut();
            rec.max_backlog = rec.max_backlog.max(depth);
        }
        if let Some(t) = self.arrivals.next_arrival() {
            ctx.set_timer(t.0.saturating_sub(now.0), ARRIVAL_TAG);
        }
    }

    fn state_digest(&self) -> Option<u64> {
        Some(fnv_words(&[
            self.inner.driver.state_digest(),
            self.backlog.len() as u64,
            self.inflight.is_some() as u64,
            self.next_val,
        ]))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An open-loop load harness over the dynamic-weight protocol.
pub struct OpenLoopHarness {
    /// The wrapped storage harness (servers only; the open-loop clients
    /// live in `inner.world` but are owned by this layer).
    pub inner: StorageHarness<u64>,
    clients: Vec<ActorId>,
    rec: Rc<RefCell<RecInner>>,
    duration: Nanos,
}

impl OpenLoopHarness {
    /// Builds servers from `cfg` over `network`, then adds
    /// [`OpenLoopClient`]s per `spec`. Arrival and script seeds derive
    /// deterministically from `spec.seed`.
    pub fn build(
        cfg: RpConfig,
        spec: &OpenLoopSpec,
        network: impl NetworkModel + 'static,
        options: DynOptions,
    ) -> OpenLoopHarness {
        assert!(spec.n_clients > 0, "open-loop load needs clients");
        let mut inner = StorageHarness::<u64>::build(cfg.clone(), 0, spec.seed, network, options);
        // Sweep points run millions of ops; the default runaway guard is
        // sized for unit tests.
        inner.world.set_event_limit(4_000_000_000);
        let rec = Rc::new(RefCell::new(RecInner::new(spec.per_object)));
        let sampler = KeySampler::new(spec.n_objects, spec.dist);
        let share = spec.arrivals.split(spec.n_clients);
        let mut clients = Vec::with_capacity(spec.n_clients);
        for k in 0..spec.n_clients {
            let arr_seed = splitmix64(spec.seed ^ splitmix64(k as u64));
            let client = OpenLoopClient {
                inner: DynClient::new(ProcessId::Client(ClientId(k as u32)), cfg.clone(), options),
                client_ix: k as u64,
                arrivals: share.build(arr_seed, Time(spec.duration)),
                script: StdRng::seed_from_u64(splitmix64(arr_seed)),
                sampler: sampler.clone(),
                write_fraction: spec.write_fraction,
                backlog: VecDeque::new(),
                inflight: None,
                seen_completed: 0,
                next_val: 0,
                rec: Rc::clone(&rec),
            };
            clients.push(inner.world.add_actor(client));
        }
        OpenLoopHarness {
            inner,
            clients,
            rec,
            duration: spec.duration,
        }
    }

    /// Actor ids of the open-loop clients (e.g. as
    /// [`PlacementDriver`] observers).
    pub fn client_actors(&self) -> &[ActorId] {
        &self.clients
    }

    /// Pre-seeds servers *and* open-loop clients with the same converged
    /// set of at least `extra` changes (see
    /// [`StorageHarness::seed_converged_changes`]). Call before
    /// [`OpenLoopHarness::run`].
    pub fn seed_changes(&mut self, extra: usize) -> ChangeSet {
        let set = self.inner.seed_converged_changes(extra);
        for &a in &self.clients {
            self.inner
                .world
                .actor_mut::<OpenLoopClient>(a)
                .expect("open-loop client")
                .inner
                .driver
                .changes
                .merge(&set);
        }
        set
    }

    /// Runs the load window, ticking `driver` (if any) every
    /// `decide_every` of virtual time, then drains in-flight and
    /// backlogged operations to quiescence.
    ///
    /// # Panics
    ///
    /// Panics if `decide_every` is zero.
    pub fn run(&mut self, mut driver: Option<&mut PlacementDriver>, decide_every: Nanos) {
        assert!(decide_every > 0, "decide_every must be positive");
        while self.inner.world.now().0 < self.duration {
            let remaining = self.duration - self.inner.world.now().0;
            self.inner.world.run_for(decide_every.min(remaining));
            if let Some(d) = driver.as_deref_mut() {
                d.tick(&mut self.inner);
            }
        }
        self.inner.settle();
    }

    /// Snapshot of everything recorded so far.
    pub fn stats(&self) -> OpenLoopStats {
        let rec = self.rec.borrow();
        OpenLoopStats {
            generated: rec.generated,
            completed: rec.completed,
            arrival_hash: rec.arrival_hash,
            max_backlog: rec.max_backlog,
            reads: rec.reads.clone(),
            writes: rec.writes.clone(),
            per_object: rec.per_object.clone().unwrap_or_default(),
        }
    }

    /// The full operation history across open-loop clients, for
    /// linearizability checking.
    pub fn history(&self) -> History<u64> {
        let mut h = History::new();
        for (k, &a) in self.clients.iter().enumerate() {
            if let Some(c) = self.inner.world.actor::<OpenLoopClient>(a) {
                for op in c.history_ops(k) {
                    h.record(op);
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::check_linearizable_keyed;
    use awr_sim::{SchedulerKind, UniformLatency, MILLI, SECOND};

    fn spec(rate: f64, duration: Nanos, seed: u64) -> OpenLoopSpec {
        OpenLoopSpec {
            n_clients: 8,
            n_objects: 4,
            dist: KeyDistribution::Zipfian { exponent: 1.0 },
            write_fraction: 0.3,
            arrivals: ArrivalSpec::Poisson { rate_per_sec: rate },
            duration,
            per_object: true,
            seed,
        }
    }

    fn build(rate: f64, duration: Nanos, seed: u64, lat: (u64, u64)) -> OpenLoopHarness {
        OpenLoopHarness::build(
            RpConfig::uniform(3, 1),
            &spec(rate, duration, seed),
            UniformLatency::new(lat.0, lat.1),
            DynOptions::default(),
        )
    }

    #[test]
    fn completes_offered_load_and_linearizes() {
        let mut h = build(2_000.0, SECOND / 2, 11, (100_000, 900_000));
        h.run(None, 50 * MILLI);
        let s = h.stats();
        assert!(s.generated > 500, "load too light: {}", s.generated);
        assert_eq!(s.completed, s.generated, "drain left ops behind");
        assert_eq!(s.reads.count() + s.writes.count(), s.completed);
        assert!(s.reads.count() > 0 && s.writes.count() > 0);
        // Latency is at least one round trip of the minimum latency.
        assert!(s.all().min() >= 200_000);
        let per_obj: u64 = s.per_object.values().map(Histogram::count).sum();
        assert_eq!(per_obj, s.completed);
        check_linearizable_keyed(&h.history()).expect("open-loop history linearizable");
    }

    #[test]
    fn same_seed_same_everything() {
        let run = || {
            let mut h = build(3_000.0, SECOND / 4, 7, (100_000, 900_000));
            h.run(None, 50 * MILLI);
            let s = h.stats();
            (
                s.generated,
                s.arrival_hash,
                s.reads.clone(),
                s.writes.clone(),
                h.inner.world.metrics().events_processed,
            )
        };
        let (g1, h1, r1, w1, e1) = run();
        let (g2, h2, r2, w2, e2) = run();
        assert_eq!(g1, g2);
        assert_eq!(h1, h2);
        assert_eq!(r1, r2);
        assert_eq!(w1, w2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn open_loop_invariant_arrivals_ignore_latency() {
        // Same spec and seed under radically different network latency:
        // the arrival stream (count and fingerprint) must be identical,
        // even though latencies and schedules differ wildly.
        let fast = {
            let mut h = build(3_000.0, SECOND / 4, 21, (50_000, 200_000));
            h.run(None, 50 * MILLI);
            h.stats()
        };
        let slow = {
            let mut h = build(3_000.0, SECOND / 4, 21, (5 * MILLI, 20 * MILLI));
            h.run(None, 50 * MILLI);
            h.stats()
        };
        assert_eq!(fast.generated, slow.generated);
        assert_eq!(fast.arrival_hash, slow.arrival_hash);
        // The slow network queues: its tail is far worse.
        assert!(slow.all().quantile(0.99) > fast.all().quantile(0.99));
        assert!(slow.max_backlog >= fast.max_backlog);
    }

    #[test]
    fn backlog_pipelines_and_drains() {
        // Offered rate far beyond what one client can close-loop: the
        // backlog must engage, and the drain must still finish all ops.
        let mut h = OpenLoopHarness::build(
            RpConfig::uniform(3, 1),
            &OpenLoopSpec {
                n_clients: 1,
                n_objects: 2,
                dist: KeyDistribution::Uniform,
                write_fraction: 0.5,
                arrivals: ArrivalSpec::Poisson {
                    rate_per_sec: 2_000.0,
                },
                duration: SECOND / 8,
                per_object: false,
                seed: 3,
            },
            UniformLatency::new(MILLI, 4 * MILLI),
            DynOptions::default(),
        );
        h.run(None, 50 * MILLI);
        let s = h.stats();
        assert!(s.max_backlog > 0, "backlog never engaged");
        assert_eq!(s.completed, s.generated);
        // Queueing delay dominates: p99 far above one round trip.
        assert!(s.all().quantile(0.99) > 8 * MILLI);
    }

    #[test]
    fn replays_identically_on_the_heap_scheduler() {
        let run = |kind: SchedulerKind| {
            let mut h = build(2_000.0, SECOND / 4, 5, (100_000, 900_000));
            h.inner.world.set_scheduler(kind);
            h.run(None, 50 * MILLI);
            let s = h.stats();
            (
                s.generated,
                s.completed,
                s.arrival_hash,
                s.reads.clone(),
                s.writes.clone(),
                h.inner.world.metrics().events_processed,
                h.inner.world.metrics().bytes_sent,
            )
        };
        assert_eq!(
            run(SchedulerKind::TimingWheel),
            run(SchedulerKind::BinaryHeap)
        );
    }

    #[test]
    fn seeded_changes_reach_clients() {
        let mut h = build(1_000.0, SECOND / 8, 9, (100_000, 900_000));
        let set = h.seed_changes(64);
        assert!(set.len() >= 64);
        for &a in &h.clients.clone() {
            let c = h.inner.world.actor::<OpenLoopClient>(a).expect("client");
            assert!(c.inner.driver.changes.len() >= 64);
        }
        h.run(None, 50 * MILLI);
        let s = h.stats();
        assert_eq!(s.completed, s.generated);
        check_linearizable_keyed(&h.history()).expect("seeded history linearizable");
    }
}
