//! Linearizability checking for register histories (the executable side of
//! Theorem 6 / Definition 6).
//!
//! A Wing&Gong-style search specialized to read/write registers. The
//! precedence order is real time plus per-client session order (a
//! sequential client's ops are ordered even at equal timestamps), with two
//! scalability devices:
//!
//! * **quiescent partitioning** — the history is cut wherever every earlier
//!   operation has responded before every later one begins; windows are
//!   checked independently, threading the set of *possible register states*
//!   across the cut;
//! * **memoization** — within a window, visited `(linearized-set, state)`
//!   pairs are pruned (the classic bitmask DP, windows capped at 64 ops).

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;

use awr_types::ObjectId;

use crate::history::{HistOp, History, OpKind};

/// Why a history failed the atomicity check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinError {
    /// Index range (into the sorted history) of the offending window.
    pub window: (usize, usize),
    /// Human-readable diagnosis.
    pub detail: String,
    /// The offending window's operations, rendered one per entry as
    /// `c<client> <op> @[invoke, response]`. Values stand in for tags:
    /// harness workloads write distinct values, so a value names the
    /// write (and hence the tag) a read observed.
    pub ops: Vec<String>,
}

impl std::fmt::Display for LinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "history not linearizable in ops [{}, {}): {}",
            self.window.0, self.window.1, self.detail
        )?;
        for op in &self.ops {
            write!(f, "\n    {op}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LinError {}

fn render_op<V: Debug>(op: &HistOp<V>) -> String {
    let kind = match &op.kind {
        OpKind::Write(v) => format!("write({v:?})"),
        OpKind::Read(Some(v)) => format!("read -> {v:?}"),
        OpKind::Read(None) => "read -> (initial)".to_string(),
    };
    format!(
        "c{} {} @[{}, {}]",
        op.client, kind, op.invoke.0, op.response.0
    )
}

/// Checks that `history` is linearizable as a single read/write register
/// initialized to `None`.
///
/// Object ids are deliberately ignored: the whole history is treated as
/// one register (erased to [`ObjectId::DEFAULT`]) and handed to
/// [`check_linearizable_keyed`], the single entry point of the checker.
/// A multi-object history that is keyed-linearizable can therefore still
/// fail here — writes to other objects read as overwrites of the one
/// register.
///
/// # Errors
///
/// Returns [`LinError`] when no linearization exists, identifying the
/// smallest window in which the search failed and its operations.
///
/// # Panics
///
/// Panics if any window contains more than 64 mutually-entangled
/// operations (beyond the checker's bitmask capacity).
///
/// # Examples
///
/// ```
/// use awr_sim::Time;
/// use awr_storage::{check_linearizable, HistOp, History, OpKind};
/// use awr_types::ObjectId;
///
/// let obj = ObjectId::DEFAULT;
/// let mut h = History::new();
/// h.record(HistOp { client: 0, obj, kind: OpKind::Write(7), invoke: Time(0), response: Time(10) });
/// h.record(HistOp { client: 1, obj, kind: OpKind::Read(Some(7)), invoke: Time(11), response: Time(20) });
/// assert!(check_linearizable(&h).is_ok());
///
/// // A read of a never-written value cannot linearize.
/// h.record(HistOp { client: 1, obj, kind: OpKind::Read(Some(9)), invoke: Time(21), response: Time(30) });
/// assert!(check_linearizable(&h).is_err());
/// ```
pub fn check_linearizable<V: Clone + Eq + Hash + Debug>(
    history: &History<V>,
) -> Result<(), LinError> {
    let erased = History {
        ops: history
            .ops
            .iter()
            .map(|o| {
                let mut o = o.clone();
                o.obj = ObjectId::DEFAULT;
                o
            })
            .collect(),
    };
    check_linearizable_keyed(&erased).map_err(|e| e.inner)
}

/// The single-register engine: quiescent partitioning over one object's
/// ops, bitmask search within each window.
///
/// Precedence is real time **plus session order**: a client is sequential,
/// so its own ops are ordered even when the simulator invokes the next op
/// at the exact instant the previous one responded (equal timestamps
/// would otherwise read as concurrency and let the search reorder them,
/// hiding e.g. a same-client new/old inversion). Record order within a
/// client is completion order, which for a sequential client *is* program
/// order.
fn check_register<V: Clone + Eq + Hash + Debug>(history: &History<V>) -> Result<(), LinError> {
    let mut next_seq: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut ops: Vec<(usize, &HistOp<V>)> = history
        .ops
        .iter()
        .map(|o| {
            let seq = next_seq.entry(o.client).or_insert(0);
            let s = *seq;
            *seq += 1;
            (s, o)
        })
        .collect();
    ops.sort_by_key(|(_, o)| (o.invoke, o.response));

    // Possible register states entering the current window.
    let mut states: HashSet<Option<V>> = HashSet::new();
    states.insert(None);

    let mut start = 0;
    while start < ops.len() {
        // Grow the window until a quiescent cut: every op in it responds
        // before the next op's invocation.
        let mut end = start + 1;
        let mut max_resp = ops[start].1.response;
        while end < ops.len() && ops[end].1.invoke <= max_resp {
            max_resp = max_resp.max(ops[end].1.response);
            end += 1;
        }
        let window = &ops[start..end];
        assert!(
            window.len() <= 64,
            "linearizability window of {} ops exceeds checker capacity",
            window.len()
        );
        states = check_window(window, &states).map_err(|detail| LinError {
            window: (start, end),
            detail,
            ops: window.iter().map(|(_, o)| render_op(o)).collect(),
        })?;
        start = end;
    }
    Ok(())
}

/// Why a keyed history failed the per-object atomicity check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyedLinError {
    /// The object whose partition failed.
    pub obj: ObjectId,
    /// The single-register failure within that object's history.
    pub inner: LinError,
}

impl KeyedLinError {
    /// The failing window — the key it belongs to, its index range within
    /// that key's sorted partition, and its rendered operations.
    pub fn failing_window(&self) -> (ObjectId, (usize, usize), &[String]) {
        (self.obj, self.inner.window, &self.inner.ops)
    }
}

impl std::fmt::Display for KeyedLinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "object {}: {}", self.obj, self.inner)
    }
}

impl std::error::Error for KeyedLinError {}

/// Checks that `history` is linearizable as a *space of independent
/// read/write registers*, one per [`ObjectId`], each initialized to `None`.
///
/// This is the checker's **single entry point**: the history is
/// [partitioned per object](History::partition_by_object) and each part
/// runs through one shared single-register engine. (The single-object
/// wrapper [`check_linearizable`] erases keys and delegates here.)
/// Besides being the correct condition for a keyed store, partitioning is
/// the scalability device that keeps checking tractable at many objects:
/// operations on different keys never entangle, so a window that would
/// span hundreds of concurrent ops globally decomposes into small per-key
/// windows.
///
/// On a single-object history this is exactly [`check_linearizable`]
/// (pinned by the `keyed_checker` test suite).
///
/// # Errors
///
/// Returns [`KeyedLinError`] naming the first object (in key order) whose
/// partition admits no linearization, with the failing window's key,
/// index range, and rendered operations
/// ([`KeyedLinError::failing_window`]).
///
/// # Panics
///
/// Panics if any *per-object* window exceeds 64 mutually-entangled
/// operations (the underlying checker's bitmask capacity).
pub fn check_linearizable_keyed<V: Clone + Eq + Hash + Debug>(
    history: &History<V>,
) -> Result<(), KeyedLinError> {
    for (obj, part) in history.partition_by_object() {
        check_register(&part).map_err(|inner| KeyedLinError { obj, inner })?;
    }
    Ok(())
}

/// Explores all linearizations of one window from each possible entry
/// state; returns the set of possible exit states.
fn check_window<V: Clone + Eq + Hash>(
    window: &[(usize, &HistOp<V>)],
    entry_states: &HashSet<Option<V>>,
) -> Result<HashSet<Option<V>>, String> {
    let n = window.len();
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut exit_states: HashSet<Option<V>> = HashSet::new();
    let mut visited: HashSet<(u64, Option<V>)> = HashSet::new();

    // Iterative DFS over (mask, state).
    let mut stack: Vec<(u64, Option<V>)> = entry_states.iter().map(|s| (0u64, s.clone())).collect();
    while let Some((mask, state)) = stack.pop() {
        if !visited.insert((mask, state.clone())) {
            continue;
        }
        if mask == full {
            exit_states.insert(state);
            continue;
        }
        for (i, (op_seq, op)) in window.iter().enumerate() {
            let bit = 1u64 << i;
            if mask & bit != 0 {
                continue;
            }
            // op can linearize next only if no other pending op fully
            // precedes it — in real time, or in its own client's session.
            let blocked = window.iter().enumerate().any(|(j, (other_seq, other))| {
                j != i
                    && mask & (1 << j) == 0
                    && (other.response < op.invoke
                        || (other.client == op.client && other_seq < op_seq))
            });
            if blocked {
                continue;
            }
            match &op.kind {
                OpKind::Write(v) => {
                    stack.push((mask | bit, Some(v.clone())));
                }
                OpKind::Read(v) => {
                    if *v == state {
                        stack.push((mask | bit, state.clone()));
                    }
                }
            }
        }
    }

    if exit_states.is_empty() {
        // Build a small diagnosis: find a read value with no matching write.
        let mut detail = String::from("no valid linearization order exists");
        for (_, op) in window {
            if let OpKind::Read(Some(v)) = &op.kind {
                let written = window
                    .iter()
                    .any(|(_, o)| matches!(&o.kind, OpKind::Write(w) if w == v));
                let carried = entry_states.contains(&Some(v.clone()));
                if !written && !carried {
                    detail = "a read returned a value never written".into();
                    break;
                }
            }
        }
        Err(detail)
    } else {
        Ok(exit_states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awr_sim::Time;

    fn w(client: usize, v: u64, i: u64, r: u64) -> HistOp<u64> {
        HistOp {
            client,
            obj: ObjectId::DEFAULT,
            kind: OpKind::Write(v),
            invoke: Time(i),
            response: Time(r),
        }
    }

    fn rd(client: usize, v: Option<u64>, i: u64, r: u64) -> HistOp<u64> {
        HistOp {
            client,
            obj: ObjectId::DEFAULT,
            kind: OpKind::Read(v),
            invoke: Time(i),
            response: Time(r),
        }
    }

    fn hist(ops: Vec<HistOp<u64>>) -> History<u64> {
        History { ops }
    }

    #[test]
    fn empty_history_ok() {
        assert!(check_linearizable::<u64>(&History::new()).is_ok());
    }

    #[test]
    fn sequential_ok() {
        let h = hist(vec![
            w(0, 1, 0, 10),
            rd(1, Some(1), 20, 30),
            w(0, 2, 40, 50),
            rd(1, Some(2), 60, 70),
        ]);
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn initial_read_none_ok() {
        let h = hist(vec![rd(0, None, 0, 5), w(1, 1, 10, 20)]);
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn stale_read_after_write_fails() {
        // Read strictly after write(2) returns the older 1.
        let h = hist(vec![
            w(0, 1, 0, 10),
            w(0, 2, 20, 30),
            rd(1, Some(1), 40, 50),
        ]);
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn concurrent_write_either_order_ok() {
        // Two concurrent writes; readers may see either order, but
        // consistently.
        let h = hist(vec![
            w(0, 1, 0, 100),
            w(1, 2, 0, 100),
            rd(2, Some(1), 150, 160),
        ]);
        assert!(check_linearizable(&h).is_ok());
        let h2 = hist(vec![
            w(0, 1, 0, 100),
            w(1, 2, 0, 100),
            rd(2, Some(2), 150, 160),
        ]);
        assert!(check_linearizable(&h2).is_ok());
    }

    #[test]
    fn new_old_inversion_fails() {
        // Definition 6's forbidden pattern: r1 before r2, r1 sees the newer
        // value, r2 the older one.
        let h = hist(vec![
            w(0, 1, 0, 10),
            w(0, 2, 20, 30),
            rd(1, Some(2), 40, 50),
            rd(2, Some(1), 60, 70),
        ]);
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn same_instant_session_order_inversion_fails() {
        // The simulator invokes a client's next op at the exact instant the
        // previous one responded, so real-time intervals alone cannot order
        // them — session order must. Client 1's back-to-back reads at one
        // instant return new-then-old: not linearizable.
        let h = hist(vec![
            w(0, 1, 0, 10),
            w(0, 2, 10, 10),
            rd(1, Some(2), 10, 10),
            rd(1, Some(1), 10, 10),
        ]);
        assert!(check_linearizable(&h).is_err());
        // The same values the other way round linearize fine.
        let ok = hist(vec![
            w(0, 1, 0, 10),
            w(0, 2, 10, 10),
            rd(1, Some(1), 10, 10),
            rd(1, Some(2), 10, 10),
        ]);
        assert!(check_linearizable(&ok).is_ok());
    }

    #[test]
    fn read_concurrent_with_write_sees_either() {
        let h = hist(vec![
            w(0, 1, 0, 10),
            w(0, 2, 20, 60),
            rd(1, Some(1), 30, 40),
        ]);
        assert!(check_linearizable(&h).is_ok());
        let h2 = hist(vec![
            w(0, 1, 0, 10),
            w(0, 2, 20, 60),
            rd(1, Some(2), 30, 40),
        ]);
        assert!(check_linearizable(&h2).is_ok());
    }

    #[test]
    fn value_never_written_fails_with_diagnosis() {
        let h = hist(vec![w(0, 1, 0, 10), rd(1, Some(9), 20, 30)]);
        let err = check_linearizable(&h).unwrap_err();
        assert!(err.detail.contains("never written"), "{err}");
    }

    #[test]
    fn state_threads_across_quiescent_cut() {
        // Window 1 ends with ambiguous state {1, 2}; window 2's read of 2
        // must still be accepted, and a subsequent read of 1 rejected.
        let h = hist(vec![
            w(0, 1, 0, 100),
            w(1, 2, 0, 100),
            rd(2, Some(2), 200, 210),
            rd(2, Some(1), 220, 230),
        ]);
        assert!(check_linearizable(&h).is_err());
        let ok = hist(vec![
            w(0, 1, 0, 100),
            w(1, 2, 0, 100),
            rd(2, Some(2), 200, 210),
            rd(2, Some(2), 220, 230),
        ]);
        assert!(check_linearizable(&ok).is_ok());
    }

    #[test]
    fn long_sequential_history_is_fast() {
        // 2000 strictly sequential ops: partitioning keeps this linear.
        let mut ops = Vec::new();
        for i in 0..1000u64 {
            ops.push(w(0, i, i * 20, i * 20 + 5));
            ops.push(rd(1, Some(i), i * 20 + 10, i * 20 + 15));
        }
        assert!(check_linearizable(&hist(ops)).is_ok());
    }

    #[test]
    fn keyed_checker_partitions_per_object() {
        // As ONE register this history is broken: read(1) strictly follows
        // write(9). As two independent objects it is perfectly fine.
        let mut other_w = w(2, 9, 12, 18);
        other_w.obj = ObjectId(5);
        let mut other_r = rd(3, Some(9), 40, 50);
        other_r.obj = ObjectId(5);
        let h = hist(vec![
            w(0, 1, 0, 10),
            other_w,
            rd(1, Some(1), 20, 30),
            other_r,
        ]);
        assert!(check_linearizable(&h).is_err());
        assert!(check_linearizable_keyed(&h).is_ok());
    }

    #[test]
    fn keyed_error_names_the_broken_object() {
        let mut bad = rd(1, Some(77), 20, 30);
        bad.obj = ObjectId(9);
        let h = hist(vec![w(0, 1, 0, 10), rd(1, Some(1), 20, 30), bad]);
        let err = check_linearizable_keyed(&h).unwrap_err();
        assert_eq!(err.obj, ObjectId(9));
        assert!(err.to_string().contains("o9"), "{err}");
    }

    #[test]
    fn error_surfaces_failing_window_ops() {
        let mut bad = rd(1, Some(77), 20, 30);
        bad.obj = ObjectId(9);
        let h = hist(vec![w(0, 1, 0, 10), rd(1, Some(1), 20, 30), bad]);
        let err = check_linearizable_keyed(&h).unwrap_err();
        let (obj, window, ops) = err.failing_window();
        assert_eq!(obj, ObjectId(9));
        assert_eq!(window, (0, 1));
        assert_eq!(ops, ["c1 read -> 77 @[20, 30]"]);
        let rendered = err.to_string();
        assert!(rendered.contains("read -> 77"), "{rendered}");
    }

    #[test]
    fn keyed_agrees_with_plain_on_single_object_histories() {
        let ok = hist(vec![w(0, 1, 0, 10), rd(1, Some(1), 20, 30)]);
        assert_eq!(
            check_linearizable_keyed(&ok).is_ok(),
            check_linearizable(&ok).is_ok()
        );
        let bad = hist(vec![
            w(0, 1, 0, 10),
            w(0, 2, 20, 30),
            rd(1, Some(1), 40, 50),
        ]);
        assert!(check_linearizable(&bad).is_err());
        let err = check_linearizable_keyed(&bad).unwrap_err();
        assert_eq!(err.inner, check_linearizable(&bad).unwrap_err());
    }

    #[test]
    fn overlapping_reads_with_concurrent_writes() {
        // A torture window: 3 writers, 3 readers all overlapping.
        let h = hist(vec![
            w(0, 1, 0, 50),
            w(1, 2, 10, 60),
            w(2, 3, 20, 70),
            rd(3, Some(1), 5, 55),
            rd(4, Some(3), 30, 80),
            rd(5, Some(3), 90, 95),
        ]);
        assert!(check_linearizable(&h).is_ok());
    }
}
