//! Operation histories for correctness checking.
//!
//! Harnesses record every completed `read`/`write` with its invocation and
//! response times; the linearizability checker consumes the history.

use std::collections::BTreeMap;

use awr_sim::Time;
use awr_types::ObjectId;

/// What an operation did.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpKind<V> {
    /// A read returning the given value (`None` = initial/unwritten).
    Read(Option<V>),
    /// A write of the given value.
    Write(V),
}

/// One completed operation in a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistOp<V> {
    /// The invoking process (harness-level client index).
    pub client: usize,
    /// The object (keyed register) the operation targeted.
    pub obj: ObjectId,
    /// Read or write, with the observed/written value.
    pub kind: OpKind<V>,
    /// Invocation time.
    pub invoke: Time,
    /// Response time.
    pub response: Time,
}

impl<V> HistOp<V> {
    /// `true` if this op finished strictly before `other` began
    /// (the real-time precedence relation of Definition 6).
    pub fn precedes(&self, other: &HistOp<V>) -> bool {
        self.response < other.invoke
    }
}

/// A recorded history.
#[derive(Clone, Debug, Default)]
pub struct History<V> {
    /// Completed operations (any order; the checker sorts).
    pub ops: Vec<HistOp<V>>,
}

impl<V: Clone> History<V> {
    /// Creates an empty history.
    pub fn new() -> History<V> {
        History { ops: Vec::new() }
    }

    /// Adds a completed operation.
    pub fn record(&mut self, op: HistOp<V>) {
        debug_assert!(op.invoke <= op.response, "response before invocation");
        self.ops.push(op);
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Splits the history into independent per-object histories.
    ///
    /// Objects are separate registers: an atomicity violation can only ever
    /// involve operations on one object, so the per-object parts can be
    /// checked independently (and in sum far more cheaply than the whole —
    /// concurrency windows that straddle objects never entangle).
    pub fn partition_by_object(&self) -> BTreeMap<ObjectId, History<V>> {
        let mut parts: BTreeMap<ObjectId, History<V>> = BTreeMap::new();
        for op in &self.ops {
            parts
                .entry(op.obj)
                .or_insert_with(History::new)
                .ops
                .push(op.clone());
        }
        parts
    }

    /// The distinct objects the history touches, in key order.
    pub fn objects(&self) -> Vec<ObjectId> {
        self.partition_by_object().into_keys().collect()
    }

    /// Per-object `(completed ops, mean latency in virtual ms)` — the
    /// latency side of the per-object metrics (the byte side lives in
    /// `awr_sim::Metrics::bytes_by_object`).
    pub fn per_object_latency(&self) -> BTreeMap<ObjectId, (usize, f64)> {
        self.partition_by_object()
            .into_iter()
            .map(|(obj, part)| {
                let total_ms: f64 = part
                    .ops
                    .iter()
                    .map(|o| (o.response - o.invoke) as f64 / 1e6)
                    .sum();
                let n = part.len();
                (obj, (n, if n == 0 { 0.0 } else { total_ms / n as f64 }))
            })
            .collect()
    }

    /// The maximum number of mutually concurrent operations — a cheap
    /// tractability proxy for the checker.
    pub fn max_concurrency(&self) -> usize {
        let mut events: Vec<(Time, i64)> = Vec::with_capacity(self.ops.len() * 2);
        for op in &self.ops {
            events.push((op.invoke, 1));
            events.push((op.response + 1, -1)); // +1: closed intervals overlap at equal times
        }
        events.sort();
        let mut cur = 0i64;
        let mut max = 0i64;
        for (_, d) in events {
            cur += d;
            max = max.max(cur);
        }
        max as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(client: usize, kind: OpKind<u64>, i: u64, r: u64) -> HistOp<u64> {
        HistOp {
            client,
            obj: ObjectId::DEFAULT,
            kind,
            invoke: Time(i),
            response: Time(r),
        }
    }

    #[test]
    fn precedence() {
        let a = op(0, OpKind::Write(1), 0, 10);
        let b = op(1, OpKind::Read(Some(1)), 11, 20);
        let c = op(2, OpKind::Read(Some(1)), 5, 30);
        assert!(a.precedes(&b));
        assert!(!a.precedes(&c)); // overlapping
        assert!(!b.precedes(&a));
    }

    #[test]
    fn concurrency_measure() {
        let mut h = History::new();
        h.record(op(0, OpKind::Write(1), 0, 10));
        h.record(op(1, OpKind::Write(2), 5, 15));
        h.record(op(2, OpKind::Write(3), 12, 20));
        assert_eq!(h.max_concurrency(), 2);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn partition_splits_per_object() {
        let mut h = History::new();
        h.record(op(0, OpKind::Write(1), 0, 10));
        let mut keyed = op(1, OpKind::Write(2), 5, 15);
        keyed.obj = ObjectId(3);
        h.record(keyed);
        h.record(op(1, OpKind::Read(Some(1)), 20, 30));
        let parts = h.partition_by_object();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[&ObjectId::DEFAULT].len(), 2);
        assert_eq!(parts[&ObjectId(3)].len(), 1);
        assert_eq!(h.objects(), vec![ObjectId::DEFAULT, ObjectId(3)]);
    }
}
