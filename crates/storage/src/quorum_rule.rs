//! Quorum predicates used by the ABD variants.

use std::collections::BTreeSet;

use awr_types::{Ratio, ServerId, WeightMap};

/// How a client decides that a set of responders forms a quorum.
#[derive(Clone, Debug)]
pub enum QuorumRule {
    /// Plain majority: at least `threshold` distinct servers
    /// (`⌊n/2⌋ + 1` for classic ABD).
    Count {
        /// Minimum number of distinct responders.
        threshold: usize,
    },
    /// Weighted majority with *static* weights: responders' total weight
    /// must strictly exceed `threshold_total / 2`.
    Weighted {
        /// The fixed weight vector.
        weights: WeightMap,
        /// The total against which quorums are judged.
        threshold_total: Ratio,
    },
}

impl QuorumRule {
    /// The classic majority rule for `n` servers.
    pub fn majority(n: usize) -> QuorumRule {
        QuorumRule::Count {
            threshold: n / 2 + 1,
        }
    }

    /// A static weighted-majority rule.
    pub fn weighted(weights: WeightMap) -> QuorumRule {
        let total = weights.total();
        QuorumRule::Weighted {
            weights,
            threshold_total: total,
        }
    }

    /// Evaluates the predicate.
    pub fn is_quorum(&self, responders: &BTreeSet<ServerId>) -> bool {
        match self {
            QuorumRule::Count { threshold } => responders.len() >= *threshold,
            QuorumRule::Weighted {
                weights,
                threshold_total,
            } => {
                let sum: Ratio = responders
                    .iter()
                    .filter(|s| s.index() < weights.len())
                    .map(|s| weights.weight(*s))
                    .sum();
                sum > threshold_total.half()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<ServerId> {
        ids.iter().map(|&i| ServerId(i)).collect()
    }

    #[test]
    fn majority_rule() {
        let q = QuorumRule::majority(5);
        assert!(!q.is_quorum(&set(&[0, 1])));
        assert!(q.is_quorum(&set(&[0, 1, 2])));
    }

    #[test]
    fn weighted_rule() {
        let q = QuorumRule::weighted(WeightMap::dec(&["2", "2", "1", "1", "1"]));
        assert!(q.is_quorum(&set(&[0, 1]))); // 4 > 3.5
        assert!(!q.is_quorum(&set(&[2, 3, 4]))); // 3 < 3.5
    }

    #[test]
    fn weighted_strictness() {
        let q = QuorumRule::weighted(WeightMap::dec(&["1", "1"]));
        assert!(!q.is_quorum(&set(&[0]))); // 1 == 2/2, not strict
        assert!(q.is_quorum(&set(&[0, 1])));
    }
}
