//! Random workload generation for storage experiments.
//!
//! Drives a [`crate::StorageHarness`] (or the static ABD world) with a
//! closed-loop mix of reads, writes, and transfers, then hands back the
//! recorded history for checking.

use awr_types::{Ratio, ServerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::harness::StorageHarness;

/// Parameters of a random mixed workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Scheduling rounds.
    pub rounds: usize,
    /// Virtual nanoseconds the world advances between rounds.
    pub round_ns: u64,
    /// Probability (0..100) that an idle client starts an op each round.
    pub op_percent: u32,
    /// Probability (0..100) that an op is a write (else read).
    pub write_percent: u32,
    /// Probability (0..100) that a random transfer is attempted each round.
    pub transfer_percent: u32,
    /// The Δ used for random transfers.
    pub transfer_delta: Ratio,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            rounds: 20,
            round_ns: 150_000,
            op_percent: 60,
            write_percent: 50,
            transfer_percent: 30,
            transfer_delta: Ratio::new(1, 20),
        }
    }
}

/// Statistics of a completed workload run.
#[derive(Clone, Debug, Default)]
pub struct WorkloadStats {
    /// Completed reads.
    pub reads: usize,
    /// Completed writes.
    pub writes: usize,
    /// Transfers attempted (accepted invocations).
    pub transfers_attempted: usize,
    /// Mean operation latency (virtual ms).
    pub mean_latency_ms: f64,
    /// Total stale-set restarts across completed ops.
    pub restarts: u64,
}

/// Runs `spec` against the harness with `n_clients` closed-loop clients,
/// writing distinct `u64` values. Returns run statistics; the history stays
/// in the harness for checking.
pub fn run_mixed_workload(
    h: &mut StorageHarness<u64>,
    n_clients: usize,
    spec: &WorkloadSpec,
    seed: u64,
) -> WorkloadStats {
    run_workload_with_hook(h, n_clients, spec, seed, |_, _| {})
}

/// The shared closed-loop workload engine: client ops and random transfers
/// per `spec`, with `per_round(harness, round)` called after each round's
/// stimuli are issued and before the world advances — the hook
/// `placement::run_adaptive_workload` uses to tick a placement driver.
pub(crate) fn run_workload_with_hook(
    h: &mut StorageHarness<u64>,
    n_clients: usize,
    spec: &WorkloadSpec,
    seed: u64,
    mut per_round: impl FnMut(&mut StorageHarness<u64>, usize),
) -> WorkloadStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = h.config().n;
    let mut next_val = 1u64;
    let mut stats = WorkloadStats::default();
    for round in 0..spec.rounds {
        for k in 0..n_clients {
            if !h.client_busy(k) && rng.random_range(0..100) < spec.op_percent {
                if rng.random_range(0..100) < spec.write_percent {
                    h.begin_async(k, Some(next_val));
                    next_val += 1;
                } else {
                    h.begin_async(k, None);
                }
            }
        }
        if rng.random_range(0..100) < spec.transfer_percent {
            let from = ServerId(rng.random_range(0..n as u32));
            let to = ServerId(rng.random_range(0..n as u32));
            if from != to && h.transfer_async(from, to, spec.transfer_delta).is_ok() {
                stats.transfers_attempted += 1;
            }
        }
        per_round(h, round);
        h.world.run_for(spec.round_ns);
    }
    h.settle();
    let hist = h.history();
    let mut total_ms = 0.0;
    for op in &hist.ops {
        match op.kind {
            crate::history::OpKind::Read(_) => stats.reads += 1,
            crate::history::OpKind::Write(_) => stats.writes += 1,
        }
        total_ms += (op.response - op.invoke) as f64 / 1e6;
    }
    if !hist.is_empty() {
        stats.mean_latency_ms = total_ms / hist.len() as f64;
    }
    stats.restarts = h.total_restarts();
    stats
}

/// Unique-value generator helper for open-coded workloads.
pub fn distinct_values(start: u64) -> impl FnMut() -> u64 {
    let mut next = start;
    move || {
        let v = next;
        next += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynOptions;
    use crate::lin::check_linearizable;
    use awr_core::RpConfig;
    use awr_sim::UniformLatency;

    #[test]
    fn mixed_workload_completes_and_checks() {
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(5, 1),
            3,
            11,
            UniformLatency::new(1_000, 40_000),
            DynOptions::default(),
        );
        let stats = run_mixed_workload(&mut h, 3, &WorkloadSpec::default(), 11);
        assert!(stats.reads + stats.writes > 5);
        assert!(stats.mean_latency_ms > 0.0);
        check_linearizable(&h.history()).unwrap();
    }

    #[test]
    fn distinct_values_distinct() {
        let mut g = distinct_values(5);
        assert_eq!(g(), 5);
        assert_eq!(g(), 6);
    }
}
