//! Random workload generation for storage experiments.
//!
//! Drives a [`crate::StorageHarness`] (or the static ABD world) with a
//! closed-loop mix of reads, writes, and transfers, then hands back the
//! recorded history for checking. Keyed workloads
//! ([`run_keyed_workload`]) additionally spread the operations over a
//! multi-object key space, uniformly or with the Zipfian skew real
//! key-value traffic exhibits ([`KeyDistribution`]).

use std::collections::BTreeMap;

use awr_types::{ObjectId, Ratio, ServerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::harness::StorageHarness;
use crate::history::History;

/// Parameters of a random mixed workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Scheduling rounds.
    pub rounds: usize,
    /// Virtual nanoseconds the world advances between rounds.
    pub round_ns: u64,
    /// Probability (0..100) that an idle client starts an op each round.
    pub op_percent: u32,
    /// Probability (0..100) that an op is a write (else read).
    pub write_percent: u32,
    /// Probability (0..100) that a random transfer is attempted each round.
    pub transfer_percent: u32,
    /// The Δ used for random transfers.
    pub transfer_delta: Ratio,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            rounds: 20,
            round_ns: 150_000,
            op_percent: 60,
            write_percent: 50,
            transfer_percent: 30,
            transfer_delta: Ratio::new(1, 20),
        }
    }
}

/// Statistics of a completed workload run.
#[derive(Clone, Debug, Default)]
pub struct WorkloadStats {
    /// Completed reads.
    pub reads: usize,
    /// Completed writes.
    pub writes: usize,
    /// Transfers attempted (accepted invocations).
    pub transfers_attempted: usize,
    /// Mean operation latency (virtual ms).
    pub mean_latency_ms: f64,
    /// Total stale-set restarts across completed ops.
    pub restarts: u64,
}

/// Runs `spec` against the harness with `n_clients` closed-loop clients,
/// writing distinct `u64` values. Returns run statistics; the history stays
/// in the harness for checking.
pub fn run_mixed_workload(
    h: &mut StorageHarness<u64>,
    n_clients: usize,
    spec: &WorkloadSpec,
    seed: u64,
) -> WorkloadStats {
    run_workload_with_hook(h, n_clients, spec, seed, |_, _| {})
}

/// The shared closed-loop workload engine: client ops and random transfers
/// per `spec`, with `per_round(harness, round)` called after each round's
/// stimuli are issued and before the world advances — the hook
/// `placement::run_adaptive_workload` uses to tick a placement driver.
pub(crate) fn run_workload_with_hook(
    h: &mut StorageHarness<u64>,
    n_clients: usize,
    spec: &WorkloadSpec,
    seed: u64,
    per_round: impl FnMut(&mut StorageHarness<u64>, usize),
) -> WorkloadStats {
    run_workload_engine(h, n_clients, spec, seed, None, per_round).0
}

/// The engine behind every workload shape. `sampler == None` is the
/// single-object workload (the RNG draw sequence is pinned by
/// `tests/single_object_replay.rs` — do not reorder the draws); a sampler
/// adds exactly one key draw per issued op. Statistics and the returned
/// history cover only the operations *this call* completed (the engine may
/// be invoked repeatedly on one harness), and written values continue
/// strictly above anything already in the history, keeping them globally
/// distinct across calls — both of which the per-key linearizability check
/// relies on.
fn run_workload_engine(
    h: &mut StorageHarness<u64>,
    n_clients: usize,
    spec: &WorkloadSpec,
    seed: u64,
    sampler: Option<&KeySampler>,
    mut per_round: impl FnMut(&mut StorageHarness<u64>, usize),
) -> (WorkloadStats, History<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = h.config().n;
    let prior = h.history();
    let mut next_val = prior
        .ops
        .iter()
        .filter_map(|o| match &o.kind {
            crate::history::OpKind::Write(v) => Some(*v),
            crate::history::OpKind::Read(_) => None,
        })
        .max()
        .map_or(1, |m| m + 1);
    // Per-client completed-op counts before this call: client histories
    // are append-only, so these index the start of this call's window.
    // Sized to cover every client the harness has recorded, not just the
    // ones this workload drives.
    let width = prior
        .ops
        .iter()
        .map(|o| o.client + 1)
        .max()
        .unwrap_or(0)
        .max(n_clients);
    let mut prior_per_client = vec![0usize; width];
    for op in &prior.ops {
        prior_per_client[op.client] += 1;
    }
    let restarts_before = h.total_restarts();
    let mut stats = WorkloadStats::default();
    for round in 0..spec.rounds {
        for k in 0..n_clients {
            if !h.client_busy(k) && rng.random_range(0..100) < spec.op_percent {
                let obj = match sampler {
                    Some(s) => s.sample(&mut rng),
                    None => ObjectId::DEFAULT,
                };
                if rng.random_range(0..100) < spec.write_percent {
                    h.begin_async_obj(k, obj, Some(next_val));
                    next_val += 1;
                } else {
                    h.begin_async_obj(k, obj, None);
                }
            }
        }
        if rng.random_range(0..100) < spec.transfer_percent {
            let from = ServerId(rng.random_range(0..n as u32));
            let to = ServerId(rng.random_range(0..n as u32));
            if from != to && h.transfer_async(from, to, spec.transfer_delta).is_ok() {
                stats.transfers_attempted += 1;
            }
        }
        per_round(h, round);
        h.world.run_for(spec.round_ns);
    }
    h.settle();
    // Window the statistics to this call's ops: each client's first
    // `prior_per_client` records predate this call and are skipped.
    let mut seen = vec![0usize; prior_per_client.len()];
    let mut hist = History::new();
    for op in h.history().ops {
        if op.client < seen.len() {
            seen[op.client] += 1;
            if seen[op.client] <= prior_per_client[op.client] {
                continue;
            }
        }
        hist.record(op);
    }
    let mut total_ms = 0.0;
    for op in &hist.ops {
        match op.kind {
            crate::history::OpKind::Read(_) => stats.reads += 1,
            crate::history::OpKind::Write(_) => stats.writes += 1,
        }
        total_ms += (op.response - op.invoke) as f64 / 1e6;
    }
    if !hist.is_empty() {
        stats.mean_latency_ms = total_ms / hist.len() as f64;
    }
    stats.restarts = h.total_restarts() - restarts_before;
    (stats, hist)
}

/// How a keyed workload draws its object keys.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDistribution {
    /// Every object equally likely.
    Uniform,
    /// Zipf's law: object rank `k` (1-based) drawn with probability
    /// ∝ `1 / k^exponent`. Exponent 0 degenerates to uniform; ~1 is the
    /// classic web/key-value skew (a few hot keys, a long cold tail).
    Zipfian {
        /// The skew exponent `s ≥ 0`.
        exponent: f64,
    },
}

/// A seeded key sampler over a dense key space `o0..o(n-1)`: a precomputed
/// cumulative distribution, sampled in O(log n) by binary search.
///
/// # Examples
///
/// ```
/// use awr_storage::workload::{KeyDistribution, KeySampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let sampler = KeySampler::new(100, KeyDistribution::Zipfian { exponent: 1.0 });
/// let mut rng = StdRng::seed_from_u64(7);
/// let hot = (0..1_000).filter(|_| sampler.sample(&mut rng).key() == 0).count();
/// assert!(hot > 100, "rank-1 key should be hot under zipf(1), got {hot}");
/// ```
#[derive(Clone, Debug)]
pub struct KeySampler {
    /// Normalized cumulative weights; `cum[k]` = P(key ≤ k).
    cum: Vec<f64>,
}

impl KeySampler {
    /// Builds the sampler for `n_objects` keys under `dist`.
    ///
    /// # Panics
    ///
    /// Panics if `n_objects` is zero or a Zipfian exponent is negative.
    pub fn new(n_objects: usize, dist: KeyDistribution) -> KeySampler {
        assert!(n_objects > 0, "key space must be non-empty");
        let weights: Vec<f64> = match dist {
            KeyDistribution::Uniform => vec![1.0; n_objects],
            KeyDistribution::Zipfian { exponent } => {
                assert!(exponent >= 0.0, "zipf exponent must be non-negative");
                (1..=n_objects)
                    .map(|k| 1.0 / (k as f64).powf(exponent))
                    .collect()
            }
        };
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cum = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        KeySampler { cum }
    }

    /// Number of keys in the space.
    pub fn n_objects(&self) -> usize {
        self.cum.len()
    }

    /// Draws one key.
    pub fn sample(&self, rng: &mut StdRng) -> ObjectId {
        let u = rng.random_range(0.0f64..1.0);
        let k = self.cum.partition_point(|&c| c <= u);
        ObjectId(k.min(self.cum.len() - 1) as u64)
    }
}

/// Parameters of a keyed random workload: the base closed-loop mix of
/// [`WorkloadSpec`], spread over `n_objects` keys drawn from `dist`.
#[derive(Clone, Debug)]
pub struct KeyedWorkloadSpec {
    /// The op/transfer mix and pacing.
    pub base: WorkloadSpec,
    /// Size of the key space.
    pub n_objects: usize,
    /// How keys are drawn per operation.
    pub dist: KeyDistribution,
}

impl Default for KeyedWorkloadSpec {
    fn default() -> KeyedWorkloadSpec {
        KeyedWorkloadSpec {
            base: WorkloadSpec::default(),
            n_objects: 16,
            dist: KeyDistribution::Zipfian { exponent: 1.0 },
        }
    }
}

/// Statistics of a completed keyed workload run.
#[derive(Clone, Debug, Default)]
pub struct KeyedWorkloadStats {
    /// The object-oblivious statistics of the run.
    pub totals: WorkloadStats,
    /// Per-object `(completed ops, mean latency in virtual ms)`.
    pub per_object: BTreeMap<ObjectId, (usize, f64)>,
}

impl KeyedWorkloadStats {
    /// Number of distinct objects that completed at least one op.
    pub fn objects_touched(&self) -> usize {
        self.per_object.len()
    }

    /// The hottest object and its op count, if any op completed.
    pub fn hottest(&self) -> Option<(ObjectId, usize)> {
        self.per_object
            .iter()
            .max_by_key(|&(obj, &(n, _))| (n, std::cmp::Reverse(*obj)))
            .map(|(&o, &(n, _))| (o, n))
    }
}

/// Runs `spec` against the harness with `n_clients` closed-loop clients:
/// the same mix as [`run_mixed_workload`], but each operation targets a key
/// drawn from `spec.dist` — all keys served by the one shared weighted
/// configuration, so the spec's random transfers re-weight every object at
/// once. Statistics cover only the ops this call completed, and written
/// values stay globally distinct across repeated calls on one harness,
/// keeping the combined per-key history checkable; the history stays in
/// the harness.
pub fn run_keyed_workload(
    h: &mut StorageHarness<u64>,
    n_clients: usize,
    spec: &KeyedWorkloadSpec,
    seed: u64,
) -> KeyedWorkloadStats {
    let sampler = KeySampler::new(spec.n_objects, spec.dist);
    let (totals, hist) =
        run_workload_engine(h, n_clients, &spec.base, seed, Some(&sampler), |_, _| {});
    KeyedWorkloadStats {
        totals,
        per_object: hist.per_object_latency(),
    }
}

/// Unique-value generator helper for open-coded workloads.
pub fn distinct_values(start: u64) -> impl FnMut() -> u64 {
    let mut next = start;
    move || {
        let v = next;
        next += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynOptions;
    use crate::lin::check_linearizable;
    use awr_core::RpConfig;
    use awr_sim::UniformLatency;

    #[test]
    fn mixed_workload_completes_and_checks() {
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(5, 1),
            3,
            11,
            UniformLatency::new(1_000, 40_000),
            DynOptions::default(),
        );
        let stats = run_mixed_workload(&mut h, 3, &WorkloadSpec::default(), 11);
        assert!(stats.reads + stats.writes > 5);
        assert!(stats.mean_latency_ms > 0.0);
        check_linearizable(&h.history()).unwrap();
    }

    #[test]
    fn distinct_values_distinct() {
        let mut g = distinct_values(5);
        assert_eq!(g(), 5);
        assert_eq!(g(), 6);
    }

    #[test]
    fn zipf_sampler_is_rank_monotone() {
        use awr_types::ObjectId;
        let sampler = KeySampler::new(50, KeyDistribution::Zipfian { exponent: 1.2 });
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng).key() as usize] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[40]);
        assert!(
            counts[0] > 3_000,
            "rank 1 should dominate, got {}",
            counts[0]
        );
        // Uniform: no key dominates.
        let uni = KeySampler::new(50, KeyDistribution::Uniform);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[uni.sample(&mut rng).key() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 200 && c < 800), "{counts:?}");
        assert_eq!(uni.n_objects(), 50);
        // Zipf(0) degenerates to uniform weights; samples stay in range.
        let z0 = KeySampler::new(4, KeyDistribution::Zipfian { exponent: 0.0 });
        for _ in 0..100 {
            assert!(z0.sample(&mut rng) < ObjectId(4));
        }
    }

    #[test]
    fn keyed_workload_is_per_key_linearizable() {
        use crate::lin::{check_linearizable, check_linearizable_keyed};
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(5, 1),
            3,
            17,
            UniformLatency::new(1_000, 40_000),
            DynOptions::default(),
        );
        let spec = KeyedWorkloadSpec {
            n_objects: 8,
            ..KeyedWorkloadSpec::default()
        };
        let stats = run_keyed_workload(&mut h, 3, &spec, 17);
        assert!(stats.totals.reads + stats.totals.writes > 5);
        assert!(stats.objects_touched() > 1, "workload never spread keys");
        check_linearizable_keyed(&h.history()).unwrap();
        // The per-object latency table matches the history totals.
        let ops: usize = stats.per_object.values().map(|(n, _)| n).sum();
        assert_eq!(ops, stats.totals.reads + stats.totals.writes);
        let (hot, hot_ops) = stats.hottest().unwrap();
        assert!(hot_ops >= 1);
        assert!(stats.per_object.contains_key(&hot));
        // Sanity: this mixed history is NOT a single register's history
        // (the whole-history checker is the wrong predicate here) unless
        // the run happened to stay on one key.
        if stats.objects_touched() > 1 {
            let _ = check_linearizable(&h.history());
        }
        // A second run on the SAME harness: stats must cover only the new
        // ops, written values must stay globally distinct (the combined
        // per-key history still checks), and the harness history grows by
        // exactly the second window.
        let total_before = h.history().len();
        let stats2 = run_keyed_workload(&mut h, 3, &spec, 18);
        let window2: usize = stats2.per_object.values().map(|(n, _)| n).sum();
        assert_eq!(window2, stats2.totals.reads + stats2.totals.writes);
        assert_eq!(h.history().len(), total_before + window2);
        check_linearizable_keyed(&h.history()).unwrap();
        let writes: Vec<u64> = h
            .history()
            .ops
            .iter()
            .filter_map(|o| match &o.kind {
                crate::history::OpKind::Write(v) => Some(*v),
                crate::history::OpKind::Read(_) => None,
            })
            .collect();
        let mut dedup = writes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), writes.len(), "duplicate write values");
    }
}
