//! Classic multi-writer ABD atomic storage over a *static* quorum rule —
//! the MQS and static-WMQS baselines the dynamic-weighted storage is
//! compared against (experiment E7).
//!
//! The client runs the two-phase protocol of Algorithm 5 minus the change
//! sets; the server is Algorithm 6 minus the change sets. Like the dynamic
//! engine, servers host a keyed register *map* ([`ObjectId`]) under one
//! quorum rule; the single-object entry points operate on
//! [`ObjectId::DEFAULT`].

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

use awr_epoch::CheckpointCadence;
use awr_sim::{Actor, ActorId, Context, Message, Time};
use awr_types::{ChangeSet, ObjectId, ProcessId, ServerId, Tag, TaggedValue};

use crate::durable::{Snapshot, StorageHandle, WalRecord};
use crate::dynamic::ReadMode;
use crate::history::{HistOp, OpKind};
use crate::quorum_rule::QuorumRule;

/// Values stored in registers.
pub trait Value: Clone + Eq + std::hash::Hash + fmt::Debug + Send + 'static {}
impl<T: Clone + Eq + std::hash::Hash + fmt::Debug + Send + 'static> Value for T {}

/// Wire messages of static ABD.
#[derive(Clone, Debug)]
pub enum AbdMsg<V> {
    /// Phase-1 request (`⟨R, obj, opCnt⟩`).
    R {
        /// Client-local operation counter.
        op: u64,
        /// The object being read or written.
        obj: ObjectId,
    },
    /// Phase-1 reply (`⟨R_A, obj, reg, opCnt⟩`).
    RAck {
        /// Echo of the request counter.
        op: u64,
        /// Echo of the object key.
        obj: ObjectId,
        /// The server's register content for that object.
        reg: TaggedValue<V>,
    },
    /// Phase-2 request (`⟨W, obj, ⟨tag, val⟩, opCnt⟩`).
    W {
        /// Client-local operation counter.
        op: u64,
        /// The object being written back.
        obj: ObjectId,
        /// The tagged value to store.
        reg: TaggedValue<V>,
    },
    /// Phase-2 reply (`⟨W_A, obj, opCnt⟩`).
    WAck {
        /// Echo of the request counter.
        op: u64,
        /// Echo of the object key.
        obj: ObjectId,
    },
}

impl<V: Value> Message for AbdMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            AbdMsg::R { .. } => "R",
            AbdMsg::RAck { .. } => "R_A",
            AbdMsg::W { .. } => "W",
            AbdMsg::WAck { .. } => "W_A",
        }
    }

    fn object_key(&self) -> Option<u64> {
        match self {
            AbdMsg::R { obj, .. }
            | AbdMsg::RAck { obj, .. }
            | AbdMsg::W { obj, .. }
            | AbdMsg::WAck { obj, .. } => Some(obj.key()),
        }
    }
}

/// A static-ABD server: stores a sparse map of tagged registers, one per
/// object (absent = bottom). Optionally durable: with a
/// [`StorageHandle`] attached, every adopted register is WAL-logged (and
/// folded into a snapshot on the configured cadence), and
/// [`AbdServer::recover`] rebuilds a crashed server from that state. The
/// static protocol has no change set, so its WAL carries
/// [`WalRecord::Register`] entries only.
#[derive(Debug)]
pub struct AbdServer<V> {
    registers: BTreeMap<ObjectId, TaggedValue<V>>,
    storage: Option<StorageHandle<V>>,
    checkpoint: Option<CheckpointCadence>,
}

impl<V: Value> AbdServer<V> {
    /// Creates an empty server.
    pub fn new() -> AbdServer<V> {
        AbdServer {
            registers: BTreeMap::new(),
            storage: None,
            checkpoint: None,
        }
    }

    /// Creates an empty *durable* server: adopted registers are appended
    /// to `storage`'s WAL and snapshotted on the `checkpoint` cadence
    /// (`None` = WAL only, never snapshot).
    pub fn with_storage(
        storage: StorageHandle<V>,
        checkpoint: Option<CheckpointCadence>,
    ) -> AbdServer<V> {
        AbdServer {
            registers: BTreeMap::new(),
            storage: Some(storage),
            checkpoint,
        }
    }

    /// Rebuilds a crashed server from its durable state: snapshot
    /// registers, then the WAL suffix replayed with the same
    /// adopt-if-newer rule the live path uses. No rejoin round is needed —
    /// static ABD's phase-2 write-back re-propagates anything this server
    /// missed while down, exactly as it does for a slow server.
    pub fn recover(
        storage: StorageHandle<V>,
        checkpoint: Option<CheckpointCadence>,
    ) -> AbdServer<V> {
        let mut registers: BTreeMap<ObjectId, TaggedValue<V>> = BTreeMap::new();
        if let Some((snapshot, wal)) = storage.load() {
            if let Some(snap) = snapshot {
                registers = snap.registers;
            }
            for record in wal {
                if let WalRecord::Register(obj, reg) = record {
                    match registers.get_mut(&obj) {
                        Some(cur) => {
                            cur.adopt_if_newer(&reg);
                        }
                        None => {
                            registers.insert(obj, reg);
                        }
                    }
                }
            }
        }
        AbdServer {
            registers,
            storage: Some(storage),
            checkpoint,
        }
    }

    /// The [default object](ObjectId::DEFAULT)'s register (inspection).
    pub fn register(&self) -> TaggedValue<V> {
        self.register_of(ObjectId::DEFAULT)
    }

    /// The register stored for `obj` (bottom if never written).
    pub fn register_of(&self, obj: ObjectId) -> TaggedValue<V> {
        self.registers
            .get(&obj)
            .cloned()
            .unwrap_or_else(TaggedValue::bottom)
    }

    fn adopt_register(&mut self, obj: ObjectId, incoming: &TaggedValue<V>) {
        let adopted = match self.registers.get_mut(&obj) {
            Some(cur) => cur.adopt_if_newer(incoming),
            None => {
                if incoming.tag > Tag::bottom() {
                    self.registers.insert(obj, incoming.clone());
                    true
                } else {
                    false
                }
            }
        };
        if !adopted {
            return;
        }
        if let Some(st) = &self.storage {
            st.append(WalRecord::Register(obj, incoming.clone()));
            if let Some(cad) = self.checkpoint {
                if cad.due(st.wal_len()) {
                    st.install_snapshot(Snapshot {
                        changes: ChangeSet::default(),
                        registers: self.registers.clone(),
                    });
                }
            }
        }
    }
}

impl<V: Value> Default for AbdServer<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Value> Actor for AbdServer<V> {
    type Msg = AbdMsg<V>;

    fn on_message(&mut self, from: ActorId, msg: AbdMsg<V>, ctx: &mut Context<'_, AbdMsg<V>>) {
        match msg {
            AbdMsg::R { op, obj } => {
                ctx.send(
                    from,
                    AbdMsg::RAck {
                        op,
                        obj,
                        reg: self.register_of(obj),
                    },
                );
            }
            AbdMsg::W { op, obj, reg } => {
                self.adopt_register(obj, &reg);
                ctx.send(from, AbdMsg::WAck { op, obj });
            }
            AbdMsg::RAck { .. } | AbdMsg::WAck { .. } => { /* client messages; ignore */ }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// What a completed client operation looked like (for histories/metrics).
#[derive(Clone, Debug)]
pub struct CompletedOp<V> {
    /// The object the operation targeted.
    pub obj: ObjectId,
    /// Read result (`None` = register unwritten) or the written value.
    pub kind: OpKind<V>,
    /// Invocation time.
    pub invoke: Time,
    /// Response time.
    pub response: Time,
}

#[derive(Debug)]
enum Phase<V> {
    Idle,
    One {
        op: u64,
        obj: ObjectId,
        write_value: Option<V>, // None = read
        invoke: Time,
        replies: BTreeMap<ServerId, TaggedValue<V>>,
    },
    Two {
        op: u64,
        obj: ObjectId,
        write_value: Option<V>,
        invoke: Time,
        chosen: TaggedValue<V>,
        acks: std::collections::BTreeSet<ServerId>,
    },
}

/// A static-ABD client (reader/writer).
#[derive(Debug)]
pub struct AbdClient<V> {
    id: ProcessId,
    n_servers: usize,
    rule: QuorumRule,
    read: ReadMode,
    op_cnt: u64,
    phase: Phase<V>,
    /// Completed operations, oldest first.
    pub completed: Vec<CompletedOp<V>>,
}

impl<V: Value> AbdClient<V> {
    /// Creates a client. Servers must occupy world indices `0..n_servers`.
    /// Reads use the one-phase fast path by default
    /// ([`ReadMode::FastPath`]); see [`AbdClient::with_read_mode`].
    pub fn new(id: ProcessId, n_servers: usize, rule: QuorumRule) -> AbdClient<V> {
        AbdClient {
            id,
            n_servers,
            rule,
            read: ReadMode::default(),
            op_cnt: 0,
            phase: Phase::Idle,
            completed: Vec::new(),
        }
    }

    /// Sets the read completion strategy (builder style). The static
    /// baseline shares the [`ReadMode`] knob of the dynamic engine: under
    /// [`ReadMode::FastPath`] a read returns after phase 1 when the
    /// repliers reporting the max tag are themselves a quorum under
    /// `rule`, and an incomplete phase 2 write-backs only the stale
    /// repliers.
    pub fn with_read_mode(mut self, read: ReadMode) -> AbdClient<V> {
        self.read = read;
        self
    }

    /// Whether an operation is in flight.
    pub fn is_busy(&self) -> bool {
        !matches!(self.phase, Phase::Idle)
    }

    /// Begins a read of the [default object](ObjectId::DEFAULT)
    /// (`read() ≡ read_write(⊥)`).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight (processes are
    /// sequential).
    pub fn begin_read(&mut self, ctx: &mut Context<'_, AbdMsg<V>>) {
        self.begin(ObjectId::DEFAULT, None, ctx);
    }

    /// Begins a write of `value` to the [default object](ObjectId::DEFAULT).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_write(&mut self, value: V, ctx: &mut Context<'_, AbdMsg<V>>) {
        self.begin(ObjectId::DEFAULT, Some(value), ctx);
    }

    /// Begins a read of `obj`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_read_obj(&mut self, obj: ObjectId, ctx: &mut Context<'_, AbdMsg<V>>) {
        self.begin(obj, None, ctx);
    }

    /// Begins a write of `value` to `obj`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_write_obj(&mut self, obj: ObjectId, value: V, ctx: &mut Context<'_, AbdMsg<V>>) {
        self.begin(obj, Some(value), ctx);
    }

    fn begin(&mut self, obj: ObjectId, write_value: Option<V>, ctx: &mut Context<'_, AbdMsg<V>>) {
        assert!(!self.is_busy(), "client already has an operation in flight");
        self.op_cnt += 1;
        let op = self.op_cnt;
        self.phase = Phase::One {
            op,
            obj,
            write_value,
            invoke: ctx.now(),
            replies: BTreeMap::new(),
        };
        for i in 0..self.n_servers {
            ctx.send(ActorId(i), AbdMsg::R { op, obj });
        }
    }

    fn server_of(&self, a: ActorId) -> ServerId {
        ServerId(a.index() as u32)
    }

    fn handle(&mut self, from: ActorId, msg: AbdMsg<V>, ctx: &mut Context<'_, AbdMsg<V>>) {
        let sid = self.server_of(from);
        match (&mut self.phase, msg) {
            (
                Phase::One {
                    op,
                    obj,
                    write_value,
                    invoke,
                    replies,
                },
                AbdMsg::RAck {
                    op: mop,
                    obj: mobj,
                    reg,
                },
            ) if mop == *op && mobj == *obj => {
                replies.insert(sid, reg);
                let responders: std::collections::BTreeSet<ServerId> =
                    replies.keys().copied().collect();
                if self.rule.is_quorum(&responders) {
                    // Select the highest tag.
                    let maxreg = replies
                        .values()
                        .max_by_key(|r| r.tag)
                        .expect("nonempty replies")
                        .clone();
                    let is_read = write_value.is_none();
                    // The fast-path read rule, static form: the repliers
                    // already storing the max tag (they need no write-back;
                    // their phase-1 acks double as phase-2 acks).
                    let mut fresh: std::collections::BTreeSet<ServerId> = Default::default();
                    if is_read && self.read == ReadMode::FastPath {
                        fresh = replies
                            .iter()
                            .filter(|(_, r)| r.tag == maxreg.tag)
                            .map(|(s, _)| *s)
                            .collect();
                        if self.rule.is_quorum(&fresh) {
                            ctx.record_counter("read_fastpath_hit", 1);
                            self.completed.push(CompletedOp {
                                obj: *obj,
                                kind: OpKind::Read(maxreg.value.clone()),
                                invoke: *invoke,
                                response: ctx.now(),
                            });
                            self.phase = Phase::Idle;
                            return;
                        }
                        ctx.record_counter("read_fastpath_miss", 1);
                    }
                    let (chosen, wv) = match write_value.take() {
                        None => (maxreg, None), // read: write back as-is
                        Some(v) => {
                            let tag = Tag::new(maxreg.tag.ts + 1, self.id);
                            (TaggedValue::new(tag, v.clone()), Some(v))
                        }
                    };
                    let op = *op;
                    let obj = *obj;
                    let invoke = *invoke;
                    // Targeted write-back (see the dynamic driver): fresh
                    // repliers are pre-counted as acks, W goes only to the
                    // stale repliers. Empty `fresh` = full broadcast.
                    let stale: Vec<ServerId> = replies
                        .keys()
                        .filter(|s| !fresh.contains(s))
                        .copied()
                        .collect();
                    let full_fanout = fresh.is_empty();
                    if is_read && self.read == ReadMode::FastPath {
                        let fan = if full_fanout {
                            self.n_servers
                        } else {
                            stale.len()
                        };
                        ctx.record_sample("read_writeback_fanout", fan as u64);
                    }
                    self.phase = Phase::Two {
                        op,
                        obj,
                        write_value: wv,
                        invoke,
                        chosen: chosen.clone(),
                        acks: fresh,
                    };
                    ctx.broadcast_filter(
                        (0..self.n_servers).map(ActorId),
                        AbdMsg::W {
                            op,
                            obj,
                            reg: chosen.clone(),
                        },
                        |a| full_fanout || stale.iter().any(|s| s.index() == a.index()),
                    );
                }
            }
            (
                Phase::Two {
                    op,
                    obj,
                    write_value,
                    invoke,
                    chosen,
                    acks,
                },
                AbdMsg::WAck { op: mop, obj: mobj },
            ) if mop == *op && mobj == *obj => {
                acks.insert(sid);
                if self.rule.is_quorum(acks) {
                    let kind = match write_value.take() {
                        None => OpKind::Read(chosen.value.clone()),
                        Some(v) => OpKind::Write(v),
                    };
                    self.completed.push(CompletedOp {
                        obj: *obj,
                        kind,
                        invoke: *invoke,
                        response: ctx.now(),
                    });
                    self.phase = Phase::Idle;
                }
            }
            _ => { /* stale or mismatched reply */ }
        }
    }

    /// Converts completed ops into history entries for client index `ci`.
    pub fn history_ops(&self, ci: usize) -> Vec<HistOp<V>> {
        self.completed
            .iter()
            .map(|c| HistOp {
                client: ci,
                obj: c.obj,
                kind: c.kind.clone(),
                invoke: c.invoke,
                response: c.response,
            })
            .collect()
    }
}

impl<V: Value> Actor for AbdClient<V> {
    type Msg = AbdMsg<V>;

    fn on_message(&mut self, from: ActorId, msg: AbdMsg<V>, ctx: &mut Context<'_, AbdMsg<V>>) {
        self.handle(from, msg, ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::lin::check_linearizable;
    use awr_sim::{UniformLatency, World};
    use awr_types::ClientId;

    fn build(
        n: usize,
        clients: usize,
        rule: QuorumRule,
        seed: u64,
    ) -> (World<AbdMsg<u64>>, Vec<ActorId>) {
        let mut w = World::new(seed, UniformLatency::new(1_000, 60_000));
        for _ in 0..n {
            w.add_actor(AbdServer::<u64>::new());
        }
        let mut ids = Vec::new();
        for c in 0..clients {
            ids.push(w.add_actor(AbdClient::<u64>::new(
                ProcessId::Client(ClientId(c as u32)),
                n,
                rule.clone(),
            )));
        }
        (w, ids)
    }

    fn run_op(w: &mut World<AbdMsg<u64>>, client: ActorId, value: Option<u64>) -> CompletedOp<u64> {
        let before = w.actor::<AbdClient<u64>>(client).unwrap().completed.len();
        w.with_actor_ctx::<AbdClient<u64>, _>(client, |c, ctx| match value {
            Some(v) => c.begin_write(v, ctx),
            None => c.begin_read(ctx),
        });
        assert!(w.run_until(|w| {
            w.actor::<AbdClient<u64>>(client).unwrap().completed.len() > before
        }));
        w.actor::<AbdClient<u64>>(client).unwrap().completed[before].clone()
    }

    #[test]
    fn write_then_read_majority() {
        let (mut w, ids) = build(5, 2, QuorumRule::majority(5), 1);
        run_op(&mut w, ids[0], Some(42));
        let r = run_op(&mut w, ids[1], None);
        assert_eq!(r.kind, OpKind::Read(Some(42)));
    }

    #[test]
    fn read_before_any_write_returns_none() {
        let (mut w, ids) = build(5, 1, QuorumRule::majority(5), 2);
        let r = run_op(&mut w, ids[0], None);
        assert_eq!(r.kind, OpKind::Read(None));
    }

    #[test]
    fn survives_f_crashes() {
        let (mut w, ids) = build(5, 2, QuorumRule::majority(5), 3);
        w.crash_now(ActorId(0));
        w.crash_now(ActorId(1));
        run_op(&mut w, ids[0], Some(7));
        let r = run_op(&mut w, ids[1], None);
        assert_eq!(r.kind, OpKind::Read(Some(7)));
    }

    #[test]
    fn weighted_rule_uses_fast_heavy_servers() {
        // Heavy servers 0,1 form a quorum alone.
        let rule = QuorumRule::weighted(awr_types::WeightMap::dec(&["2", "2", "1", "1", "1"]));
        let (mut w, ids) = build(5, 1, rule, 4);
        // Crash all three light servers: the heavy pair still serves.
        w.crash_now(ActorId(2));
        w.crash_now(ActorId(3));
        w.crash_now(ActorId(4));
        run_op(&mut w, ids[0], Some(9));
        let r = run_op(&mut w, ids[0], None);
        assert_eq!(r.kind, OpKind::Read(Some(9)));
    }

    #[test]
    fn quiescent_read_is_one_phase() {
        let (mut w, ids) = build(5, 2, QuorumRule::majority(5), 9);
        run_op(&mut w, ids[0], Some(42));
        w.run_to_quiescence();
        let before = w.metrics().clone();
        let r = run_op(&mut w, ids[1], None);
        assert_eq!(r.kind, OpKind::Read(Some(42)));
        let win = w.metrics().since(&before);
        assert_eq!(win.sent_of_kind("W"), 0, "settled read must skip phase 2");
        assert_eq!(win.counter("read_fastpath_hit"), 1);
    }

    #[test]
    fn two_phase_mode_restores_full_write_back() {
        let mut w = World::new(10, UniformLatency::new(1_000, 60_000));
        for _ in 0..5 {
            w.add_actor(AbdServer::<u64>::new());
        }
        let cid = w.add_actor(
            AbdClient::<u64>::new(ProcessId::Client(ClientId(0)), 5, QuorumRule::majority(5))
                .with_read_mode(ReadMode::TwoPhase),
        );
        run_op(&mut w, cid, Some(7));
        w.run_to_quiescence();
        let before = w.metrics().clone();
        let r = run_op(&mut w, cid, None);
        assert_eq!(r.kind, OpKind::Read(Some(7)));
        let win = w.metrics().since(&before);
        assert_eq!(win.sent_of_kind("W"), 5, "two-phase read broadcasts W");
        assert_eq!(win.counter("read_fastpath_hit"), 0);
    }

    #[test]
    fn partially_propagated_value_takes_targeted_write_back() {
        // Write to all five, then crash nothing but deliver the read's
        // phase-1 before any state diverges: all fresh. To force a miss,
        // use a weighted rule where a *heavy* stale server must be caught
        // up: write with only heavy servers alive is not possible without
        // crashes, so instead drive the divergence by hand: store a newer
        // register on two of five servers via a direct W injection.
        let (mut w, ids) = build(5, 1, QuorumRule::majority(5), 12);
        run_op(&mut w, ids[0], Some(1));
        w.run_to_quiescence();
        // Hand-adopt a newer tag on servers 0 and 1 only (a write that
        // died mid-phase-2).
        let newer = TaggedValue::new(Tag::new(99, ProcessId::Client(ClientId(9))), 5u64);
        for i in 0..2 {
            w.with_actor_ctx::<AbdServer<u64>, _>(ActorId(i), |s, _| {
                s.adopt_register(ObjectId::DEFAULT, &newer);
            });
        }
        let before = w.metrics().clone();
        let r = run_op(&mut w, ids[0], None);
        // The read must return the newer value and write it back to the
        // stale repliers only — fewer than the full fanout of 5.
        assert_eq!(r.kind, OpKind::Read(Some(5)));
        let win = w.metrics().since(&before);
        assert_eq!(win.counter("read_fastpath_miss"), 1);
        let w_sent = win.sent_of_kind("W");
        assert!(
            (1..5).contains(&w_sent),
            "write-back must target only stale repliers, sent {w_sent}"
        );
        // A follow-up read now finds the value settled on a quorum.
        let r2 = run_op(&mut w, ids[0], None);
        assert_eq!(r2.kind, OpKind::Read(Some(5)));
    }

    #[test]
    fn random_workload_is_linearizable() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in 0..5 {
            let (mut w, ids) = build(5, 3, QuorumRule::majority(5), seed);
            let mut rng = StdRng::seed_from_u64(seed);
            // Issue 60 random ops round-robin; run to completion each time
            // on a random subset to create overlap.
            let mut next_val = 100;
            for _ in 0..20 {
                // Start an op on every idle client with 70% probability.
                for &cid in &ids {
                    let idle = !w.actor::<AbdClient<u64>>(cid).unwrap().is_busy();
                    if idle && rng.random_range(0..10) < 7 {
                        let write = rng.random_range(0..2) == 0;
                        w.with_actor_ctx::<AbdClient<u64>, _>(cid, |c, ctx| {
                            if write {
                                c.begin_write(next_val, ctx);
                            } else {
                                c.begin_read(ctx);
                            }
                        });
                        next_val += 1;
                    }
                }
                // Let the world advance a bit (ops interleave).
                w.run_for(120_000);
            }
            w.run_to_quiescence();
            let mut h = History::new();
            for (ci, &cid) in ids.iter().enumerate() {
                for op in w.actor::<AbdClient<u64>>(cid).unwrap().history_ops(ci) {
                    h.record(op);
                }
            }
            assert!(h.len() > 10, "seed {seed}: too few completed ops");
            check_linearizable(&h).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
