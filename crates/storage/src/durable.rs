//! Durable server state: a write-ahead log plus snapshots behind a
//! [`Storage`] trait.
//!
//! The paper's model (§II) is crash-stop: a crashed process never returns,
//! and fault tolerance comes entirely from redundancy (`n − f` live
//! servers). Real deployments restart processes, and a restarted server
//! must come back with a state that is *consistent with what it
//! acknowledged* before dying — otherwise its acknowledgements were lies
//! and quorum intersection arguments collapse. This module provides that
//! durability contract for the storage servers:
//!
//! * every change entering the server's journal and every register
//!   adoption is appended to a WAL **before** the effects of the step that
//!   produced it are released (the simulator buffers outgoing messages
//!   until the callback returns, so persist-before-send holds by
//!   construction);
//! * on a cadence (driven by [`awr_epoch::CheckpointCadence`]) the server
//!   writes a [`Snapshot`] — its full change set and register map — and
//!   truncates the WAL;
//! * recovery loads the snapshot, replays the WAL suffix, and rejoins via
//!   the existing transfer/refresh paths (see `DynServer::recover`).
//!
//! Two backends: [`MemStorage`] (the default for simulation — state
//! survives the *actor*, not the process) and [`FileStorage`] (JSON
//! snapshot + JSON-lines WAL through a buffered writer, for threaded runs
//! and inspection). Both are shared with the server through a cloneable
//! [`StorageHandle`], which is what survives a simulated crash: the dead
//! incarnation's handle and the rebuilt server's handle point at the same
//! store, exactly like a restarted process re-opening its data directory.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use awr_types::{Change, ChangeSet, ObjectId, TaggedValue};
use serde::{Deserialize, DeserializeOwned, Serialize, Value as JsonValue};

use crate::abd_static::Value;

/// One write-ahead-log record: the unit of durability between snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord<V> {
    /// A change entered the server's journal (append order preserved).
    Change(Change),
    /// A register was adopted for an object (strictly newer tag).
    Register(ObjectId, TaggedValue<V>),
}

/// A point-in-time image of a server's durable state. Loading a snapshot
/// and replaying the WAL records appended after it reproduces the state at
/// the last persisted step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot<V> {
    /// The full set of completed changes `C` at snapshot time. Serialized
    /// as content; journal compaction state is rebuilt by the owner.
    pub changes: ChangeSet,
    /// The keyed register map at snapshot time.
    pub registers: BTreeMap<ObjectId, TaggedValue<V>>,
}

/// What a [`Storage`] backend hands back on recovery: the latest installed
/// snapshot (if any) and the WAL suffix appended after it, in append order.
pub type Recovered<V> = (Option<Snapshot<V>>, Vec<WalRecord<V>>);

/// A durable store for one server's state: an appendable WAL and an
/// installable snapshot that truncates it.
///
/// Implementations must make `load` return exactly what was stored:
/// the latest installed snapshot (if any) and every record appended after
/// it, in append order. They do **not** interpret the records — replay
/// semantics belong to the recovering server.
pub trait Storage<V>: fmt::Debug + Send {
    /// Appends one record to the WAL.
    fn append(&mut self, rec: WalRecord<V>);

    /// Installs `snap` as the recovery baseline and truncates the WAL:
    /// records appended before this call are no longer needed.
    fn install_snapshot(&mut self, snap: Snapshot<V>);

    /// Reads back the recovery baseline and the WAL suffix appended after
    /// it. `None` means nothing was ever persisted (a fresh store).
    fn load(&mut self) -> Option<Recovered<V>>;

    /// Records currently in the WAL (since the last snapshot).
    fn wal_len(&self) -> usize;
}

/// In-memory [`Storage`]: state survives the simulated actor, not the
/// process. The default backend for crash/restart experiments in the
/// deterministic simulator.
#[derive(Debug)]
pub struct MemStorage<V> {
    snapshot: Option<Snapshot<V>>,
    wal: Vec<WalRecord<V>>,
    appended_total: u64,
}

impl<V> Default for MemStorage<V> {
    fn default() -> MemStorage<V> {
        MemStorage {
            snapshot: None,
            wal: Vec::new(),
            appended_total: 0,
        }
    }
}

impl<V: Value> Storage<V> for MemStorage<V> {
    fn append(&mut self, rec: WalRecord<V>) {
        self.wal.push(rec);
        self.appended_total += 1;
    }

    fn install_snapshot(&mut self, snap: Snapshot<V>) {
        self.snapshot = Some(snap);
        self.wal.clear();
    }

    fn load(&mut self) -> Option<(Option<Snapshot<V>>, Vec<WalRecord<V>>)> {
        if self.snapshot.is_none() && self.wal.is_empty() && self.appended_total == 0 {
            return None;
        }
        Some((self.snapshot.clone(), self.wal.clone()))
    }

    fn wal_len(&self) -> usize {
        self.wal.len()
    }
}

// --- JSON encoding shared by the file backend ---------------------------

impl<V: Serialize> Serialize for WalRecord<V> {
    fn to_value(&self) -> JsonValue {
        match self {
            WalRecord::Change(c) => JsonValue::Map(vec![("change".to_string(), c.to_value())]),
            WalRecord::Register(obj, reg) => JsonValue::Map(vec![(
                "register".to_string(),
                JsonValue::Seq(vec![obj.to_value(), reg.to_value()]),
            )]),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for WalRecord<V> {
    fn from_value(v: &JsonValue) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for WalRecord"))?;
        if let Ok(c) = serde::map_get(m, "change") {
            return Ok(WalRecord::Change(Change::from_value(c)?));
        }
        let pair = serde::map_get(m, "register")?
            .as_seq()
            .ok_or_else(|| serde::Error::custom("expected [obj, reg] pair"))?;
        if pair.len() != 2 {
            return Err(serde::Error::custom("register pair must have 2 elements"));
        }
        Ok(WalRecord::Register(
            ObjectId::from_value(&pair[0])?,
            TaggedValue::from_value(&pair[1])?,
        ))
    }
}

impl<V: Serialize> Serialize for Snapshot<V> {
    fn to_value(&self) -> JsonValue {
        let regs: Vec<JsonValue> = self
            .registers
            .iter()
            .map(|(o, r)| JsonValue::Seq(vec![o.to_value(), r.to_value()]))
            .collect();
        JsonValue::Map(vec![
            ("changes".to_string(), self.changes.to_value()),
            ("registers".to_string(), JsonValue::Seq(regs)),
        ])
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for Snapshot<V> {
    fn from_value(v: &JsonValue) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for Snapshot"))?;
        let changes = ChangeSet::from_value(serde::map_get(m, "changes")?)?;
        let mut registers = BTreeMap::new();
        for pair in serde::map_get(m, "registers")?
            .as_seq()
            .ok_or_else(|| serde::Error::custom("expected register sequence"))?
        {
            let pair = pair
                .as_seq()
                .ok_or_else(|| serde::Error::custom("expected [obj, reg] pair"))?;
            if pair.len() != 2 {
                return Err(serde::Error::custom("register pair must have 2 elements"));
            }
            registers.insert(
                ObjectId::from_value(&pair[0])?,
                TaggedValue::<V>::from_value(&pair[1])?,
            );
        }
        Ok(Snapshot { changes, registers })
    }
}

/// File-backed [`Storage`]: `snapshot.json` plus a `wal.jsonl` append log
/// (one JSON record per line) under a directory, written through a
/// buffered writer. Human-inspectable and usable from the threaded
/// runtime. The buffer is flushed before every `load`, so a simulated
/// crash (which never kills the hosting process) always recovers the full
/// log.
pub struct FileStorage<V> {
    dir: PathBuf,
    writer: Option<BufWriter<File>>,
    wal_len: usize,
    _marker: std::marker::PhantomData<fn() -> V>,
}

impl<V> fmt::Debug for FileStorage<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileStorage")
            .field("dir", &self.dir)
            .field("wal_len", &self.wal_len)
            .finish()
    }
}

impl<V> FileStorage<V> {
    /// Opens (creating if needed) a store rooted at `dir`. An existing
    /// store is reused: the WAL is appended to, not truncated.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created or the WAL is unreadable.
    pub fn open(dir: impl AsRef<Path>) -> FileStorage<V> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).expect("create storage dir");
        let wal_len = match File::open(dir.join("wal.jsonl")) {
            Ok(f) => BufReader::new(f).lines().count(),
            Err(_) => 0,
        };
        FileStorage {
            dir,
            writer: None,
            wal_len,
            _marker: std::marker::PhantomData,
        }
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.jsonl")
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.json")
    }

    fn writer(&mut self) -> &mut BufWriter<File> {
        if self.writer.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.wal_path())
                .expect("open WAL for append");
            self.writer = Some(BufWriter::new(f));
        }
        self.writer.as_mut().expect("just ensured")
    }

    fn flush(&mut self) {
        if let Some(w) = self.writer.as_mut() {
            w.flush().expect("flush WAL");
        }
    }
}

impl<V: Value + Serialize + DeserializeOwned> Storage<V> for FileStorage<V> {
    fn append(&mut self, rec: WalRecord<V>) {
        let line = serde_json::to_string(&rec).expect("encode WAL record");
        let w = self.writer();
        w.write_all(line.as_bytes()).expect("append WAL record");
        w.write_all(b"\n").expect("append WAL newline");
        self.wal_len += 1;
    }

    fn install_snapshot(&mut self, snap: Snapshot<V>) {
        // Write-then-rename so a half-written snapshot never shadows a
        // good one; the WAL is truncated only after the rename lands.
        let tmp = self.dir.join("snapshot.json.tmp");
        std::fs::write(&tmp, serde_json::to_string(&snap).expect("encode snapshot"))
            .expect("write snapshot");
        std::fs::rename(&tmp, self.snapshot_path()).expect("publish snapshot");
        self.writer = None; // drop the append handle before truncating
        std::fs::write(self.wal_path(), b"").expect("truncate WAL");
        self.wal_len = 0;
    }

    fn load(&mut self) -> Option<(Option<Snapshot<V>>, Vec<WalRecord<V>>)> {
        self.flush();
        let snap = std::fs::read_to_string(self.snapshot_path())
            .ok()
            .map(|s| serde_json::from_str::<Snapshot<V>>(&s).expect("decode snapshot"));
        let mut wal = Vec::new();
        if let Ok(f) = File::open(self.wal_path()) {
            for line in BufReader::new(f).lines() {
                let line = line.expect("read WAL line");
                if line.trim().is_empty() {
                    continue;
                }
                wal.push(serde_json::from_str::<WalRecord<V>>(&line).expect("decode WAL record"));
            }
        }
        if snap.is_none() && wal.is_empty() {
            return None;
        }
        Some((snap, wal))
    }

    fn wal_len(&self) -> usize {
        self.wal_len
    }
}

/// A cloneable, shareable handle onto a [`Storage`] backend — the thing
/// that survives a crash. The dying server and its recovered replacement
/// hold handles to the same store, like a restarted process re-opening its
/// data directory. Interior mutability is a mutex: contention is nil in
/// the single-threaded simulator and negligible in the threaded runtime
/// (one writer per store).
#[derive(Clone)]
pub struct StorageHandle<V> {
    inner: Arc<Mutex<Box<dyn Storage<V>>>>,
}

impl<V> fmt::Debug for StorageHandle<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => write!(f, "StorageHandle({:?})", &*g),
            Err(_) => write!(f, "StorageHandle(<locked>)"),
        }
    }
}

impl<V: Value> StorageHandle<V> {
    /// A handle onto a fresh [`MemStorage`].
    pub fn in_memory() -> StorageHandle<V> {
        StorageHandle::new(MemStorage::default())
    }

    /// Wraps any backend.
    pub fn new(storage: impl Storage<V> + 'static) -> StorageHandle<V> {
        StorageHandle {
            inner: Arc::new(Mutex::new(Box::new(storage))),
        }
    }

    /// Appends one WAL record.
    pub fn append(&self, rec: WalRecord<V>) {
        self.lock().append(rec);
    }

    /// Installs a snapshot (truncating the WAL).
    pub fn install_snapshot(&self, snap: Snapshot<V>) {
        self.lock().install_snapshot(snap);
    }

    /// Loads the recovery baseline and WAL suffix; `None` if nothing was
    /// ever persisted.
    pub fn load(&self) -> Option<Recovered<V>> {
        self.lock().load()
    }

    /// Records currently in the WAL.
    pub fn wal_len(&self) -> usize {
        self.lock().wal_len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn Storage<V>>> {
        self.inner.lock().expect("storage mutex poisoned")
    }
}

impl<V: Value + Serialize + DeserializeOwned> StorageHandle<V> {
    /// A handle onto a [`FileStorage`] rooted at `dir`.
    pub fn file(dir: impl AsRef<Path>) -> StorageHandle<V> {
        StorageHandle::new(FileStorage::open(dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awr_types::{ProcessId, Ratio, ServerId, Tag};

    fn chg(counter: u64, delta: &str) -> Change {
        Change::new(
            ProcessId::Server(ServerId(0)),
            counter,
            ServerId(1),
            Ratio::dec(delta),
        )
    }

    fn reg(ts: u64, v: u64) -> TaggedValue<u64> {
        TaggedValue::new(Tag::new(ts, ProcessId::Server(ServerId(0))), v)
    }

    fn exercise(handle: StorageHandle<u64>) {
        assert!(handle.load().is_none(), "fresh store must load None");
        handle.append(WalRecord::Change(chg(2, "0.1")));
        handle.append(WalRecord::Register(ObjectId(7), reg(3, 99)));
        assert_eq!(handle.wal_len(), 2);
        let (snap, wal) = handle.load().expect("something persisted");
        assert!(snap.is_none());
        assert_eq!(wal.len(), 2);
        assert_eq!(wal[0], WalRecord::Change(chg(2, "0.1")));
        assert_eq!(wal[1], WalRecord::Register(ObjectId(7), reg(3, 99)));

        // Snapshot truncates; later appends form the new suffix.
        let mut set = ChangeSet::new();
        set.insert(chg(2, "0.1"));
        let mut registers = BTreeMap::new();
        registers.insert(ObjectId(7), reg(3, 99));
        handle.install_snapshot(Snapshot {
            changes: set.clone(),
            registers: registers.clone(),
        });
        assert_eq!(handle.wal_len(), 0);
        handle.append(WalRecord::Change(chg(3, "0.2")));
        let (snap, wal) = handle.load().expect("snapshot + suffix");
        let snap = snap.expect("snapshot present");
        assert_eq!(snap.changes, set);
        assert_eq!(snap.registers, registers);
        assert_eq!(wal, vec![WalRecord::Change(chg(3, "0.2"))]);
    }

    #[test]
    fn mem_storage_round_trips() {
        exercise(StorageHandle::in_memory());
    }

    #[test]
    fn file_storage_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "awr_durable_test_{}_{}",
            std::process::id(),
            "round_trip"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(StorageHandle::file(&dir));
        // Re-opening the same directory sees the same state (a process
        // restart, not just an actor restart).
        let reopened: StorageHandle<u64> = StorageHandle::file(&dir);
        let (snap, wal) = reopened.load().expect("state survives reopen");
        assert!(snap.is_some());
        assert_eq!(wal.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handle_is_shared() {
        let a: StorageHandle<u64> = StorageHandle::in_memory();
        let b = a.clone();
        a.append(WalRecord::Change(chg(2, "0.5")));
        assert_eq!(b.wal_len(), 1, "clones see the same store");
    }
}
