//! Dynamic-weighted atomic storage (paper §VII, Algorithms 5 and 6) over a
//! delta-aware wire protocol and a *keyed object space*.
//!
//! Multi-writer ABD where quorums are judged by *weight* under the most
//! up-to-date set of completed changes `C`, and weights move via the
//! restricted pairwise weight reassignment protocol (Algorithm 4, embedded
//! through [`TransferCore`]). Each server hosts a whole *map* of registers
//! keyed by [`ObjectId`] — the paper's reassignment machinery governs the
//! quorum system, not a datum, so a single `C` (and a single reassignment
//! protocol instance) serves any number of objects: every `R`/`W` names its
//! object, quorum judgement is object-independent, and one weight transfer
//! re-weights the whole shard. Mechanically:
//!
//! * every `R`/`W` message references the client's `C`; servers **reject**
//!   operations whose `C` differs from theirs; the client reconciles and
//!   restarts the operation (§VII, first requirement);
//! * `is_quorum(Q)` holds iff `Σ_{s∈Q} W_s > W_{S,0}/2` with weights taken
//!   from the client's current `C` (Algorithm 5 lines 5–8);
//! * when a server gains weight it refreshes its register *before*
//!   applying the change (Algorithm 4 lines 8–9) so that newly possible
//!   quorums always contain the latest value (Lemma 4). The refresh is a
//!   count-based `n − f` read answered unconditionally — safe because an
//!   `n − f` count set intersects every weighted quorum under every
//!   Property-1 map, and live where a weight-judged read provably
//!   deadlocks with f + 1 concurrent gainers (DESIGN.md §5.6);
//! * two ablation knobs — [`DynOptions::restart_on_stale`] and
//!   [`DynOptions::refresh_on_gain`] — let experiment E10 demonstrate that
//!   both mechanisms are load-bearing.
//!
//! # The change-set negotiation
//!
//! The paper's Algorithm 6 only ever *compares* the attached `C` against
//! the server's own (`C = C_i`), and a rejected client only needs the
//! changes it is missing — so shipping the full set both ways is pure
//! overhead once the system is converged. Under
//! [`WireMode::Negotiate`] (the default) the phases carry
//! [`CsRef`] references instead, per the discipline of [`awr_types::sync`]:
//!
//! 1. the client attaches an O(1) [`CsRef::Summary`] of its `C` to every
//!    `R`/`W`; the server's accept check is the digest comparison;
//! 2. a rejecting server answers with [`CsRef::Delta`] against the
//!    client's digest when its journal covers the gap (the steady-state
//!    mismatch: the client is a few transfers behind), falling back to
//!    [`CsRef::Full`] when it cannot (client ahead or diverged);
//! 3. the client absorbs the reply ([`ChangeSet::apply_ref`]); if it
//!    learned new changes it restarts the operation (Algorithm 5
//!    lines 14–16), otherwise the server is behind and the client re-polls
//!    just that server — both exactly the pre-delta semantics;
//! 4. per rejecting server, one unresolved delta (the client re-presents
//!    the digest the server already answered) degrades the next reply to
//!    `Full`, so every exchange is bounded and liveness needs no new
//!    argument.
//!
//! [`WireMode::ForceFull`] restores the ship-everything wire on these four
//! ABD phases (`R`/`RAck`/`W`/`WAck`) — the accept check becomes the exact
//! set comparison again and every payload is [`CsRef::Full`] — which makes
//! it the equivalence baseline for the `wire_equivalence` test suite and
//! the "before" arm of `bench_wire`. The knob deliberately does not reach
//! the embedded Algorithm 3/4 legs (`RC`/`RC_Ack`/`WC`): those negotiate
//! unconditionally (see [`awr_core::restricted`]), so byte comparisons
//! between the two modes are scoped to the ABD message kinds.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use awr_core::restricted::{ApplyRequest, CoreEvent, TransferCore, TransferStart, WrMsg};
use awr_core::{RpConfig, TransferError, TransferOutcome};
use awr_epoch::CheckpointCadence;
use awr_sim::{Actor, ActorId, Context, Message, Nanos, Time, TimerId};
use awr_types::{ChangeSet, CsRef, ObjectId, ProcessId, Ratio, ServerId, Tag, TaggedValue};

use crate::abd_static::Value;
use crate::durable::{Snapshot, StorageHandle, WalRecord};
use crate::history::{HistOp, OpKind};

/// Wire messages of the dynamic-weighted storage: the weight-reassignment
/// sub-protocol plus change-set-referencing ABD phases (see the module
/// docs for the negotiation).
#[derive(Clone, Debug)]
pub enum DynMsg<V> {
    /// Weight-reassignment traffic (Algorithms 3–4).
    Wr(WrMsg),
    /// Phase-1 request referencing the client's `C`.
    R {
        /// Client-local operation counter.
        op: u64,
        /// The object being read or written.
        obj: ObjectId,
        /// Reference to the client's current set of completed changes.
        changes: CsRef,
    },
    /// Phase-1 reply; `accepted == false` means the server rejected the
    /// operation because the change sets differ (a reference that lets the
    /// client catch up — delta or full — is attached).
    RAck {
        /// Echo of the request counter.
        op: u64,
        /// Echo of the object key.
        obj: ObjectId,
        /// The server's register content for that object.
        reg: TaggedValue<V>,
        /// Reference to the server's current change set.
        changes: CsRef,
        /// Whether the server accepted the operation.
        accepted: bool,
    },
    /// Phase-2 request referencing the client's `C`.
    W {
        /// Client-local operation counter.
        op: u64,
        /// The object being written back.
        obj: ObjectId,
        /// The tagged value to store.
        reg: TaggedValue<V>,
        /// Reference to the client's current change set.
        changes: CsRef,
    },
    /// Phase-2 reply.
    WAck {
        /// Echo of the request counter.
        op: u64,
        /// Echo of the object key.
        obj: ObjectId,
        /// Reference to the server's current change set.
        changes: CsRef,
        /// Whether the server accepted (and possibly applied) the write.
        accepted: bool,
    },
    /// Register-refresh read request (Algorithm 4 lines 8–9). Answered
    /// unconditionally — by *count*, not weight — so it can never deadlock:
    /// an `n − f` count set intersects every weighted quorum under every
    /// Property-1 map (its complement is `f` servers, holding < half).
    ///
    /// One refresh covers the *whole object space*: a weight gain changes
    /// which quorums are possible for every object at once, so the
    /// refresher must catch up on every register before applying it
    /// (Lemma 4, per object).
    RefreshR {
        /// Refresher-local operation number.
        op: u64,
        /// What the refresher already holds — per-object tags, or a bound
        /// digest of them above [`DynOptions::refresh_tags_cap`] (see
        /// [`RefreshHave`]).
        have: RefreshHave,
    },
    /// Reply to [`DynMsg::RefreshR`]: the subset of the replier's registers
    /// that are *strictly newer* than the tags the refresher presented.
    /// Everything else is elided, so in the converged case the ack is a
    /// bare header regardless of how many objects the shard holds.
    /// Observationally equivalent to always shipping the full register map:
    /// the refresher adopts the freshest register per object, and a
    /// register with `tag ≤ have[obj]` can never be that (the refresher's
    /// own registers only grow newer while the read is in flight).
    RefreshAck {
        /// Echo of the request number.
        op: u64,
        /// The replier's registers that are newer than the refresher's.
        regs: BTreeMap<ObjectId, TaggedValue<V>>,
        /// Set when the request presented a [`RefreshHave::Digest`] that
        /// did not match: the replier cannot tell which registers are
        /// newer. The refresher answers with a per-key
        /// [`RefreshHave::Tags`] round aimed at this replier alone; only
        /// the substantive reply counts toward the `n − f` quorum.
        need_tags: bool,
    },
    /// Recovery rejoin, request leg: a restarted server presents the digest
    /// of its recovered change set and asks each peer for whatever it
    /// missed while down. Never sent in a crash-free run.
    SyncR {
        /// Digest of the recovering server's `C`.
        digest: u64,
    },
    /// Recovery rejoin, reply leg: the cheapest reference that brings the
    /// recovering server up to the replier's `C` — a delta against the
    /// presented digest when the replier's journal covers the gap, the
    /// full set otherwise. One round suffices: delta adds are absorbed
    /// even when the base has moved (facts are facts), and register
    /// catch-up runs separately through the refresh read.
    SyncAck {
        /// Reference to the replier's change set.
        changes: CsRef,
    },
}

/// What a refresher presents in [`DynMsg::RefreshR`] to let repliers elide
/// registers the refresher already has.
///
/// The per-object tag map is exact but linear in the number of stored
/// keys; on a shard with many objects that made every refresh request
/// O(|objects|) on the wire. Above [`DynOptions::refresh_tags_cap`] the
/// refresher sends a constant-size commutative digest of its `(object,
/// tag)` pairs instead: a replier whose own pairs digest identically has
/// nothing newer and acks empty, and a replier that differs answers
/// `need_tags` so the refresher falls back to a per-key round with that
/// replier alone. Converged steady state therefore costs O(1) per
/// replier, and the fallback is bounded by one extra round trip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefreshHave {
    /// Exact per-object register tags (absent = bottom).
    Tags(BTreeMap<ObjectId, Tag>),
    /// Commutative digest over the refresher's `(object, tag)` pairs plus
    /// their count, constant-size whatever the shard holds.
    Digest {
        /// [`reg_tag_digest`] of the refresher's register map.
        digest: u64,
        /// Number of registers the refresher holds.
        count: usize,
    },
}

/// Commutative digest of a register map's `(object, tag)` pairs: equal
/// maps digest equally regardless of insertion order, and (w.h.p.) unequal
/// maps do not. The register *values* are deliberately excluded — tags
/// alone decide freshness.
pub fn reg_tag_digest<V>(registers: &BTreeMap<ObjectId, TaggedValue<V>>) -> u64 {
    use std::hash::{Hash, Hasher};
    registers
        .iter()
        .map(|(o, r)| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            (o, r.tag).hash(&mut h);
            h.finish() | 1
        })
        .fold(0u64, u64::wrapping_add)
}

impl<V: Value> Message for DynMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            DynMsg::Wr(m) => m.kind(),
            DynMsg::R { .. } => "R",
            DynMsg::RAck { .. } => "R_A",
            DynMsg::W { .. } => "W",
            DynMsg::WAck { .. } => "W_A",
            DynMsg::RefreshR { .. } => "RefR",
            DynMsg::RefreshAck { .. } => "RefA",
            DynMsg::SyncR { .. } => "SyR",
            DynMsg::SyncAck { .. } => "SyA",
        }
    }

    // Register values are metered at their in-memory footprint
    // (`size_of_val`), which is exact for the inline `Copy` values used
    // throughout this workspace but undercounts a heap-backed `V` (e.g.
    // `String`): `Value` is blanket-implemented, so there is no hook to ask
    // an arbitrary `V` for its heap size. The change-set payloads — the
    // quantity this accounting exists to expose — are always charged fully.
    fn wire_size(&self) -> usize {
        const OBJ: usize = std::mem::size_of::<ObjectId>();
        match self {
            DynMsg::Wr(m) => m.wire_size(),
            DynMsg::R { changes, .. } => 12 + OBJ + changes.wire_size(),
            DynMsg::WAck { changes, .. } => 16 + OBJ + changes.wire_size(),
            DynMsg::RAck { reg, changes, .. } | DynMsg::W { reg, changes, .. } => {
                16 + OBJ + std::mem::size_of_val(reg) + changes.wire_size()
            }
            // Tags mode: header + one (key, tag) pair per object the
            // refresher holds — the per-reassignment cost of covering the
            // whole object space, independent of register value sizes.
            // Digest mode: a constant header + digest + count, however many
            // objects the shard holds.
            DynMsg::RefreshR { have, .. } => match have {
                RefreshHave::Tags(t) => 16 + t.len() * (OBJ + std::mem::size_of::<Tag>()),
                RefreshHave::Digest { .. } => 16 + 12,
            },
            // Elided registers cost nothing: a converged replier sends a
            // 16-byte header (the `need_tags` bit rides in it) however many
            // objects the shard holds. Shipped registers are charged at
            // their footprint plus their key.
            DynMsg::RefreshAck { regs, .. } => {
                16 + regs
                    .values()
                    .map(|r| OBJ + std::mem::size_of_val(r))
                    .sum::<usize>()
            }
            DynMsg::SyncR { .. } => 12,
            DynMsg::SyncAck { changes } => 16 + changes.wire_size(),
        }
    }

    // Full-content digest for the model-checking explorer: `Value: Hash`
    // lets register payloads hash directly, and change-set references hash
    // by variant + implied digest (see `WrMsg::content_digest`).
    fn content_digest(&self) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        fn hash_cs_ref(h: &mut impl Hasher, r: &CsRef) {
            match r {
                CsRef::Summary { digest, len } => (0u8, digest, len).hash(h),
                CsRef::Delta { base_digest, adds } => (1u8, base_digest, adds).hash(h),
                CsRef::Full(set) => (2u8, set.digest(), set.len()).hash(h),
            }
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        match self {
            DynMsg::Wr(m) => (0u8, m.content_digest()?).hash(&mut h),
            DynMsg::R { op, obj, changes } => {
                (1u8, op, obj).hash(&mut h);
                hash_cs_ref(&mut h, changes);
            }
            DynMsg::RAck {
                op,
                obj,
                reg,
                changes,
                accepted,
            } => {
                (2u8, op, obj, reg, accepted).hash(&mut h);
                hash_cs_ref(&mut h, changes);
            }
            DynMsg::W {
                op,
                obj,
                reg,
                changes,
            } => {
                (3u8, op, obj, reg).hash(&mut h);
                hash_cs_ref(&mut h, changes);
            }
            DynMsg::WAck {
                op,
                obj,
                changes,
                accepted,
            } => {
                (4u8, op, obj, accepted).hash(&mut h);
                hash_cs_ref(&mut h, changes);
            }
            DynMsg::RefreshR { op, have } => {
                (5u8, op).hash(&mut h);
                match have {
                    RefreshHave::Tags(tags) => (0u8, tags).hash(&mut h),
                    RefreshHave::Digest { digest, count } => (1u8, digest, count).hash(&mut h),
                }
            }
            DynMsg::RefreshAck {
                op,
                regs,
                need_tags,
            } => (6u8, op, regs, need_tags).hash(&mut h),
            DynMsg::SyncR { digest } => (7u8, digest).hash(&mut h),
            DynMsg::SyncAck { changes } => {
                8u8.hash(&mut h);
                hash_cs_ref(&mut h, changes);
            }
        }
        Some(h.finish())
    }

    // Per-object byte attribution: the four keyed ABD phases carry their
    // object; reassignment traffic and the (whole-space) refresh legs are
    // shared infrastructure and stay unattributed.
    fn object_key(&self) -> Option<u64> {
        match self {
            DynMsg::R { obj, .. }
            | DynMsg::RAck { obj, .. }
            | DynMsg::W { obj, .. }
            | DynMsg::WAck { obj, .. } => Some(obj.key()),
            DynMsg::Wr(_)
            | DynMsg::RefreshR { .. }
            | DynMsg::RefreshAck { .. }
            | DynMsg::SyncR { .. }
            | DynMsg::SyncAck { .. } => None,
        }
    }
}

// --- Wire encoding ------------------------------------------------------
//
// Manual serde impls (the vendored stand-in cannot derive through the
// `BTreeMap` payloads; maps ride as sequences of `[key, value]` pairs,
// the same idiom as the durable snapshot encoding). Externally tagged by
// variant name so frames are self-describing across process boundaries.

use serde::{map_get, Deserialize, Error as SerdeError, Serialize, Value as WireValue};

impl Serialize for RefreshHave {
    fn to_value(&self) -> WireValue {
        match self {
            RefreshHave::Tags(tags) => {
                let pairs: Vec<WireValue> = tags
                    .iter()
                    .map(|(o, t)| WireValue::Seq(vec![o.to_value(), t.to_value()]))
                    .collect();
                WireValue::Map(vec![("tags".to_string(), WireValue::Seq(pairs))])
            }
            RefreshHave::Digest { digest, count } => WireValue::Map(vec![(
                "digest".to_string(),
                WireValue::Seq(vec![digest.to_value(), count.to_value()]),
            )]),
        }
    }
}

impl<'de> Deserialize<'de> for RefreshHave {
    fn from_value(v: &WireValue) -> Result<Self, SerdeError> {
        let m = v
            .as_map()
            .ok_or_else(|| SerdeError::custom("expected map for RefreshHave"))?;
        if let Ok(tags) = map_get(m, "tags") {
            let mut out = BTreeMap::new();
            for pair in tags
                .as_seq()
                .ok_or_else(|| SerdeError::custom("expected tag pair sequence"))?
            {
                let pair = pair
                    .as_seq()
                    .ok_or_else(|| SerdeError::custom("expected [obj, tag] pair"))?;
                if pair.len() != 2 {
                    return Err(SerdeError::custom("tag pair must have 2 elements"));
                }
                out.insert(ObjectId::from_value(&pair[0])?, Tag::from_value(&pair[1])?);
            }
            return Ok(RefreshHave::Tags(out));
        }
        let pair = map_get(m, "digest")?
            .as_seq()
            .ok_or_else(|| SerdeError::custom("expected [digest, count] pair"))?;
        if pair.len() != 2 {
            return Err(SerdeError::custom("digest pair must have 2 elements"));
        }
        Ok(RefreshHave::Digest {
            digest: u64::from_value(&pair[0])?,
            count: usize::from_value(&pair[1])?,
        })
    }
}

impl<V: Value + Serialize> Serialize for DynMsg<V> {
    fn to_value(&self) -> WireValue {
        let tagged = |tag: &str, fields: Vec<(String, WireValue)>| {
            WireValue::Map(vec![(tag.to_string(), WireValue::Map(fields))])
        };
        let f = |name: &str, v: WireValue| (name.to_string(), v);
        match self {
            DynMsg::Wr(m) => WireValue::Map(vec![("wr".to_string(), m.to_value())]),
            DynMsg::R { op, obj, changes } => tagged(
                "r",
                vec![
                    f("op", op.to_value()),
                    f("obj", obj.to_value()),
                    f("changes", changes.to_value()),
                ],
            ),
            DynMsg::RAck {
                op,
                obj,
                reg,
                changes,
                accepted,
            } => tagged(
                "r_ack",
                vec![
                    f("op", op.to_value()),
                    f("obj", obj.to_value()),
                    f("reg", reg.to_value()),
                    f("changes", changes.to_value()),
                    f("accepted", accepted.to_value()),
                ],
            ),
            DynMsg::W {
                op,
                obj,
                reg,
                changes,
            } => tagged(
                "w",
                vec![
                    f("op", op.to_value()),
                    f("obj", obj.to_value()),
                    f("reg", reg.to_value()),
                    f("changes", changes.to_value()),
                ],
            ),
            DynMsg::WAck {
                op,
                obj,
                changes,
                accepted,
            } => tagged(
                "w_ack",
                vec![
                    f("op", op.to_value()),
                    f("obj", obj.to_value()),
                    f("changes", changes.to_value()),
                    f("accepted", accepted.to_value()),
                ],
            ),
            DynMsg::RefreshR { op, have } => tagged(
                "refresh_r",
                vec![f("op", op.to_value()), f("have", have.to_value())],
            ),
            DynMsg::RefreshAck {
                op,
                regs,
                need_tags,
            } => {
                let pairs: Vec<WireValue> = regs
                    .iter()
                    .map(|(o, r)| WireValue::Seq(vec![o.to_value(), r.to_value()]))
                    .collect();
                tagged(
                    "refresh_ack",
                    vec![
                        f("op", op.to_value()),
                        f("regs", WireValue::Seq(pairs)),
                        f("need_tags", need_tags.to_value()),
                    ],
                )
            }
            DynMsg::SyncR { digest } => tagged("sync_r", vec![f("digest", digest.to_value())]),
            DynMsg::SyncAck { changes } => {
                tagged("sync_ack", vec![f("changes", changes.to_value())])
            }
        }
    }
}

impl<'de, V: Value + Deserialize<'de>> Deserialize<'de> for DynMsg<V> {
    fn from_value(v: &WireValue) -> Result<Self, SerdeError> {
        let outer = v
            .as_map()
            .ok_or_else(|| SerdeError::custom("expected map for DynMsg"))?;
        let (tag, body) = outer
            .first()
            .filter(|_| outer.len() == 1)
            .ok_or_else(|| SerdeError::custom("expected single-variant map for DynMsg"))?;
        if tag == "wr" {
            return Ok(DynMsg::Wr(WrMsg::from_value(body)?));
        }
        let m = body
            .as_map()
            .ok_or_else(|| SerdeError::custom("expected field map for DynMsg variant"))?;
        match tag.as_str() {
            "r" => Ok(DynMsg::R {
                op: u64::from_value(map_get(m, "op")?)?,
                obj: ObjectId::from_value(map_get(m, "obj")?)?,
                changes: CsRef::from_value(map_get(m, "changes")?)?,
            }),
            "r_ack" => Ok(DynMsg::RAck {
                op: u64::from_value(map_get(m, "op")?)?,
                obj: ObjectId::from_value(map_get(m, "obj")?)?,
                reg: TaggedValue::from_value(map_get(m, "reg")?)?,
                changes: CsRef::from_value(map_get(m, "changes")?)?,
                accepted: bool::from_value(map_get(m, "accepted")?)?,
            }),
            "w" => Ok(DynMsg::W {
                op: u64::from_value(map_get(m, "op")?)?,
                obj: ObjectId::from_value(map_get(m, "obj")?)?,
                reg: TaggedValue::from_value(map_get(m, "reg")?)?,
                changes: CsRef::from_value(map_get(m, "changes")?)?,
            }),
            "w_ack" => Ok(DynMsg::WAck {
                op: u64::from_value(map_get(m, "op")?)?,
                obj: ObjectId::from_value(map_get(m, "obj")?)?,
                changes: CsRef::from_value(map_get(m, "changes")?)?,
                accepted: bool::from_value(map_get(m, "accepted")?)?,
            }),
            "refresh_r" => Ok(DynMsg::RefreshR {
                op: u64::from_value(map_get(m, "op")?)?,
                have: RefreshHave::from_value(map_get(m, "have")?)?,
            }),
            "refresh_ack" => {
                let mut regs = BTreeMap::new();
                for pair in map_get(m, "regs")?
                    .as_seq()
                    .ok_or_else(|| SerdeError::custom("expected register pair sequence"))?
                {
                    let pair = pair
                        .as_seq()
                        .ok_or_else(|| SerdeError::custom("expected [obj, reg] pair"))?;
                    if pair.len() != 2 {
                        return Err(SerdeError::custom("register pair must have 2 elements"));
                    }
                    regs.insert(
                        ObjectId::from_value(&pair[0])?,
                        TaggedValue::<V>::from_value(&pair[1])?,
                    );
                }
                Ok(DynMsg::RefreshAck {
                    op: u64::from_value(map_get(m, "op")?)?,
                    regs,
                    need_tags: bool::from_value(map_get(m, "need_tags")?)?,
                })
            }
            "sync_r" => Ok(DynMsg::SyncR {
                digest: u64::from_value(map_get(m, "digest")?)?,
            }),
            "sync_ack" => Ok(DynMsg::SyncAck {
                changes: CsRef::from_value(map_get(m, "changes")?)?,
            }),
            other => Err(SerdeError::custom(format!(
                "unknown DynMsg variant `{other}`"
            ))),
        }
    }
}

/// How `R`/`W`/`RAck`/`WAck` reference the change set on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireMode {
    /// Digest summaries with delta/full negotiation on mismatch (the
    /// module docs' state machine): steady-state payloads are O(1) in |C|.
    #[default]
    Negotiate,
    /// Ship the full change set on every `R`/`RAck`/`W`/`WAck` — the
    /// paper-literal wire format for the ABD phases (the embedded
    /// Algorithm 3/4 legs negotiate regardless). Baseline for equivalence
    /// tests and `bench_wire`.
    ForceFull,
}

/// How reads complete: the one-phase weighted fast path or the
/// paper-literal two phases.
///
/// Under [`ReadMode::FastPath`] a read returns at the end of phase 1 when
/// the cumulative weight of the repliers that reported the maximum tag
/// already satisfies the quorum rule
/// ([`awr_quorum::fast_path_read_quorum`]) — those servers all store the
/// max-tag register, so the write-back phase would change nothing and
/// their phase-1 acks double as its acks. When the fresh weight falls
/// short, phase 2 still runs but `W` goes only to the *stale* repliers:
/// the fresh repliers are pre-counted as acks (same zero-delay-write-back
/// argument) and the stale repliers' weight tops the quorum up, because
/// together they are exactly the phase-1 quorum. Writes are unaffected —
/// their tag is brand-new, so no replier can ever be fresh.
///
/// Every fast-path execution is observationally equivalent to a two-phase
/// execution of the same schedule with some `W` deliveries reordered to
/// zero delay, so linearizability carries over; `tests/read_fastpath.rs`
/// pins the equivalence seed-for-seed and the `awr_check` fast-path
/// scenarios exhaust the racing-reassignment interleavings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReadMode {
    /// One-phase reads when the max-tag repliers' weight is a quorum;
    /// targeted write-backs otherwise (the default).
    #[default]
    FastPath,
    /// Always run both phases with a full-fanout write-back — the
    /// paper-literal Algorithm 5. Baseline for equivalence tests.
    TwoPhase,
}

/// Behaviour knobs, defaulting to the paper's protocol (with the
/// delta-negotiated wire). Turning either boolean off reproduces the E10
/// ablations (and breaks atomicity, as the checker shows).
#[derive(Clone, Copy, Debug)]
pub struct DynOptions {
    /// Restart operations when a server's change set differs (paper: on).
    pub restart_on_stale: bool,
    /// Refresh the register with a full read before applying a weight gain
    /// (Algorithm 4 lines 8–9; paper: on).
    pub refresh_on_gain: bool,
    /// Wire representation of change sets on the ABD phases.
    pub wire: WireMode,
    /// Read completion strategy (one-phase fast path vs paper-literal two
    /// phases).
    pub read: ReadMode,
    /// Journal-compaction (and, with a [`crate::StorageHandle`] attached,
    /// snapshot) cadence. `None` — the default — never compacts, which is
    /// the pre-durability behaviour: the journal holds every change.
    pub checkpoint: Option<CheckpointCadence>,
    /// Largest register map a refresher will enumerate per-key in
    /// [`DynMsg::RefreshR`]; above it the request carries a
    /// [`RefreshHave::Digest`] instead (constant-size, one extra round
    /// trip per diverged replier).
    pub refresh_tags_cap: usize,
    /// Client-side rebroadcast for operations stalled because their quorum
    /// contacts died mid-phase. `None` — the default — never retries,
    /// matching the crash-free model where every sent message is
    /// eventually delivered.
    pub retry: Option<RetryPolicy>,
}

impl Default for DynOptions {
    fn default() -> DynOptions {
        DynOptions {
            restart_on_stale: true,
            refresh_on_gain: true,
            wire: WireMode::Negotiate,
            read: ReadMode::FastPath,
            checkpoint: None,
            refresh_tags_cap: 64,
            retry: None,
        }
    }
}

/// Bounded-backoff rebroadcast for in-flight client operations (see
/// [`DynOptions::retry`]).
///
/// When armed, the [`DynOpDriver`] sets a timer after broadcasting a
/// phase; if the operation is still in the same numbered attempt when the
/// timer fires, the driver re-broadcasts the *current* phase (phase 1
/// verbatim; phase 2 with the already-chosen register) and re-arms with
/// the delay doubled. Retries are tag-idempotent by construction: servers
/// adopt registers only if strictly newer, and the driver's reply/ack
/// accounting is keyed by [`ServerId`], so a duplicate delivery can
/// neither double-apply a write nor double-count a quorum member. A
/// crash-free schedule with `retry: Some(..)` therefore completes every
/// operation before its first timer matters only when the network outruns
/// `base`; with the default `retry: None` no timer is ever set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first rebroadcast; doubles per attempt.
    pub base: Nanos,
    /// Rebroadcast at most this many times per operation attempt.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            // 200 µs: comfortably above the simulated latencies used in
            // tests, so healthy quorums always answer first.
            base: 200_000,
            max_attempts: 8,
        }
    }
}

/// A completed read/write (client-side record).
#[derive(Clone, Debug)]
pub struct DynCompletedOp<V> {
    /// The object the operation targeted.
    pub obj: ObjectId,
    /// What happened.
    pub kind: OpKind<V>,
    /// Invocation time.
    pub invoke: Time,
    /// Response time.
    pub response: Time,
    /// How many times the operation restarted due to stale change sets.
    pub restarts: u64,
}

#[derive(Debug)]
enum DynPhase<V> {
    Idle,
    One {
        op: u64,
        obj: ObjectId,
        write_value: Option<V>,
        invoke: Time,
        restarts: u64,
        replies: std::collections::BTreeMap<ServerId, TaggedValue<V>>,
        /// Running quorum weight of `replies` under the client's `C`:
        /// maintained incrementally so each ack is O(1) instead of
        /// re-summing every responder. Sound because `C` is frozen for the
        /// lifetime of the phase (any change to `C` restarts the phase).
        weight: Ratio,
    },
    Two {
        op: u64,
        obj: ObjectId,
        write_value: Option<V>,
        invoke: Time,
        restarts: u64,
        chosen: TaggedValue<V>,
        acks: BTreeSet<ServerId>,
        /// Running quorum weight of `acks` (same discipline as phase 1).
        weight: Ratio,
    },
}

/// The reader/writer engine of Algorithm 5 — embeddable by any process
/// that wants to read or write the register.
#[derive(Debug)]
pub struct DynOpDriver<V> {
    id: ProcessId,
    cfg: RpConfig,
    actor_base: usize,
    options: DynOptions,
    /// The process's current set of completed changes `C`.
    pub changes: ChangeSet,
    op_cnt: u64,
    phase: DynPhase<V>,
    /// Completed operations, oldest first.
    pub completed: Vec<DynCompletedOp<V>>,
    /// The armed rebroadcast timer, if [`DynOptions::retry`] is on and an
    /// operation is in flight.
    retry_timer: Option<TimerId>,
    /// Rebroadcasts already spent on the current operation attempt.
    attempts: u32,
}

impl<V: Value> DynOpDriver<V> {
    /// Creates a driver whose initial `C` is the conventional initial set.
    pub fn new(id: ProcessId, cfg: RpConfig, actor_base: usize, options: DynOptions) -> Self {
        DynOpDriver {
            changes: ChangeSet::from_initial_weights(&cfg.initial_weights),
            id,
            cfg,
            actor_base,
            options,
            op_cnt: 0,
            phase: DynPhase::Idle,
            completed: Vec::new(),
            retry_timer: None,
            attempts: 0,
        }
    }

    /// Whether an operation is in flight.
    pub fn is_busy(&self) -> bool {
        !matches!(self.phase, DynPhase::Idle)
    }

    /// A canonical digest of the driver's logical state, for the
    /// model-checking explorer. Invocation times and timer identities are
    /// excluded — two schedules reaching the same protocol state at
    /// different simulated clocks must collide.
    pub fn state_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.id.hash(&mut h);
        self.op_cnt.hash(&mut h);
        self.changes.digest().hash(&mut h);
        self.attempts.hash(&mut h);
        self.retry_timer.is_some().hash(&mut h);
        match &self.phase {
            DynPhase::Idle => 0u8.hash(&mut h),
            DynPhase::One {
                op,
                obj,
                write_value,
                invoke: _,
                restarts,
                replies,
                weight,
            } => {
                (1u8, op, obj, write_value, restarts, replies, weight).hash(&mut h);
            }
            DynPhase::Two {
                op,
                obj,
                write_value,
                invoke: _,
                restarts,
                chosen,
                acks,
                weight,
            } => {
                (2u8, op, obj, write_value, restarts, chosen, acks, weight).hash(&mut h);
            }
        }
        for c in &self.completed {
            (c.obj, &c.kind, c.restarts).hash(&mut h);
        }
        h.finish()
    }

    /// Begins `read()` (write value `None`) or `write(v)` on the
    /// [default object](ObjectId::DEFAULT).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin<M: Message>(
        &mut self,
        write_value: Option<V>,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) {
        self.begin_obj(ObjectId::DEFAULT, write_value, ctx, wrap);
    }

    /// Begins `read(obj)` (write value `None`) or `write(obj, v)`. All
    /// objects share this driver's change set `C` and quorum judgement —
    /// only the register addressed by the two phases differs.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_obj<M: Message>(
        &mut self,
        obj: ObjectId,
        write_value: Option<V>,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) {
        assert!(!self.is_busy(), "operation already in flight");
        self.op_cnt += 1;
        self.phase = DynPhase::One {
            op: self.op_cnt,
            obj,
            write_value,
            invoke: ctx.now(),
            restarts: 0,
            replies: Default::default(),
            weight: Ratio::ZERO,
        };
        self.attempts = 0;
        self.send_phase1(ctx, wrap);
        self.arm_retry(ctx);
    }

    /// (Re)arms the rebroadcast timer for the current operation, with the
    /// delay doubled per attempt already spent. No-op unless
    /// [`DynOptions::retry`] is configured.
    fn arm_retry<M: Message>(&mut self, ctx: &mut Context<'_, M>) {
        let Some(rp) = self.options.retry else { return };
        if let Some(t) = self.retry_timer.take() {
            ctx.cancel_timer(t);
        }
        let delay = rp.base.saturating_mul(1u64 << self.attempts.min(16));
        self.retry_timer = Some(ctx.set_timer(delay, self.op_cnt));
    }

    /// Disarms the rebroadcast timer (operation finished or superseded).
    fn disarm_retry<M: Message>(&mut self, ctx: &mut Context<'_, M>) {
        if let Some(t) = self.retry_timer.take() {
            ctx.cancel_timer(t);
        }
        self.attempts = 0;
    }

    /// Timer callback: rebroadcasts the current phase if the operation the
    /// timer was armed for is still in flight (see [`RetryPolicy`]).
    /// Embedding actors forward [`Actor::on_timer`] here.
    pub fn on_timer<M: Message>(
        &mut self,
        tag: u64,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) {
        let Some(rp) = self.options.retry else { return };
        let cur_op = match &self.phase {
            DynPhase::One { op, .. } | DynPhase::Two { op, .. } => *op,
            DynPhase::Idle => return,
        };
        if tag != cur_op {
            return; // stale timer from a superseded attempt
        }
        self.retry_timer = None;
        if self.attempts >= rp.max_attempts {
            return; // give up rebroadcasting; the op stays pending
        }
        self.attempts += 1;
        match &self.phase {
            DynPhase::One { .. } => self.send_phase1(ctx, wrap),
            DynPhase::Two {
                op, obj, chosen, ..
            } => {
                // Same op number, same chosen register: a server that
                // already adopted it (or something newer) acks without
                // effect, and the driver's ack set dedupes by ServerId —
                // the write cannot double-apply.
                let (op, obj, reg) = (*op, *obj, chosen.clone());
                for i in 0..self.cfg.n {
                    ctx.send(
                        ActorId(self.actor_base + i),
                        wrap(DynMsg::W {
                            op,
                            obj,
                            reg: reg.clone(),
                            changes: self.cs_payload(),
                        }),
                    );
                }
            }
            DynPhase::Idle => unreachable!("checked above"),
        }
        self.arm_retry(ctx);
    }

    /// Client-side journal hygiene: a client's journal exists only to feed
    /// its own `delta_since` — but clients never *serve* deltas (they send
    /// summaries or full sets), so beyond a small tail the journal is dead
    /// weight. Compacts on the configured cadence; no-op by default.
    fn maybe_compact(&mut self) {
        if let Some(cad) = self.options.checkpoint {
            if cad.due(self.changes.journal_len()) {
                self.changes.compact_journal(cad.min_retain);
            }
        }
    }

    /// The wire reference this client attaches to its `R`/`W` requests: an
    /// O(1) summary under [`WireMode::Negotiate`] (the server only needs
    /// to *compare*), the whole set under [`WireMode::ForceFull`].
    fn cs_payload(&self) -> CsRef {
        match self.options.wire {
            WireMode::Negotiate => CsRef::summary(&self.changes),
            // Attaching `C` is a reference-count bump: the n messages of a
            // round share one copy-on-write storage.
            WireMode::ForceFull => CsRef::Full(self.changes.clone()),
        }
    }

    fn send_phase1<M: Message>(
        &mut self,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) {
        let (op, obj) = match &self.phase {
            DynPhase::One { op, obj, .. } => (*op, *obj),
            _ => unreachable!("send_phase1 outside phase 1"),
        };
        for i in 0..self.cfg.n {
            ctx.send(
                ActorId(self.actor_base + i),
                wrap(DynMsg::R {
                    op,
                    obj,
                    changes: self.cs_payload(),
                }),
            );
        }
    }

    /// Restarts the whole operation under the (already reconciled) newer
    /// `C` (Algorithm 5 lines 14–16 / 30–32).
    fn restart<M: Message>(
        &mut self,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) {
        self.op_cnt += 1;
        let (obj, write_value, invoke, restarts) =
            match std::mem::replace(&mut self.phase, DynPhase::Idle) {
                DynPhase::One {
                    obj,
                    write_value,
                    invoke,
                    restarts,
                    ..
                } => (obj, write_value, invoke, restarts),
                DynPhase::Two {
                    obj,
                    write_value,
                    invoke,
                    restarts,
                    chosen,
                    ..
                } => {
                    // A write restarted from phase 2 re-runs phase 1 with its
                    // original value; a read re-runs phase 1 discarding the
                    // previously chosen register.
                    let _ = chosen;
                    (obj, write_value, invoke, restarts)
                }
                DynPhase::Idle => unreachable!("restart on idle driver"),
            };
        self.phase = DynPhase::One {
            op: self.op_cnt,
            obj,
            write_value,
            invoke,
            restarts: restarts + 1,
            replies: Default::default(),
            weight: Ratio::ZERO,
        };
        self.attempts = 0;
        self.send_phase1(ctx, wrap);
        self.arm_retry(ctx);
    }

    /// Feeds a client-side message. Returns the completed operation when the
    /// invocation finishes.
    pub fn on_message<M: Message>(
        &mut self,
        from: ActorId,
        msg: &DynMsg<V>,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) -> Option<DynCompletedOp<V>> {
        let sid = ServerId((from.index() - self.actor_base) as u32);
        match msg {
            DynMsg::RAck {
                op,
                obj,
                reg,
                changes,
                accepted,
            } => {
                let (cur_op, cur_obj) = match &self.phase {
                    DynPhase::One { op, obj, .. } => (*op, *obj),
                    _ => return None,
                };
                if *op != cur_op || *obj != cur_obj {
                    return None;
                }
                if !accepted && self.options.restart_on_stale {
                    // Two kinds of mismatch. If the server's reference
                    // taught us changes we lacked, restart the operation
                    // (Algorithm 5 lines 14–16). If instead the server is
                    // *behind* us (e.g. frozen mid-refresh) — the reference
                    // added nothing — restarting teaches us nothing and
                    // livelocks; re-poll just that server. The re-poll
                    // presents our (possibly unchanged) digest again; a
                    // server whose delta failed to resolve degrades its
                    // next reply to `Full`, keeping the exchange bounded.
                    let learned = self.changes.apply_ref(changes).learned();
                    self.maybe_compact();
                    if learned {
                        self.restart(ctx, wrap);
                    } else {
                        ctx.send(
                            from,
                            wrap(DynMsg::R {
                                op: cur_op,
                                obj: cur_obj,
                                changes: self.cs_payload(),
                            }),
                        );
                    }
                    return None;
                }
                let sid_weight = self.changes.server_weight(sid);
                let DynPhase::One {
                    write_value,
                    invoke,
                    restarts,
                    replies,
                    weight,
                    ..
                } = &mut self.phase
                else {
                    return None;
                };
                if replies.insert(sid, reg.clone()).is_none() {
                    // First reply from this server: O(1) accumulator update
                    // (re-polled servers replace their register but count
                    // their weight once).
                    *weight += sid_weight;
                }
                let quorum = *weight > self.cfg.quorum_threshold();
                if quorum {
                    let maxreg = replies
                        .values()
                        .max_by_key(|r| r.tag)
                        .expect("nonempty")
                        .clone();
                    let is_read = write_value.is_none();
                    // The weighted fast path: the repliers already storing
                    // the max tag, and their cumulative weight under the
                    // same frozen `C` the phase accumulated against. Every
                    // counted replier *accepted* under that `C`, which is
                    // what makes these the replier-consistent weights the
                    // rule requires.
                    let mut fresh: BTreeSet<ServerId> = BTreeSet::new();
                    let mut fresh_weight = Ratio::ZERO;
                    if is_read && self.options.read == ReadMode::FastPath {
                        for (s, r) in replies.iter() {
                            if r.tag == maxreg.tag {
                                fresh.insert(*s);
                                fresh_weight += self.changes.server_weight(*s);
                            }
                        }
                        #[allow(unused_mut)]
                        let mut fast = awr_quorum::fast_path_read_quorum(
                            fresh_weight,
                            self.cfg.initial_total(),
                        );
                        #[cfg(feature = "mutate")]
                        {
                            use awr_sim::mutate::{armed, Mutation};
                            if armed(Mutation::DisarmFastPathWeightCheck) {
                                fast = true;
                            }
                        }
                        if fast {
                            // One phase suffices: the max-tag repliers form
                            // a quorum that already stores the value, so
                            // the write-back would change no server state —
                            // their phase-1 acks double as its acks.
                            let done = DynCompletedOp {
                                obj: cur_obj,
                                kind: OpKind::Read(maxreg.value.clone()),
                                invoke: *invoke,
                                response: ctx.now(),
                                restarts: *restarts,
                            };
                            self.phase = DynPhase::Idle;
                            self.completed.push(done.clone());
                            self.disarm_retry(ctx);
                            ctx.record_counter("read_fastpath_hit", 1);
                            return Some(done);
                        }
                        ctx.record_counter("read_fastpath_miss", 1);
                    }
                    let (chosen, wv) = match write_value.take() {
                        None => (maxreg, None),
                        Some(v) => (
                            TaggedValue::new(Tag::new(maxreg.tag.ts + 1, self.id), v.clone()),
                            Some(v),
                        ),
                    };
                    let (op, invoke, restarts) = (cur_op, *invoke, *restarts);
                    // Targeted write-back: fresh repliers already store
                    // `chosen` and accepted under this `C`, so they count
                    // as acks without being re-contacted (their phase-1
                    // ack is what a zero-delay `W` round trip would have
                    // produced) and `W` goes only to the stale repliers,
                    // whose weight tops the quorum up — fresh + stale is
                    // exactly the phase-1 quorum. An empty `fresh` (reads
                    // under TwoPhase, every write) degenerates to the
                    // paper's full broadcast.
                    let stale: Vec<ServerId> = replies
                        .keys()
                        .filter(|s| !fresh.contains(s))
                        .copied()
                        .collect();
                    let full_fanout = fresh.is_empty();
                    if is_read && self.options.read == ReadMode::FastPath {
                        let fan = if full_fanout { self.cfg.n } else { stale.len() };
                        ctx.record_sample("read_writeback_fanout", fan as u64);
                    }
                    self.phase = DynPhase::Two {
                        op,
                        obj: cur_obj,
                        write_value: wv,
                        invoke,
                        restarts,
                        chosen: chosen.clone(),
                        acks: fresh,
                        weight: fresh_weight,
                    };
                    let base = self.actor_base;
                    ctx.broadcast_filter(
                        (0..self.cfg.n).map(|i| ActorId(base + i)),
                        wrap(DynMsg::W {
                            op,
                            obj: cur_obj,
                            reg: chosen.clone(),
                            changes: self.cs_payload(),
                        }),
                        |a| full_fanout || stale.iter().any(|s| base + s.index() == a.index()),
                    );
                }
                None
            }
            DynMsg::WAck {
                op,
                obj,
                changes,
                accepted,
            } => {
                let (cur_op, cur_obj) = match &self.phase {
                    DynPhase::Two { op, obj, .. } => (*op, *obj),
                    _ => return None,
                };
                if *op != cur_op || *obj != cur_obj {
                    return None;
                }
                if !accepted && self.options.restart_on_stale {
                    let learned = self.changes.apply_ref(changes).learned();
                    self.maybe_compact();
                    if learned {
                        self.restart(ctx, wrap);
                    } else if let DynPhase::Two { chosen, .. } = &self.phase {
                        // Re-poll the behind server with the same write.
                        let reg = chosen.clone();
                        ctx.send(
                            from,
                            wrap(DynMsg::W {
                                op: cur_op,
                                obj: cur_obj,
                                reg,
                                changes: self.cs_payload(),
                            }),
                        );
                    }
                    return None;
                }
                let sid_weight = self.changes.server_weight(sid);
                let DynPhase::Two {
                    write_value,
                    invoke,
                    restarts,
                    chosen,
                    acks,
                    weight,
                    ..
                } = &mut self.phase
                else {
                    return None;
                };
                if acks.insert(sid) {
                    *weight += sid_weight;
                }
                let quorum = *weight > self.cfg.quorum_threshold();
                if quorum {
                    let done = DynCompletedOp {
                        obj: cur_obj,
                        kind: match write_value.take() {
                            None => OpKind::Read(chosen.value.clone()),
                            Some(v) => OpKind::Write(v),
                        },
                        invoke: *invoke,
                        response: ctx.now(),
                        restarts: *restarts,
                    };
                    self.phase = DynPhase::Idle;
                    self.completed.push(done.clone());
                    self.disarm_retry(ctx);
                    return Some(done);
                }
                None
            }
            _ => None,
        }
    }
}

/// A dynamic-weighted storage server: Algorithm 6 over a keyed object
/// space, plus the embedded Algorithm 4 engine and the register-refresh
/// rule.
///
/// One server hosts *many* registers — a map keyed by [`ObjectId`] — under
/// a *single* change set `C`: the weighted configuration is shared
/// infrastructure beneath every object, so one reassignment re-weights the
/// whole shard and one register refresh (on weight gain) catches up every
/// key at once. Registers are stored sparsely: a key is absent until some
/// write for it is adopted, and an absent key reads as the bottom register.
#[derive(Debug)]
pub struct DynServer<V> {
    core: TransferCore,
    registers: BTreeMap<ObjectId, TaggedValue<V>>,
    options: DynOptions,
    /// Queue of change applications awaiting their turn (each may require a
    /// register refresh first).
    pending_applies: VecDeque<ApplyRequest>,
    /// The in-flight refresh read, if any.
    refresh: Option<RefreshRead<V>>,
    refresh_ops: u64,
    /// Per-client negotiation memory: the client digest the last reject
    /// reply cut a delta against. A client re-presenting the same digest
    /// means that delta did not resolve — the next reply degrades to
    /// `Full`. One u64 per client keeps the state machine bounded.
    nego: BTreeMap<ActorId, u64>,
    /// Completed own transfers (`⟨Complete, c⟩` log).
    pub transfer_log: Vec<TransferOutcome>,
    /// Number of register refreshes performed (metric for E10c).
    pub refreshes: u64,
    /// Durable backend, if this server runs durably. Every adopted change
    /// and register lands in its WAL before the triggering callback's
    /// outgoing messages are released (the [`Context`] buffers effects
    /// until the callback returns), so anything this server ever *said* is
    /// recoverable from what it *stored*.
    storage: Option<StorageHandle<V>>,
    /// Digest of `core.changes()` as of the last persist point. The WAL
    /// diff is `delta_since(persisted_digest)` — the journal suffix grown
    /// since that state — which keeps persisting O(new changes). The
    /// anchor is a digest, not a length: a sync-round merge can *adopt* a
    /// peer's storage wholesale (journal and all), after which length
    /// arithmetic would mis-address the suffix; when no journal suffix
    /// expresses the growth, persisting falls back to a full snapshot.
    persisted_digest: u64,
    /// Last change-set digest each client presented, feeding the
    /// compaction retention heuristic: the journal keeps enough depth to
    /// cut deltas for every digest still in sight.
    peer_digests: BTreeMap<ActorId, u64>,
    /// Set by [`DynServer::recover`]: on the next [`Actor::on_start`] this
    /// server runs the rejoin round (change-set sync + register refresh)
    /// before resuming normal service.
    rejoin: bool,
}

impl<V: Value> DynServer<V> {
    /// Creates the server for `me` under `cfg`. Servers must occupy world
    /// indices `0..n`.
    pub fn new(cfg: RpConfig, me: ServerId, options: DynOptions) -> DynServer<V> {
        let core = TransferCore::new(cfg, me, 0);
        let persisted_digest = core.changes().digest();
        DynServer {
            core,
            registers: BTreeMap::new(),
            options,
            pending_applies: VecDeque::new(),
            refresh: None,
            refresh_ops: 0,
            nego: BTreeMap::new(),
            transfer_log: Vec::new(),
            refreshes: 0,
            storage: None,
            persisted_digest,
            peer_digests: BTreeMap::new(),
            rejoin: false,
        }
    }

    /// Creates a *fresh* durable server: like [`DynServer::new`], but every
    /// subsequently adopted change and register is appended to `storage`'s
    /// WAL (and snapshotted on the [`DynOptions::checkpoint`] cadence).
    /// The initial changes are derived from `cfg`, never logged — recovery
    /// re-derives them the same way.
    pub fn with_storage(
        cfg: RpConfig,
        me: ServerId,
        options: DynOptions,
        storage: StorageHandle<V>,
    ) -> DynServer<V> {
        let mut s = DynServer::new(cfg, me, options);
        s.storage = Some(storage);
        s
    }

    /// Reconstructs a crashed server from its durable state: loads the
    /// snapshot (if any), replays the WAL suffix over it, and resumes the
    /// reassignment engine via [`TransferCore::recover`] (which re-derives
    /// a safe logical clock from the recovered set; in-flight transfer
    /// state is legitimately lost — a crash-stop observer cannot tell a
    /// recovered server from a slow one that never started those rounds).
    /// The returned server rejoins on its next [`Actor::on_start`]: it
    /// syncs its change set off every peer ([`DynMsg::SyncR`]) and runs a
    /// register refresh, the same count-based read that guards weight
    /// gains.
    pub fn recover(
        cfg: RpConfig,
        me: ServerId,
        options: DynOptions,
        storage: StorageHandle<V>,
    ) -> DynServer<V> {
        let mut changes = ChangeSet::from_initial_weights(&cfg.initial_weights);
        let mut registers: BTreeMap<ObjectId, TaggedValue<V>> = BTreeMap::new();
        if let Some((snapshot, wal)) = storage.load() {
            if let Some(snap) = snapshot {
                changes = snap.changes;
                registers = snap.registers;
            }
            for record in wal {
                match record {
                    WalRecord::Change(c) => {
                        changes.insert(c);
                    }
                    WalRecord::Register(obj, reg) => match registers.get_mut(&obj) {
                        Some(cur) => {
                            cur.adopt_if_newer(&reg);
                        }
                        None => {
                            registers.insert(obj, reg);
                        }
                    },
                }
            }
        }
        let persisted_digest = changes.digest();
        DynServer {
            core: TransferCore::recover(cfg, me, 0, changes),
            registers,
            options,
            pending_applies: VecDeque::new(),
            refresh: None,
            refresh_ops: 0,
            nego: BTreeMap::new(),
            transfer_log: Vec::new(),
            refreshes: 0,
            storage: Some(storage),
            persisted_digest,
            peer_digests: BTreeMap::new(),
            rejoin: true,
        }
    }

    /// Appends the change-set growth since the last persist point to the
    /// WAL. Must run before [`DynServer::maybe_checkpoint`] (compaction
    /// drops journal entries; the persist-before-compact order keeps the
    /// anchor addressable). When the set did not grow linearly from the
    /// persisted state — a rejoin sync merged a peer's set wholesale, or a
    /// second compaction outran the anchor — no journal suffix expresses
    /// the diff, and the whole state is checkpointed instead (the snapshot
    /// also resets the WAL, so durable cost stays bounded).
    fn persist_new_changes(&mut self) {
        let Some(st) = &self.storage else { return };
        let digest = self.core.changes().digest();
        if digest == self.persisted_digest {
            return;
        }
        match self.core.changes().delta_since(self.persisted_digest) {
            Some(suffix) => {
                for c in suffix {
                    st.append(WalRecord::Change(*c));
                }
            }
            None => st.install_snapshot(Snapshot {
                changes: self.core.changes().clone(),
                registers: self.registers.clone(),
            }),
        }
        self.persisted_digest = digest;
    }

    /// Checkpoint pass, on the [`DynOptions::checkpoint`] cadence:
    /// truncates the in-memory journal (keeping enough depth to serve
    /// deltas for every client digest recently seen) and, when a durable
    /// backend is attached and its WAL has grown past the cadence, folds
    /// WAL + state into a fresh snapshot.
    fn maybe_checkpoint(&mut self) {
        let Some(cad) = self.options.checkpoint else {
            return;
        };
        if cad.due(self.core.changes().journal_len()) {
            let deepest = self
                .peer_digests
                .values()
                .filter_map(|d| self.core.changes().delta_since(*d).map(<[_]>::len))
                .max()
                .unwrap_or(0);
            self.core.compact_journal(cad.retain(deepest));
        }
        if let Some(st) = &self.storage {
            if cad.due(st.wal_len()) {
                st.install_snapshot(Snapshot {
                    changes: self.core.changes().clone(),
                    registers: self.registers.clone(),
                });
            }
        }
    }

    /// Harness/bench hook: merges `set` into the local `C` directly, with
    /// no protocol interaction (no acks, no register refresh). Used to
    /// pre-seed converged steady states; not part of the protocol.
    pub fn seed_changes(&mut self, set: &ChangeSet) {
        self.core.absorb_changes(set);
    }

    /// The reference attached to an *accepting* `RAck`/`WAck` (the client
    /// ignores it; a summary costs nothing, while `ForceFull` reproduces
    /// the paper-literal full-set echo).
    fn ack_payload(&self) -> CsRef {
        match self.options.wire {
            WireMode::Negotiate => CsRef::summary(self.core.changes()),
            WireMode::ForceFull => CsRef::Full(self.core.changes().clone()),
        }
    }

    /// The reference attached to a *rejecting* `RAck`/`WAck`: whatever most
    /// cheaply lets `peer` catch up to this server's `C` — a delta against
    /// the digest it presented when the journal covers the gap, `Full`
    /// otherwise, and `Full` unconditionally once a delta against the same
    /// digest has already failed to resolve (see the module docs).
    fn reject_payload(&mut self, peer: ActorId, client_ref: &CsRef) -> CsRef {
        let mine = self.core.changes();
        if self.options.wire == WireMode::ForceFull {
            return CsRef::Full(mine.clone());
        }
        let client_digest = client_ref.implied_digest();
        if self.nego.get(&peer) == Some(&client_digest) {
            // Second reject for the same client digest: the delta we cut
            // last time did not resolve. Degrade.
            self.nego.remove(&peer);
            return CsRef::Full(mine.clone());
        }
        match CsRef::for_peer(mine, client_digest) {
            r @ CsRef::Delta { .. } => {
                self.nego.insert(peer, client_digest);
                r
            }
            // A summary teaches a rejected client nothing (and equal
            // digests should have been accepted): send content.
            CsRef::Summary { .. } => {
                self.nego.remove(&peer);
                CsRef::Full(mine.clone())
            }
            r @ CsRef::Full(_) => {
                self.nego.remove(&peer);
                r
            }
        }
    }

    /// This server's id.
    pub fn server_id(&self) -> ServerId {
        self.core.server_id()
    }

    /// The local change set.
    pub fn changes(&self) -> &ChangeSet {
        self.core.changes()
    }

    /// This server's current weight.
    pub fn weight(&self) -> Ratio {
        self.core.weight()
    }

    /// The [default object](ObjectId::DEFAULT)'s register (inspection).
    pub fn register(&self) -> TaggedValue<V> {
        self.register_of(ObjectId::DEFAULT)
    }

    /// The register stored for `obj` — the bottom register if no write for
    /// that key has been adopted (inspection).
    pub fn register_of(&self, obj: ObjectId) -> TaggedValue<V> {
        self.registers
            .get(&obj)
            .cloned()
            .unwrap_or_else(TaggedValue::bottom)
    }

    /// The sparse register map (inspection).
    pub fn registers(&self) -> &BTreeMap<ObjectId, TaggedValue<V>> {
        &self.registers
    }

    /// Adopts `incoming` for `obj` if it is strictly newer than what the
    /// sparse map holds (absent = bottom). Keys are only materialized by
    /// genuinely newer registers, so an idle object costs nothing anywhere.
    /// Every adoption is WAL-logged when a durable backend is attached;
    /// returns whether the map changed.
    fn adopt_register(&mut self, obj: ObjectId, incoming: &TaggedValue<V>) -> bool {
        let adopted = match self.registers.get_mut(&obj) {
            Some(cur) => cur.adopt_if_newer(incoming),
            None => {
                if incoming.tag > Tag::bottom() {
                    self.registers.insert(obj, incoming.clone());
                    true
                } else {
                    false
                }
            }
        };
        if adopted {
            if let Some(st) = &self.storage {
                st.append(WalRecord::Register(obj, incoming.clone()));
            }
        }
        adopted
    }

    /// Completed own transfers with completion times.
    pub fn completed_transfers(&self) -> &[(TransferOutcome, Time)] {
        self.core.completed()
    }

    /// Invokes `transfer(me, to, Δ)` (weights move while reads/writes run).
    ///
    /// # Errors
    ///
    /// See [`TransferCore::transfer`].
    pub fn begin_transfer(
        &mut self,
        to: ServerId,
        delta: Ratio,
        ctx: &mut Context<'_, DynMsg<V>>,
    ) -> Result<TransferStart, TransferError> {
        let r = self.core.transfer(to, delta, ctx, DynMsg::Wr)?;
        if let TransferStart::Null(o) = &r {
            self.transfer_log.push(o.clone());
        }
        self.persist_new_changes();
        self.maybe_checkpoint();
        Ok(r)
    }

    /// Like [`DynServer::begin_transfer`], but a request arriving while a
    /// transfer is in flight queues instead of failing `Busy`; the queue
    /// drains as one batched `⟨T⟩` envelope, so this server's peers pay a
    /// single relay wave — and at most one register refresh — for the whole
    /// burst (see [`awr_core::restricted::TransferCore::transfer_queued`]).
    ///
    /// # Errors
    ///
    /// See [`awr_core::restricted::TransferCore::transfer_queued`].
    pub fn begin_transfer_queued(
        &mut self,
        to: ServerId,
        delta: Ratio,
        ctx: &mut Context<'_, DynMsg<V>>,
    ) -> Result<TransferStart, TransferError> {
        let r = self.core.transfer_queued(to, delta, ctx, DynMsg::Wr)?;
        if let TransferStart::Null(o) = &r {
            self.transfer_log.push(o.clone());
        }
        self.persist_new_changes();
        self.maybe_checkpoint();
        Ok(r)
    }

    /// Processes the apply queue: applies head requests, pausing to refresh
    /// the register when a request changes this server's own weight.
    fn drain_applies(&mut self, ctx: &mut Context<'_, DynMsg<V>>) {
        while self.refresh.is_none() {
            let Some(req) = self.pending_applies.front() else {
                return;
            };
            let needs_refresh = self.options.refresh_on_gain && req.affects(self.core.server_id());
            if needs_refresh {
                // Algorithm 4 lines 8–9: register ← read(), then apply.
                // Implemented as an n − f *count* read answered
                // unconditionally: such a set intersects every weighted
                // quorum under every Property-1 weight map, so the refresh
                // observes every completed write and can never deadlock —
                // even when f + 1 gainers refresh simultaneously (where a
                // weight-judged read provably stalls; see DESIGN.md §5).
                self.start_refresh(true, ctx);
                return; // resume in on_message when the read completes
            }
            let req = self.pending_applies.pop_front().expect("peeked");
            self.core.apply(req, ctx, DynMsg::Wr);
        }
    }

    /// What this server would present in a refresh request: the exact
    /// per-key tag map while small, a constant-size digest of it once the
    /// object count exceeds [`DynOptions::refresh_tags_cap`].
    fn refresh_have(&self) -> RefreshHave {
        if self.registers.len() <= self.options.refresh_tags_cap {
            RefreshHave::Tags(self.registers.iter().map(|(o, r)| (*o, r.tag)).collect())
        } else {
            RefreshHave::Digest {
                digest: reg_tag_digest(&self.registers),
                count: self.registers.len(),
            }
        }
    }

    /// Starts the whole-object-space count read. `for_apply` records
    /// whether the head of the apply queue is waiting on it (a weight-gain
    /// refresh) or not (a recovery rejoin): only the former may pop an
    /// apply on completion — an apply that arrived mid-rejoin still needs
    /// its *own* refresh decision in [`DynServer::drain_applies`].
    fn start_refresh(&mut self, for_apply: bool, ctx: &mut Context<'_, DynMsg<V>>) {
        self.refreshes += 1;
        self.refresh_ops += 1;
        let op = self.refresh_ops;
        self.refresh = Some(RefreshRead {
            op,
            for_apply,
            acks: BTreeSet::new(),
            best: BTreeMap::new(),
        });
        let n = self.core.config().n;
        // One read covers the whole object space: present what this server
        // holds, so repliers can elide everything it is up to date on.
        let have = self.refresh_have();
        for i in 0..n {
            ctx.send(
                ActorId(i),
                DynMsg::RefreshR {
                    op,
                    have: have.clone(),
                },
            );
        }
    }

    fn on_refresh_complete(
        &mut self,
        for_apply: bool,
        best: BTreeMap<ObjectId, TaggedValue<V>>,
        ctx: &mut Context<'_, DynMsg<V>>,
    ) {
        // Adopt the freshest value observed per object: every register this
        // server holds is now at least as new as any write completed before
        // the refresh began (Lemma 4's requirement, per key), so quorums
        // that become possible once the weight gain applies cannot serve
        // stale data through us for any object.
        for (obj, reg) in &best {
            #[cfg(feature = "mutate")]
            if awr_sim::mutate::armed(awr_sim::mutate::Mutation::SkipRefreshTagCheck) {
                // MUTATION: install the refresh outcome without the
                // strictly-newer comparison — a register adopted from an
                // in-flight write while the refresh ran can be rolled back
                // to an older tag.
                if reg.tag > Tag::bottom() {
                    self.registers.insert(*obj, reg.clone());
                    if let Some(st) = &self.storage {
                        st.append(WalRecord::Register(*obj, reg.clone()));
                    }
                }
                continue;
            }
            self.adopt_register(*obj, reg);
        }
        // The head request triggered this refresh: apply it now.
        if for_apply {
            if let Some(req) = self.pending_applies.pop_front() {
                self.core.apply(req, ctx, DynMsg::Wr);
            }
        }
        self.drain_applies(ctx);
    }
}

/// An in-flight count-based register refresh, covering every object.
#[derive(Debug)]
struct RefreshRead<V> {
    op: u64,
    /// Whether the head apply is waiting on this read (weight-gain refresh)
    /// as opposed to a recovery rejoin.
    for_apply: bool,
    /// Counted repliers (deduped — a rebroadcast or the digest-mismatch
    /// second round must not double-count a server).
    acks: BTreeSet<ActorId>,
    /// Freshest register observed so far, per object.
    best: BTreeMap<ObjectId, TaggedValue<V>>,
}

impl<V: Value> Actor for DynServer<V> {
    type Msg = DynMsg<V>;

    fn on_start(&mut self, ctx: &mut Context<'_, DynMsg<V>>) {
        if !self.rejoin {
            return;
        }
        self.rejoin = false;
        // Rejoin round (recovery only — never runs in a crash-free world):
        // ask every peer for the change-set suffix this server missed while
        // down, and catch the registers up with the same count-based read
        // that guards weight gains. Until the acks land the server answers
        // from its recovered state, which is exactly what a slow-but-alive
        // server would do — crash-stop recovery adds no new behaviours.
        let digest = self.core.changes().digest();
        let me = self.core.server_id().index();
        for i in 0..self.core.config().n {
            if i != me {
                ctx.send(ActorId(i), DynMsg::SyncR { digest });
            }
        }
        if self.refresh.is_none() {
            self.start_refresh(false, ctx);
        }
    }

    fn on_message(&mut self, from: ActorId, msg: DynMsg<V>, ctx: &mut Context<'_, DynMsg<V>>) {
        match msg {
            DynMsg::Wr(WrMsg::Invoke { to, delta }) => {
                // Management RPC: start the transfer, or queue it behind an
                // in-flight one — bursts of monitor-driven reassignments
                // batch into one ⟨T⟩ envelope per drain.
                let _ = self.begin_transfer_queued(to, delta, ctx);
            }
            DynMsg::Wr(wr) => {
                // Feed the refresh driver first: its R_A/W_A arrive as
                // DynMsg, not WrMsg, so only core traffic lands here.
                for ev in self.core.handle(from, wr, ctx, DynMsg::Wr) {
                    match ev {
                        CoreEvent::NeedApply(req) => {
                            self.pending_applies.push_back(req);
                        }
                        CoreEvent::Completed(o) => self.transfer_log.push(o),
                    }
                }
                self.drain_applies(ctx);
            }
            DynMsg::R { op, obj, changes } => {
                // Algorithm 6's accept check `C = C_i`, answered from the
                // reference without materializing the client's set. The
                // digest is remembered so journal compaction keeps enough
                // depth to cut deltas for clients still at it.
                self.peer_digests.insert(from, changes.implied_digest());
                let accepted = self.core.changes().matches_ref(&changes);
                let reply = if accepted {
                    self.nego.remove(&from);
                    self.ack_payload()
                } else {
                    self.reject_payload(from, &changes)
                };
                ctx.send(
                    from,
                    DynMsg::RAck {
                        op,
                        obj,
                        reg: self.register_of(obj),
                        changes: reply,
                        accepted,
                    },
                );
            }
            DynMsg::W {
                op,
                obj,
                reg,
                changes,
            } => {
                self.peer_digests.insert(from, changes.implied_digest());
                let accepted = self.core.changes().matches_ref(&changes);
                let reply = if accepted {
                    self.nego.remove(&from);
                    self.adopt_register(obj, &reg);
                    self.ack_payload()
                } else {
                    self.reject_payload(from, &changes)
                };
                ctx.send(
                    from,
                    DynMsg::WAck {
                        op,
                        obj,
                        changes: reply,
                        accepted,
                    },
                );
            }
            DynMsg::RefreshR { op, have } => {
                // Answered unconditionally — no C matching (see above).
                // Delta-encoding over the register *map*: a value ships only
                // when it can matter, i.e. when it is strictly newer than
                // what the refresher already holds for that key (absent =
                // bottom). In the converged case the ack is a bare header
                // however many objects the shard stores.
                match have {
                    RefreshHave::Tags(have) => {
                        let regs: BTreeMap<ObjectId, TaggedValue<V>> = self
                            .registers
                            .iter()
                            .filter(|(obj, reg)| {
                                reg.tag > have.get(obj).copied().unwrap_or_else(Tag::bottom)
                            })
                            .map(|(obj, reg)| (*obj, reg.clone()))
                            .collect();
                        ctx.send(
                            from,
                            DynMsg::RefreshAck {
                                op,
                                regs,
                                need_tags: false,
                            },
                        );
                    }
                    RefreshHave::Digest { digest, count } => {
                        // A matching digest + count means (w.h.p.) identical
                        // per-key tags — nothing newer here; ack empty. On a
                        // mismatch this replier cannot tell *which* keys
                        // differ, so it asks for the per-key round.
                        let same = count == self.registers.len()
                            && digest == reg_tag_digest(&self.registers);
                        ctx.send(
                            from,
                            DynMsg::RefreshAck {
                                op,
                                regs: BTreeMap::new(),
                                need_tags: !same,
                            },
                        );
                    }
                }
            }
            DynMsg::RefreshAck {
                op,
                regs,
                need_tags,
            } => {
                let cfg_needed = self.core.config().n - self.core.config().f;
                let mut resend_tags = false;
                let done = match self.refresh.as_mut() {
                    Some(r) if r.op == op => {
                        if need_tags {
                            // Digest mismatch: this replier needs the exact
                            // tag map before it can answer substantively.
                            // Its eventual Tags-round ack is the one that
                            // counts.
                            resend_tags = true;
                            false
                        } else {
                            r.acks.insert(from);
                            for (obj, reg) in regs {
                                #[cfg(feature = "mutate")]
                                if awr_sim::mutate::armed(
                                    awr_sim::mutate::Mutation::SkipRefreshTagCheck,
                                ) {
                                    // MUTATION: absorb without the tag
                                    // comparison — a stale replier's
                                    // register clobbers a newer best.
                                    r.best.insert(obj, reg);
                                    continue;
                                }
                                match r.best.get_mut(&obj) {
                                    Some(b) => {
                                        b.adopt_if_newer(&reg);
                                    }
                                    None => {
                                        r.best.insert(obj, reg);
                                    }
                                }
                            }
                            r.acks.len() >= cfg_needed
                        }
                    }
                    _ => false,
                };
                if resend_tags {
                    let have = RefreshHave::Tags(
                        self.registers.iter().map(|(o, r)| (*o, r.tag)).collect(),
                    );
                    ctx.send(from, DynMsg::RefreshR { op, have });
                }
                if done {
                    let r = self.refresh.take().expect("checked");
                    self.on_refresh_complete(r.for_apply, r.best, ctx);
                }
            }
            DynMsg::SyncR { digest } => {
                // A recovering peer presented the digest of what it salvaged;
                // answer with the cheapest reference that covers the gap (a
                // delta when the journal reaches back that far). Equal
                // digests come back as a no-op summary.
                let changes = CsRef::for_peer(self.core.changes(), digest);
                ctx.send(from, DynMsg::SyncAck { changes });
            }
            DynMsg::SyncAck { changes } => {
                // One absorb per peer suffices: delta adds land even when
                // the base digest has moved on (set union of facts), and a
                // peer whose journal could not cover the gap sent `Full`.
                self.core.absorb_ref(&changes);
            }
            DynMsg::RAck { .. } | DynMsg::WAck { .. } => {
                // Client-side replies; a server has no client driver.
            }
        }
        // Durability epilogue, once per delivery: WAL whatever `C` gained,
        // then (on cadence) compact the journal and roll a snapshot. The
        // Context buffers outgoing sends until this callback returns, so
        // state is persisted before any message that presupposes it leaves.
        self.persist_new_changes();
        self.maybe_checkpoint();
    }

    fn state_digest(&self) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.core.state_digest().hash(&mut h);
        // BTreeMaps/Sets iterate sorted, so hashing them whole is
        // deterministic; everything time-valued is excluded.
        self.registers.hash(&mut h);
        self.pending_applies.len().hash(&mut h);
        for req in &self.pending_applies {
            req.new_changes.hash(&mut h);
            req.wc_ack.map(|(a, op)| (a.index(), op)).hash(&mut h);
        }
        match &self.refresh {
            None => false.hash(&mut h),
            Some(r) => {
                true.hash(&mut h);
                (r.op, r.for_apply).hash(&mut h);
                let acks: Vec<usize> = r.acks.iter().map(|a| a.index()).collect();
                acks.hash(&mut h);
                r.best.hash(&mut h);
            }
        }
        self.refresh_ops.hash(&mut h);
        self.refreshes.hash(&mut h);
        for (a, d) in &self.nego {
            (a.index(), d).hash(&mut h);
        }
        self.transfer_log.hash(&mut h);
        self.persisted_digest.hash(&mut h);
        for (a, d) in &self.peer_digests {
            (a.index(), d).hash(&mut h);
        }
        self.rejoin.hash(&mut h);
        // Durable content is digested separately by the explorer (it can
        // reach the backend through the harness); here only presence.
        self.storage.is_some().hash(&mut h);
        Some(h.finish())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A dynamic-weighted storage client.
#[derive(Debug)]
pub struct DynClient<V> {
    /// The embedded Algorithm 5 engine.
    pub driver: DynOpDriver<V>,
}

impl<V: Value> DynClient<V> {
    /// Creates a client.
    pub fn new(id: ProcessId, cfg: RpConfig, options: DynOptions) -> DynClient<V> {
        DynClient {
            driver: DynOpDriver::new(id, cfg, 0, options),
        }
    }

    /// Begins a read of the [default object](ObjectId::DEFAULT).
    ///
    /// # Panics
    ///
    /// Panics if an operation is in flight.
    pub fn begin_read(&mut self, ctx: &mut Context<'_, DynMsg<V>>) {
        self.driver.begin(None, ctx, |m| m);
    }

    /// Begins a write to the [default object](ObjectId::DEFAULT).
    ///
    /// # Panics
    ///
    /// Panics if an operation is in flight.
    pub fn begin_write(&mut self, v: V, ctx: &mut Context<'_, DynMsg<V>>) {
        self.driver.begin(Some(v), ctx, |m| m);
    }

    /// Begins a read of `obj`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is in flight.
    pub fn begin_read_obj(&mut self, obj: ObjectId, ctx: &mut Context<'_, DynMsg<V>>) {
        self.driver.begin_obj(obj, None, ctx, |m| m);
    }

    /// Begins a write of `v` to `obj`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is in flight.
    pub fn begin_write_obj(&mut self, obj: ObjectId, v: V, ctx: &mut Context<'_, DynMsg<V>>) {
        self.driver.begin_obj(obj, Some(v), ctx, |m| m);
    }

    /// Converts completed ops into history entries for client index `ci`.
    pub fn history_ops(&self, ci: usize) -> Vec<HistOp<V>> {
        self.driver
            .completed
            .iter()
            .map(|c| HistOp {
                client: ci,
                obj: c.obj,
                kind: c.kind.clone(),
                invoke: c.invoke,
                response: c.response,
            })
            .collect()
    }
}

impl<V: Value> Actor for DynClient<V> {
    type Msg = DynMsg<V>;

    fn on_message(&mut self, from: ActorId, msg: DynMsg<V>, ctx: &mut Context<'_, DynMsg<V>>) {
        let _ = self.driver.on_message(from, &msg, ctx, |m| m);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, DynMsg<V>>) {
        self.driver.on_timer(tag, ctx, |m| m);
    }

    fn state_digest(&self) -> Option<u64> {
        Some(self.driver.state_digest())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod driver_tests {
    use super::*;
    use crate::harness::StorageHarness;
    use awr_core::RpConfig;
    use awr_sim::UniformLatency;
    use awr_types::ClientId;

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    #[test]
    fn writer_value_survives_restarts() {
        // A writer whose phase 1 collides with a weight change restarts but
        // must still write its original value.
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(7, 2),
            2,
            21,
            UniformLatency::new(1_000, 40_000),
            DynOptions::default(),
        );
        // Make client 0's view stale: complete a transfer it never hears of.
        h.transfer_and_wait(s(3), s(0), Ratio::dec("0.2")).unwrap();
        h.settle();
        let done = h.write(0, 777).unwrap();
        assert!(done.restarts > 0, "stale writer should restart");
        let (v, _) = h.read(1).unwrap();
        assert_eq!(v, Some(777), "value lost across restart");
    }

    #[test]
    fn stale_op_replies_are_ignored() {
        // Drive a driver manually: replies tagged with an old op number
        // must not advance the current operation.
        let cfg = RpConfig::uniform(3, 1);
        let mut h: StorageHarness<u64> = StorageHarness::build(
            cfg.clone(),
            1,
            22,
            UniformLatency::new(1_000, 2_000),
            DynOptions::default(),
        );
        h.write(0, 1).unwrap();
        let c0 = h.client_actor(0);
        // Feed a forged RAck for a long-gone op id through the world.
        let forged = DynMsg::RAck {
            op: 9999,
            obj: ObjectId::DEFAULT,
            reg: TaggedValue::new(Tag::new(99, ProcessId::Client(ClientId(7))), 424242u64),
            changes: CsRef::Full(ChangeSet::from_initial_weights(&cfg.initial_weights)),
            accepted: true,
        };
        h.world.inject(h.server_actor(s(0)), c0, forged);
        h.settle();
        // The forged high tag must not have leaked into any result.
        let (v, _) = h.read(0).unwrap();
        assert_eq!(v, Some(1));
    }

    #[test]
    fn refresh_metrics_zero_without_gains() {
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(5, 1),
            1,
            23,
            UniformLatency::new(1_000, 10_000),
            DynOptions::default(),
        );
        h.write(0, 1).unwrap();
        h.read(0).unwrap();
        h.settle();
        for i in 0..5 {
            let srv = h
                .world
                .actor::<DynServer<u64>>(h.server_actor(s(i)))
                .unwrap();
            assert_eq!(srv.refreshes, 0, "no transfer → no refresh");
        }
    }

    #[test]
    fn null_transfers_do_not_touch_registers_or_weights() {
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(5, 1),
            1,
            24,
            UniformLatency::new(1_000, 10_000),
            DynOptions::default(),
        );
        h.write(0, 9).unwrap();
        // floor = 5/8; Δ = 0.4 needs 1 > 1.025 → null.
        let out = h.transfer_and_wait(s(1), s(0), Ratio::dec("0.4")).unwrap();
        assert!(!out.is_effective());
        h.settle();
        for i in 0..5 {
            let srv = h
                .world
                .actor::<DynServer<u64>>(h.server_actor(s(i)))
                .unwrap();
            assert_eq!(srv.weight(), Ratio::ONE);
            assert_eq!(srv.refreshes, 0);
        }
        let (v, _) = h.read(0).unwrap();
        assert_eq!(v, Some(9));
    }

    #[test]
    fn queued_transfer_burst_batches_and_stays_linearizable() {
        use crate::lin::check_linearizable;
        use awr_core::audit_transfers;

        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(7, 2),
            2,
            31,
            UniformLatency::new(1_000, 40_000),
            DynOptions::default(),
        );
        h.write(0, 1).unwrap();
        // A burst of three donations from s3: two queue behind the first
        // and drain as one batched ⟨T⟩ envelope.
        h.transfer_queued(s(3), s(0), Ratio::dec("0.05")).unwrap();
        h.transfer_queued(s(3), s(0), Ratio::dec("0.05")).unwrap();
        h.transfer_queued(s(3), s(0), Ratio::dec("0.05")).unwrap();
        let (v, _) = h.read(1).unwrap();
        assert_eq!(v, Some(1));
        h.settle();
        check_linearizable(&h.history()).expect("linearizable under batched transfers");
        let report = audit_transfers(h.config(), &h.all_completed_transfers());
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.effective, 3);
        // Two RB instances (eager relay = (n−1)² T messages each), and the
        // gainer refreshed once per *batch*, not once per transfer.
        assert_eq!(h.world.metrics().sent_of_kind("T"), 2 * 36);
        let s0 = h
            .world
            .actor::<DynServer<u64>>(h.server_actor(s(0)))
            .unwrap();
        assert_eq!(s0.refreshes, 2);
        assert_eq!(s0.weight(), Ratio::dec("1.15"));
    }

    #[test]
    fn refresh_acks_are_delta_encoded_for_large_values() {
        // A fat register: shipping it in every RefreshAck would cost
        // n × ~0.5 KB per refresh. With delta encoding, a replier whose
        // register is no newer than the refresher's sends a 16-byte header.
        type Fat = [u64; 64];
        let mut h: StorageHarness<Fat> = StorageHarness::build(
            RpConfig::uniform(5, 1),
            1,
            33,
            UniformLatency::new(1_000, 10_000),
            DynOptions::default(),
        );
        h.write(0, [7u64; 64]).unwrap();
        // Weight moves → both endpoints refresh before applying. Every
        // server already holds the written register, so every ack elides
        // its value.
        h.transfer_and_wait(s(1), s(0), Ratio::dec("0.1")).unwrap();
        h.settle();
        let s0 = h
            .world
            .actor::<DynServer<Fat>>(h.server_actor(s(0)))
            .unwrap();
        assert_eq!(s0.refreshes, 1);
        let m = h.world.metrics();
        assert!(m.sent_of_kind("RefA") >= 5);
        let full = std::mem::size_of::<TaggedValue<Fat>>() as f64;
        assert_eq!(
            m.mean_bytes_of_kind("RefA"),
            16.0,
            "every ack should elide the register (full would be ≥ {full})"
        );
        // The refresh outcome is unchanged: the register survives.
        let (v, _) = h.read(0).unwrap();
        assert_eq!(v, Some([7u64; 64]));
    }

    #[test]
    fn options_default_matches_paper() {
        let o = DynOptions::default();
        assert!(o.restart_on_stale);
        assert!(o.refresh_on_gain);
        // Reads default to the weighted fast path; the paper-literal
        // two-phase wire stays available as the equivalence baseline.
        assert_eq!(o.read, ReadMode::FastPath);
    }

    #[test]
    fn quiescent_read_takes_one_phase() {
        // After a settled write, every server stores the max tag, so a
        // read's phase-1 repliers are all fresh: no W traffic at all.
        let mut h = StorageHarness::<u64>::build(
            RpConfig::uniform(5, 1),
            1,
            11,
            UniformLatency::new(1_000, 2_000),
            DynOptions::default(),
        );
        h.write(0, 42).expect("write");
        h.settle();
        let before = h.world.metrics().clone();
        let (v, _) = h.read(0).expect("read");
        assert_eq!(v, Some(42));
        let window = h.world.metrics().since(&before);
        assert_eq!(window.sent_of_kind("W"), 0, "fast path must skip phase 2");
        assert_eq!(window.counter("read_fastpath_hit"), 1);
        assert_eq!(window.counter("read_fastpath_miss"), 0);
    }

    #[test]
    fn two_phase_mode_keeps_full_write_back() {
        let mut h = StorageHarness::<u64>::build(
            RpConfig::uniform(5, 1),
            1,
            11,
            UniformLatency::new(1_000, 2_000),
            DynOptions {
                read: ReadMode::TwoPhase,
                ..DynOptions::default()
            },
        );
        h.write(0, 42).expect("write");
        h.settle();
        let before = h.world.metrics().clone();
        let (v, _) = h.read(0).expect("read");
        assert_eq!(v, Some(42));
        let window = h.world.metrics().since(&before);
        assert_eq!(
            window.sent_of_kind("W"),
            5,
            "two-phase reads broadcast W to all"
        );
        assert_eq!(window.counter("read_fastpath_hit"), 0);
    }
}
