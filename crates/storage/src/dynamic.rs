//! Dynamic-weighted atomic storage (paper §VII, Algorithms 5 and 6) over a
//! delta-aware wire protocol and a *keyed object space*.
//!
//! Multi-writer ABD where quorums are judged by *weight* under the most
//! up-to-date set of completed changes `C`, and weights move via the
//! restricted pairwise weight reassignment protocol (Algorithm 4, embedded
//! through [`TransferCore`]). Each server hosts a whole *map* of registers
//! keyed by [`ObjectId`] — the paper's reassignment machinery governs the
//! quorum system, not a datum, so a single `C` (and a single reassignment
//! protocol instance) serves any number of objects: every `R`/`W` names its
//! object, quorum judgement is object-independent, and one weight transfer
//! re-weights the whole shard. Mechanically:
//!
//! * every `R`/`W` message references the client's `C`; servers **reject**
//!   operations whose `C` differs from theirs; the client reconciles and
//!   restarts the operation (§VII, first requirement);
//! * `is_quorum(Q)` holds iff `Σ_{s∈Q} W_s > W_{S,0}/2` with weights taken
//!   from the client's current `C` (Algorithm 5 lines 5–8);
//! * when a server gains weight it refreshes its register *before*
//!   applying the change (Algorithm 4 lines 8–9) so that newly possible
//!   quorums always contain the latest value (Lemma 4). The refresh is a
//!   count-based `n − f` read answered unconditionally — safe because an
//!   `n − f` count set intersects every weighted quorum under every
//!   Property-1 map, and live where a weight-judged read provably
//!   deadlocks with f + 1 concurrent gainers (DESIGN.md §5.6);
//! * two ablation knobs — [`DynOptions::restart_on_stale`] and
//!   [`DynOptions::refresh_on_gain`] — let experiment E10 demonstrate that
//!   both mechanisms are load-bearing.
//!
//! # The change-set negotiation
//!
//! The paper's Algorithm 6 only ever *compares* the attached `C` against
//! the server's own (`C = C_i`), and a rejected client only needs the
//! changes it is missing — so shipping the full set both ways is pure
//! overhead once the system is converged. Under
//! [`WireMode::Negotiate`] (the default) the phases carry
//! [`CsRef`] references instead, per the discipline of [`awr_types::sync`]:
//!
//! 1. the client attaches an O(1) [`CsRef::Summary`] of its `C` to every
//!    `R`/`W`; the server's accept check is the digest comparison;
//! 2. a rejecting server answers with [`CsRef::Delta`] against the
//!    client's digest when its journal covers the gap (the steady-state
//!    mismatch: the client is a few transfers behind), falling back to
//!    [`CsRef::Full`] when it cannot (client ahead or diverged);
//! 3. the client absorbs the reply ([`ChangeSet::apply_ref`]); if it
//!    learned new changes it restarts the operation (Algorithm 5
//!    lines 14–16), otherwise the server is behind and the client re-polls
//!    just that server — both exactly the pre-delta semantics;
//! 4. per rejecting server, one unresolved delta (the client re-presents
//!    the digest the server already answered) degrades the next reply to
//!    `Full`, so every exchange is bounded and liveness needs no new
//!    argument.
//!
//! [`WireMode::ForceFull`] restores the ship-everything wire on these four
//! ABD phases (`R`/`RAck`/`W`/`WAck`) — the accept check becomes the exact
//! set comparison again and every payload is [`CsRef::Full`] — which makes
//! it the equivalence baseline for the `wire_equivalence` test suite and
//! the "before" arm of `bench_wire`. The knob deliberately does not reach
//! the embedded Algorithm 3/4 legs (`RC`/`RC_Ack`/`WC`): those negotiate
//! unconditionally (see [`awr_core::restricted`]), so byte comparisons
//! between the two modes are scoped to the ABD message kinds.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use awr_core::restricted::{ApplyRequest, CoreEvent, TransferCore, TransferStart, WrMsg};
use awr_core::{RpConfig, TransferError, TransferOutcome};
use awr_sim::{Actor, ActorId, Context, Message, Time};
use awr_types::{ChangeSet, CsRef, ObjectId, ProcessId, Ratio, ServerId, Tag, TaggedValue};

use crate::abd_static::Value;
use crate::history::{HistOp, OpKind};

/// Wire messages of the dynamic-weighted storage: the weight-reassignment
/// sub-protocol plus change-set-referencing ABD phases (see the module
/// docs for the negotiation).
#[derive(Clone, Debug)]
pub enum DynMsg<V> {
    /// Weight-reassignment traffic (Algorithms 3–4).
    Wr(WrMsg),
    /// Phase-1 request referencing the client's `C`.
    R {
        /// Client-local operation counter.
        op: u64,
        /// The object being read or written.
        obj: ObjectId,
        /// Reference to the client's current set of completed changes.
        changes: CsRef,
    },
    /// Phase-1 reply; `accepted == false` means the server rejected the
    /// operation because the change sets differ (a reference that lets the
    /// client catch up — delta or full — is attached).
    RAck {
        /// Echo of the request counter.
        op: u64,
        /// Echo of the object key.
        obj: ObjectId,
        /// The server's register content for that object.
        reg: TaggedValue<V>,
        /// Reference to the server's current change set.
        changes: CsRef,
        /// Whether the server accepted the operation.
        accepted: bool,
    },
    /// Phase-2 request referencing the client's `C`.
    W {
        /// Client-local operation counter.
        op: u64,
        /// The object being written back.
        obj: ObjectId,
        /// The tagged value to store.
        reg: TaggedValue<V>,
        /// Reference to the client's current change set.
        changes: CsRef,
    },
    /// Phase-2 reply.
    WAck {
        /// Echo of the request counter.
        op: u64,
        /// Echo of the object key.
        obj: ObjectId,
        /// Reference to the server's current change set.
        changes: CsRef,
        /// Whether the server accepted (and possibly applied) the write.
        accepted: bool,
    },
    /// Register-refresh read request (Algorithm 4 lines 8–9). Answered
    /// unconditionally — by *count*, not weight — so it can never deadlock:
    /// an `n − f` count set intersects every weighted quorum under every
    /// Property-1 map (its complement is `f` servers, holding < half).
    ///
    /// One refresh covers the *whole object space*: a weight gain changes
    /// which quorums are possible for every object at once, so the
    /// refresher must catch up on every register before applying it
    /// (Lemma 4, per object).
    RefreshR {
        /// Refresher-local operation number.
        op: u64,
        /// The refresher's current per-object register tags. Lets repliers
        /// delta-encode: a register no newer than the refresher's tag for
        /// that object cannot change the refresh outcome, so its value is
        /// suppressed on the wire. Objects absent from the map are ones
        /// the refresher has never stored (implicitly at the bottom tag).
        have: BTreeMap<ObjectId, Tag>,
    },
    /// Reply to [`DynMsg::RefreshR`]: the subset of the replier's registers
    /// that are *strictly newer* than the tags the refresher presented.
    /// Everything else is elided, so in the converged case the ack is a
    /// bare header regardless of how many objects the shard holds.
    /// Observationally equivalent to always shipping the full register map:
    /// the refresher adopts the freshest register per object, and a
    /// register with `tag ≤ have[obj]` can never be that (the refresher's
    /// own registers only grow newer while the read is in flight).
    RefreshAck {
        /// Echo of the request number.
        op: u64,
        /// The replier's registers that are newer than the refresher's.
        regs: BTreeMap<ObjectId, TaggedValue<V>>,
    },
}

impl<V: Value> Message for DynMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            DynMsg::Wr(m) => m.kind(),
            DynMsg::R { .. } => "R",
            DynMsg::RAck { .. } => "R_A",
            DynMsg::W { .. } => "W",
            DynMsg::WAck { .. } => "W_A",
            DynMsg::RefreshR { .. } => "RefR",
            DynMsg::RefreshAck { .. } => "RefA",
        }
    }

    // Register values are metered at their in-memory footprint
    // (`size_of_val`), which is exact for the inline `Copy` values used
    // throughout this workspace but undercounts a heap-backed `V` (e.g.
    // `String`): `Value` is blanket-implemented, so there is no hook to ask
    // an arbitrary `V` for its heap size. The change-set payloads — the
    // quantity this accounting exists to expose — are always charged fully.
    fn wire_size(&self) -> usize {
        const OBJ: usize = std::mem::size_of::<ObjectId>();
        match self {
            DynMsg::Wr(m) => m.wire_size(),
            DynMsg::R { changes, .. } => 12 + OBJ + changes.wire_size(),
            DynMsg::WAck { changes, .. } => 16 + OBJ + changes.wire_size(),
            DynMsg::RAck { reg, changes, .. } | DynMsg::W { reg, changes, .. } => {
                16 + OBJ + std::mem::size_of_val(reg) + changes.wire_size()
            }
            // Header + one (key, tag) pair per object the refresher holds —
            // the per-reassignment cost of covering the whole object space,
            // independent of register value sizes.
            DynMsg::RefreshR { have, .. } => 16 + have.len() * (OBJ + std::mem::size_of::<Tag>()),
            // Elided registers cost nothing: a converged replier sends a
            // 16-byte header however many objects the shard holds. Shipped
            // registers are charged at their footprint plus their key.
            DynMsg::RefreshAck { regs, .. } => {
                16 + regs
                    .values()
                    .map(|r| OBJ + std::mem::size_of_val(r))
                    .sum::<usize>()
            }
        }
    }

    // Per-object byte attribution: the four keyed ABD phases carry their
    // object; reassignment traffic and the (whole-space) refresh legs are
    // shared infrastructure and stay unattributed.
    fn object_key(&self) -> Option<u64> {
        match self {
            DynMsg::R { obj, .. }
            | DynMsg::RAck { obj, .. }
            | DynMsg::W { obj, .. }
            | DynMsg::WAck { obj, .. } => Some(obj.key()),
            DynMsg::Wr(_) | DynMsg::RefreshR { .. } | DynMsg::RefreshAck { .. } => None,
        }
    }
}

/// How `R`/`W`/`RAck`/`WAck` reference the change set on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireMode {
    /// Digest summaries with delta/full negotiation on mismatch (the
    /// module docs' state machine): steady-state payloads are O(1) in |C|.
    #[default]
    Negotiate,
    /// Ship the full change set on every `R`/`RAck`/`W`/`WAck` — the
    /// paper-literal wire format for the ABD phases (the embedded
    /// Algorithm 3/4 legs negotiate regardless). Baseline for equivalence
    /// tests and `bench_wire`.
    ForceFull,
}

/// Behaviour knobs, defaulting to the paper's protocol (with the
/// delta-negotiated wire). Turning either boolean off reproduces the E10
/// ablations (and breaks atomicity, as the checker shows).
#[derive(Clone, Copy, Debug)]
pub struct DynOptions {
    /// Restart operations when a server's change set differs (paper: on).
    pub restart_on_stale: bool,
    /// Refresh the register with a full read before applying a weight gain
    /// (Algorithm 4 lines 8–9; paper: on).
    pub refresh_on_gain: bool,
    /// Wire representation of change sets on the ABD phases.
    pub wire: WireMode,
}

impl Default for DynOptions {
    fn default() -> DynOptions {
        DynOptions {
            restart_on_stale: true,
            refresh_on_gain: true,
            wire: WireMode::Negotiate,
        }
    }
}

/// A completed read/write (client-side record).
#[derive(Clone, Debug)]
pub struct DynCompletedOp<V> {
    /// The object the operation targeted.
    pub obj: ObjectId,
    /// What happened.
    pub kind: OpKind<V>,
    /// Invocation time.
    pub invoke: Time,
    /// Response time.
    pub response: Time,
    /// How many times the operation restarted due to stale change sets.
    pub restarts: u64,
}

#[derive(Debug)]
enum DynPhase<V> {
    Idle,
    One {
        op: u64,
        obj: ObjectId,
        write_value: Option<V>,
        invoke: Time,
        restarts: u64,
        replies: std::collections::BTreeMap<ServerId, TaggedValue<V>>,
        /// Running quorum weight of `replies` under the client's `C`:
        /// maintained incrementally so each ack is O(1) instead of
        /// re-summing every responder. Sound because `C` is frozen for the
        /// lifetime of the phase (any change to `C` restarts the phase).
        weight: Ratio,
    },
    Two {
        op: u64,
        obj: ObjectId,
        write_value: Option<V>,
        invoke: Time,
        restarts: u64,
        chosen: TaggedValue<V>,
        acks: BTreeSet<ServerId>,
        /// Running quorum weight of `acks` (same discipline as phase 1).
        weight: Ratio,
    },
}

/// The reader/writer engine of Algorithm 5 — embeddable by any process
/// that wants to read or write the register.
#[derive(Debug)]
pub struct DynOpDriver<V> {
    id: ProcessId,
    cfg: RpConfig,
    actor_base: usize,
    options: DynOptions,
    /// The process's current set of completed changes `C`.
    pub changes: ChangeSet,
    op_cnt: u64,
    phase: DynPhase<V>,
    /// Completed operations, oldest first.
    pub completed: Vec<DynCompletedOp<V>>,
}

impl<V: Value> DynOpDriver<V> {
    /// Creates a driver whose initial `C` is the conventional initial set.
    pub fn new(id: ProcessId, cfg: RpConfig, actor_base: usize, options: DynOptions) -> Self {
        DynOpDriver {
            changes: ChangeSet::from_initial_weights(&cfg.initial_weights),
            id,
            cfg,
            actor_base,
            options,
            op_cnt: 0,
            phase: DynPhase::Idle,
            completed: Vec::new(),
        }
    }

    /// Whether an operation is in flight.
    pub fn is_busy(&self) -> bool {
        !matches!(self.phase, DynPhase::Idle)
    }

    /// Begins `read()` (write value `None`) or `write(v)` on the
    /// [default object](ObjectId::DEFAULT).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin<M: Message>(
        &mut self,
        write_value: Option<V>,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) {
        self.begin_obj(ObjectId::DEFAULT, write_value, ctx, wrap);
    }

    /// Begins `read(obj)` (write value `None`) or `write(obj, v)`. All
    /// objects share this driver's change set `C` and quorum judgement —
    /// only the register addressed by the two phases differs.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_obj<M: Message>(
        &mut self,
        obj: ObjectId,
        write_value: Option<V>,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) {
        assert!(!self.is_busy(), "operation already in flight");
        self.op_cnt += 1;
        self.phase = DynPhase::One {
            op: self.op_cnt,
            obj,
            write_value,
            invoke: ctx.now(),
            restarts: 0,
            replies: Default::default(),
            weight: Ratio::ZERO,
        };
        self.send_phase1(ctx, wrap);
    }

    /// The wire reference this client attaches to its `R`/`W` requests: an
    /// O(1) summary under [`WireMode::Negotiate`] (the server only needs
    /// to *compare*), the whole set under [`WireMode::ForceFull`].
    fn cs_payload(&self) -> CsRef {
        match self.options.wire {
            WireMode::Negotiate => CsRef::summary(&self.changes),
            // Attaching `C` is a reference-count bump: the n messages of a
            // round share one copy-on-write storage.
            WireMode::ForceFull => CsRef::Full(self.changes.clone()),
        }
    }

    fn send_phase1<M: Message>(
        &mut self,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) {
        let (op, obj) = match &self.phase {
            DynPhase::One { op, obj, .. } => (*op, *obj),
            _ => unreachable!("send_phase1 outside phase 1"),
        };
        for i in 0..self.cfg.n {
            ctx.send(
                ActorId(self.actor_base + i),
                wrap(DynMsg::R {
                    op,
                    obj,
                    changes: self.cs_payload(),
                }),
            );
        }
    }

    /// Restarts the whole operation under the (already reconciled) newer
    /// `C` (Algorithm 5 lines 14–16 / 30–32).
    fn restart<M: Message>(
        &mut self,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) {
        self.op_cnt += 1;
        let (obj, write_value, invoke, restarts) =
            match std::mem::replace(&mut self.phase, DynPhase::Idle) {
                DynPhase::One {
                    obj,
                    write_value,
                    invoke,
                    restarts,
                    ..
                } => (obj, write_value, invoke, restarts),
                DynPhase::Two {
                    obj,
                    write_value,
                    invoke,
                    restarts,
                    chosen,
                    ..
                } => {
                    // A write restarted from phase 2 re-runs phase 1 with its
                    // original value; a read re-runs phase 1 discarding the
                    // previously chosen register.
                    let _ = chosen;
                    (obj, write_value, invoke, restarts)
                }
                DynPhase::Idle => unreachable!("restart on idle driver"),
            };
        self.phase = DynPhase::One {
            op: self.op_cnt,
            obj,
            write_value,
            invoke,
            restarts: restarts + 1,
            replies: Default::default(),
            weight: Ratio::ZERO,
        };
        self.send_phase1(ctx, wrap);
    }

    /// Feeds a client-side message. Returns the completed operation when the
    /// invocation finishes.
    pub fn on_message<M: Message>(
        &mut self,
        from: ActorId,
        msg: &DynMsg<V>,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(DynMsg<V>) -> M + Copy,
    ) -> Option<DynCompletedOp<V>> {
        let sid = ServerId((from.index() - self.actor_base) as u32);
        match msg {
            DynMsg::RAck {
                op,
                obj,
                reg,
                changes,
                accepted,
            } => {
                let (cur_op, cur_obj) = match &self.phase {
                    DynPhase::One { op, obj, .. } => (*op, *obj),
                    _ => return None,
                };
                if *op != cur_op || *obj != cur_obj {
                    return None;
                }
                if !accepted && self.options.restart_on_stale {
                    // Two kinds of mismatch. If the server's reference
                    // taught us changes we lacked, restart the operation
                    // (Algorithm 5 lines 14–16). If instead the server is
                    // *behind* us (e.g. frozen mid-refresh) — the reference
                    // added nothing — restarting teaches us nothing and
                    // livelocks; re-poll just that server. The re-poll
                    // presents our (possibly unchanged) digest again; a
                    // server whose delta failed to resolve degrades its
                    // next reply to `Full`, keeping the exchange bounded.
                    if self.changes.apply_ref(changes).learned() {
                        self.restart(ctx, wrap);
                    } else {
                        ctx.send(
                            from,
                            wrap(DynMsg::R {
                                op: cur_op,
                                obj: cur_obj,
                                changes: self.cs_payload(),
                            }),
                        );
                    }
                    return None;
                }
                let sid_weight = self.changes.server_weight(sid);
                let DynPhase::One {
                    write_value,
                    invoke,
                    restarts,
                    replies,
                    weight,
                    ..
                } = &mut self.phase
                else {
                    return None;
                };
                if replies.insert(sid, reg.clone()).is_none() {
                    // First reply from this server: O(1) accumulator update
                    // (re-polled servers replace their register but count
                    // their weight once).
                    *weight += sid_weight;
                }
                let quorum = *weight > self.cfg.quorum_threshold();
                if quorum {
                    let maxreg = replies
                        .values()
                        .max_by_key(|r| r.tag)
                        .expect("nonempty")
                        .clone();
                    let (chosen, wv) = match write_value.take() {
                        None => (maxreg, None),
                        Some(v) => (
                            TaggedValue::new(Tag::new(maxreg.tag.ts + 1, self.id), v.clone()),
                            Some(v),
                        ),
                    };
                    let (op, invoke, restarts) = (cur_op, *invoke, *restarts);
                    self.phase = DynPhase::Two {
                        op,
                        obj: cur_obj,
                        write_value: wv,
                        invoke,
                        restarts,
                        chosen: chosen.clone(),
                        acks: Default::default(),
                        weight: Ratio::ZERO,
                    };
                    for i in 0..self.cfg.n {
                        ctx.send(
                            ActorId(self.actor_base + i),
                            wrap(DynMsg::W {
                                op,
                                obj: cur_obj,
                                reg: chosen.clone(),
                                changes: self.cs_payload(),
                            }),
                        );
                    }
                }
                None
            }
            DynMsg::WAck {
                op,
                obj,
                changes,
                accepted,
            } => {
                let (cur_op, cur_obj) = match &self.phase {
                    DynPhase::Two { op, obj, .. } => (*op, *obj),
                    _ => return None,
                };
                if *op != cur_op || *obj != cur_obj {
                    return None;
                }
                if !accepted && self.options.restart_on_stale {
                    if self.changes.apply_ref(changes).learned() {
                        self.restart(ctx, wrap);
                    } else if let DynPhase::Two { chosen, .. } = &self.phase {
                        // Re-poll the behind server with the same write.
                        let reg = chosen.clone();
                        ctx.send(
                            from,
                            wrap(DynMsg::W {
                                op: cur_op,
                                obj: cur_obj,
                                reg,
                                changes: self.cs_payload(),
                            }),
                        );
                    }
                    return None;
                }
                let sid_weight = self.changes.server_weight(sid);
                let DynPhase::Two {
                    write_value,
                    invoke,
                    restarts,
                    chosen,
                    acks,
                    weight,
                    ..
                } = &mut self.phase
                else {
                    return None;
                };
                if acks.insert(sid) {
                    *weight += sid_weight;
                }
                let quorum = *weight > self.cfg.quorum_threshold();
                if quorum {
                    let done = DynCompletedOp {
                        obj: cur_obj,
                        kind: match write_value.take() {
                            None => OpKind::Read(chosen.value.clone()),
                            Some(v) => OpKind::Write(v),
                        },
                        invoke: *invoke,
                        response: ctx.now(),
                        restarts: *restarts,
                    };
                    self.phase = DynPhase::Idle;
                    self.completed.push(done.clone());
                    return Some(done);
                }
                None
            }
            _ => None,
        }
    }
}

/// A dynamic-weighted storage server: Algorithm 6 over a keyed object
/// space, plus the embedded Algorithm 4 engine and the register-refresh
/// rule.
///
/// One server hosts *many* registers — a map keyed by [`ObjectId`] — under
/// a *single* change set `C`: the weighted configuration is shared
/// infrastructure beneath every object, so one reassignment re-weights the
/// whole shard and one register refresh (on weight gain) catches up every
/// key at once. Registers are stored sparsely: a key is absent until some
/// write for it is adopted, and an absent key reads as the bottom register.
#[derive(Debug)]
pub struct DynServer<V> {
    core: TransferCore,
    registers: BTreeMap<ObjectId, TaggedValue<V>>,
    options: DynOptions,
    /// Queue of change applications awaiting their turn (each may require a
    /// register refresh first).
    pending_applies: VecDeque<ApplyRequest>,
    /// The in-flight refresh read, if any.
    refresh: Option<RefreshRead<V>>,
    refresh_ops: u64,
    /// Per-client negotiation memory: the client digest the last reject
    /// reply cut a delta against. A client re-presenting the same digest
    /// means that delta did not resolve — the next reply degrades to
    /// `Full`. One u64 per client keeps the state machine bounded.
    nego: BTreeMap<ActorId, u64>,
    /// Completed own transfers (`⟨Complete, c⟩` log).
    pub transfer_log: Vec<TransferOutcome>,
    /// Number of register refreshes performed (metric for E10c).
    pub refreshes: u64,
}

impl<V: Value> DynServer<V> {
    /// Creates the server for `me` under `cfg`. Servers must occupy world
    /// indices `0..n`.
    pub fn new(cfg: RpConfig, me: ServerId, options: DynOptions) -> DynServer<V> {
        DynServer {
            core: TransferCore::new(cfg, me, 0),
            registers: BTreeMap::new(),
            options,
            pending_applies: VecDeque::new(),
            refresh: None,
            refresh_ops: 0,
            nego: BTreeMap::new(),
            transfer_log: Vec::new(),
            refreshes: 0,
        }
    }

    /// Harness/bench hook: merges `set` into the local `C` directly, with
    /// no protocol interaction (no acks, no register refresh). Used to
    /// pre-seed converged steady states; not part of the protocol.
    pub fn seed_changes(&mut self, set: &ChangeSet) {
        self.core.absorb_changes(set);
    }

    /// The reference attached to an *accepting* `RAck`/`WAck` (the client
    /// ignores it; a summary costs nothing, while `ForceFull` reproduces
    /// the paper-literal full-set echo).
    fn ack_payload(&self) -> CsRef {
        match self.options.wire {
            WireMode::Negotiate => CsRef::summary(self.core.changes()),
            WireMode::ForceFull => CsRef::Full(self.core.changes().clone()),
        }
    }

    /// The reference attached to a *rejecting* `RAck`/`WAck`: whatever most
    /// cheaply lets `peer` catch up to this server's `C` — a delta against
    /// the digest it presented when the journal covers the gap, `Full`
    /// otherwise, and `Full` unconditionally once a delta against the same
    /// digest has already failed to resolve (see the module docs).
    fn reject_payload(&mut self, peer: ActorId, client_ref: &CsRef) -> CsRef {
        let mine = self.core.changes();
        if self.options.wire == WireMode::ForceFull {
            return CsRef::Full(mine.clone());
        }
        let client_digest = client_ref.implied_digest();
        if self.nego.get(&peer) == Some(&client_digest) {
            // Second reject for the same client digest: the delta we cut
            // last time did not resolve. Degrade.
            self.nego.remove(&peer);
            return CsRef::Full(mine.clone());
        }
        match CsRef::for_peer(mine, client_digest) {
            r @ CsRef::Delta { .. } => {
                self.nego.insert(peer, client_digest);
                r
            }
            // A summary teaches a rejected client nothing (and equal
            // digests should have been accepted): send content.
            CsRef::Summary { .. } => {
                self.nego.remove(&peer);
                CsRef::Full(mine.clone())
            }
            r @ CsRef::Full(_) => {
                self.nego.remove(&peer);
                r
            }
        }
    }

    /// This server's id.
    pub fn server_id(&self) -> ServerId {
        self.core.server_id()
    }

    /// The local change set.
    pub fn changes(&self) -> &ChangeSet {
        self.core.changes()
    }

    /// This server's current weight.
    pub fn weight(&self) -> Ratio {
        self.core.weight()
    }

    /// The [default object](ObjectId::DEFAULT)'s register (inspection).
    pub fn register(&self) -> TaggedValue<V> {
        self.register_of(ObjectId::DEFAULT)
    }

    /// The register stored for `obj` — the bottom register if no write for
    /// that key has been adopted (inspection).
    pub fn register_of(&self, obj: ObjectId) -> TaggedValue<V> {
        self.registers
            .get(&obj)
            .cloned()
            .unwrap_or_else(TaggedValue::bottom)
    }

    /// The sparse register map (inspection).
    pub fn registers(&self) -> &BTreeMap<ObjectId, TaggedValue<V>> {
        &self.registers
    }

    /// Adopts `incoming` for `obj` if it is strictly newer than what the
    /// sparse map holds (absent = bottom). Keys are only materialized by
    /// genuinely newer registers, so an idle object costs nothing anywhere.
    fn adopt_register(&mut self, obj: ObjectId, incoming: &TaggedValue<V>) {
        match self.registers.get_mut(&obj) {
            Some(cur) => {
                cur.adopt_if_newer(incoming);
            }
            None => {
                if incoming.tag > Tag::bottom() {
                    self.registers.insert(obj, incoming.clone());
                }
            }
        }
    }

    /// Completed own transfers with completion times.
    pub fn completed_transfers(&self) -> &[(TransferOutcome, Time)] {
        self.core.completed()
    }

    /// Invokes `transfer(me, to, Δ)` (weights move while reads/writes run).
    ///
    /// # Errors
    ///
    /// See [`TransferCore::transfer`].
    pub fn begin_transfer(
        &mut self,
        to: ServerId,
        delta: Ratio,
        ctx: &mut Context<'_, DynMsg<V>>,
    ) -> Result<TransferStart, TransferError> {
        let r = self.core.transfer(to, delta, ctx, DynMsg::Wr)?;
        if let TransferStart::Null(o) = &r {
            self.transfer_log.push(o.clone());
        }
        Ok(r)
    }

    /// Like [`DynServer::begin_transfer`], but a request arriving while a
    /// transfer is in flight queues instead of failing `Busy`; the queue
    /// drains as one batched `⟨T⟩` envelope, so this server's peers pay a
    /// single relay wave — and at most one register refresh — for the whole
    /// burst (see [`awr_core::restricted::TransferCore::transfer_queued`]).
    ///
    /// # Errors
    ///
    /// See [`awr_core::restricted::TransferCore::transfer_queued`].
    pub fn begin_transfer_queued(
        &mut self,
        to: ServerId,
        delta: Ratio,
        ctx: &mut Context<'_, DynMsg<V>>,
    ) -> Result<TransferStart, TransferError> {
        let r = self.core.transfer_queued(to, delta, ctx, DynMsg::Wr)?;
        if let TransferStart::Null(o) = &r {
            self.transfer_log.push(o.clone());
        }
        Ok(r)
    }

    /// Processes the apply queue: applies head requests, pausing to refresh
    /// the register when a request changes this server's own weight.
    fn drain_applies(&mut self, ctx: &mut Context<'_, DynMsg<V>>) {
        while self.refresh.is_none() {
            let Some(req) = self.pending_applies.front() else {
                return;
            };
            let needs_refresh = self.options.refresh_on_gain && req.affects(self.core.server_id());
            if needs_refresh {
                // Algorithm 4 lines 8–9: register ← read(), then apply.
                // Implemented as an n − f *count* read answered
                // unconditionally: such a set intersects every weighted
                // quorum under every Property-1 weight map, so the refresh
                // observes every completed write and can never deadlock —
                // even when f + 1 gainers refresh simultaneously (where a
                // weight-judged read provably stalls; see DESIGN.md §5).
                self.refreshes += 1;
                self.refresh_ops += 1;
                let op = self.refresh_ops;
                self.refresh = Some(RefreshRead {
                    op,
                    acks: 0,
                    best: BTreeMap::new(),
                });
                let n = self.core.config().n;
                // One read covers the whole object space: present the tag
                // held for every key, so repliers can elide everything this
                // server is already up to date on.
                let have: BTreeMap<ObjectId, Tag> =
                    self.registers.iter().map(|(o, r)| (*o, r.tag)).collect();
                for i in 0..n {
                    ctx.send(
                        ActorId(i),
                        DynMsg::RefreshR {
                            op,
                            have: have.clone(),
                        },
                    );
                }
                return; // resume in on_message when the read completes
            }
            let req = self.pending_applies.pop_front().expect("peeked");
            self.core.apply(req, ctx, DynMsg::Wr);
        }
    }

    fn on_refresh_complete(
        &mut self,
        best: BTreeMap<ObjectId, TaggedValue<V>>,
        ctx: &mut Context<'_, DynMsg<V>>,
    ) {
        // Adopt the freshest value observed per object: every register this
        // server holds is now at least as new as any write completed before
        // the refresh began (Lemma 4's requirement, per key), so quorums
        // that become possible once the weight gain applies cannot serve
        // stale data through us for any object.
        for (obj, reg) in &best {
            self.adopt_register(*obj, reg);
        }
        // The head request triggered this refresh: apply it now.
        if let Some(req) = self.pending_applies.pop_front() {
            self.core.apply(req, ctx, DynMsg::Wr);
        }
        self.drain_applies(ctx);
    }
}

/// An in-flight count-based register refresh, covering every object.
#[derive(Debug)]
struct RefreshRead<V> {
    op: u64,
    acks: usize,
    /// Freshest register observed so far, per object.
    best: BTreeMap<ObjectId, TaggedValue<V>>,
}

impl<V: Value> Actor for DynServer<V> {
    type Msg = DynMsg<V>;

    fn on_message(&mut self, from: ActorId, msg: DynMsg<V>, ctx: &mut Context<'_, DynMsg<V>>) {
        match msg {
            DynMsg::Wr(WrMsg::Invoke { to, delta }) => {
                // Management RPC: start the transfer, or queue it behind an
                // in-flight one — bursts of monitor-driven reassignments
                // batch into one ⟨T⟩ envelope per drain.
                let _ = self.begin_transfer_queued(to, delta, ctx);
            }
            DynMsg::Wr(wr) => {
                // Feed the refresh driver first: its R_A/W_A arrive as
                // DynMsg, not WrMsg, so only core traffic lands here.
                for ev in self.core.handle(from, wr, ctx, DynMsg::Wr) {
                    match ev {
                        CoreEvent::NeedApply(req) => {
                            self.pending_applies.push_back(req);
                        }
                        CoreEvent::Completed(o) => self.transfer_log.push(o),
                    }
                }
                self.drain_applies(ctx);
            }
            DynMsg::R { op, obj, changes } => {
                // Algorithm 6's accept check `C = C_i`, answered from the
                // reference without materializing the client's set.
                let accepted = self.core.changes().matches_ref(&changes);
                let reply = if accepted {
                    self.nego.remove(&from);
                    self.ack_payload()
                } else {
                    self.reject_payload(from, &changes)
                };
                ctx.send(
                    from,
                    DynMsg::RAck {
                        op,
                        obj,
                        reg: self.register_of(obj),
                        changes: reply,
                        accepted,
                    },
                );
            }
            DynMsg::W {
                op,
                obj,
                reg,
                changes,
            } => {
                let accepted = self.core.changes().matches_ref(&changes);
                let reply = if accepted {
                    self.nego.remove(&from);
                    self.adopt_register(obj, &reg);
                    self.ack_payload()
                } else {
                    self.reject_payload(from, &changes)
                };
                ctx.send(
                    from,
                    DynMsg::WAck {
                        op,
                        obj,
                        changes: reply,
                        accepted,
                    },
                );
            }
            DynMsg::RefreshR { op, have } => {
                // Answered unconditionally — no C matching (see above).
                // Delta-encoding over the register *map*: a value ships only
                // when it can matter, i.e. when it is strictly newer than
                // what the refresher already holds for that key (absent =
                // bottom). In the converged case the ack is a bare header
                // however many objects the shard stores.
                let regs: BTreeMap<ObjectId, TaggedValue<V>> = self
                    .registers
                    .iter()
                    .filter(|(obj, reg)| {
                        reg.tag > have.get(obj).copied().unwrap_or_else(Tag::bottom)
                    })
                    .map(|(obj, reg)| (*obj, reg.clone()))
                    .collect();
                ctx.send(from, DynMsg::RefreshAck { op, regs });
            }
            DynMsg::RefreshAck { op, regs } => {
                let cfg_needed = self.core.config().n - self.core.config().f;
                let done = match self.refresh.as_mut() {
                    Some(r) if r.op == op => {
                        r.acks += 1;
                        for (obj, reg) in regs {
                            match r.best.get_mut(&obj) {
                                Some(b) => {
                                    b.adopt_if_newer(&reg);
                                }
                                None => {
                                    r.best.insert(obj, reg);
                                }
                            }
                        }
                        r.acks >= cfg_needed
                    }
                    _ => false,
                };
                if done {
                    let best = self.refresh.take().expect("checked").best;
                    self.on_refresh_complete(best, ctx);
                }
            }
            DynMsg::RAck { .. } | DynMsg::WAck { .. } => {
                // Client-side replies; a server has no client driver.
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A dynamic-weighted storage client.
#[derive(Debug)]
pub struct DynClient<V> {
    /// The embedded Algorithm 5 engine.
    pub driver: DynOpDriver<V>,
}

impl<V: Value> DynClient<V> {
    /// Creates a client.
    pub fn new(id: ProcessId, cfg: RpConfig, options: DynOptions) -> DynClient<V> {
        DynClient {
            driver: DynOpDriver::new(id, cfg, 0, options),
        }
    }

    /// Begins a read of the [default object](ObjectId::DEFAULT).
    ///
    /// # Panics
    ///
    /// Panics if an operation is in flight.
    pub fn begin_read(&mut self, ctx: &mut Context<'_, DynMsg<V>>) {
        self.driver.begin(None, ctx, |m| m);
    }

    /// Begins a write to the [default object](ObjectId::DEFAULT).
    ///
    /// # Panics
    ///
    /// Panics if an operation is in flight.
    pub fn begin_write(&mut self, v: V, ctx: &mut Context<'_, DynMsg<V>>) {
        self.driver.begin(Some(v), ctx, |m| m);
    }

    /// Begins a read of `obj`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is in flight.
    pub fn begin_read_obj(&mut self, obj: ObjectId, ctx: &mut Context<'_, DynMsg<V>>) {
        self.driver.begin_obj(obj, None, ctx, |m| m);
    }

    /// Begins a write of `v` to `obj`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is in flight.
    pub fn begin_write_obj(&mut self, obj: ObjectId, v: V, ctx: &mut Context<'_, DynMsg<V>>) {
        self.driver.begin_obj(obj, Some(v), ctx, |m| m);
    }

    /// Converts completed ops into history entries for client index `ci`.
    pub fn history_ops(&self, ci: usize) -> Vec<HistOp<V>> {
        self.driver
            .completed
            .iter()
            .map(|c| HistOp {
                client: ci,
                obj: c.obj,
                kind: c.kind.clone(),
                invoke: c.invoke,
                response: c.response,
            })
            .collect()
    }
}

impl<V: Value> Actor for DynClient<V> {
    type Msg = DynMsg<V>;

    fn on_message(&mut self, from: ActorId, msg: DynMsg<V>, ctx: &mut Context<'_, DynMsg<V>>) {
        let _ = self.driver.on_message(from, &msg, ctx, |m| m);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod driver_tests {
    use super::*;
    use crate::harness::StorageHarness;
    use awr_core::RpConfig;
    use awr_sim::UniformLatency;
    use awr_types::ClientId;

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    #[test]
    fn writer_value_survives_restarts() {
        // A writer whose phase 1 collides with a weight change restarts but
        // must still write its original value.
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(7, 2),
            2,
            21,
            UniformLatency::new(1_000, 40_000),
            DynOptions::default(),
        );
        // Make client 0's view stale: complete a transfer it never hears of.
        h.transfer_and_wait(s(3), s(0), Ratio::dec("0.2")).unwrap();
        h.settle();
        let done = h.write(0, 777).unwrap();
        assert!(done.restarts > 0, "stale writer should restart");
        let (v, _) = h.read(1).unwrap();
        assert_eq!(v, Some(777), "value lost across restart");
    }

    #[test]
    fn stale_op_replies_are_ignored() {
        // Drive a driver manually: replies tagged with an old op number
        // must not advance the current operation.
        let cfg = RpConfig::uniform(3, 1);
        let mut h: StorageHarness<u64> = StorageHarness::build(
            cfg.clone(),
            1,
            22,
            UniformLatency::new(1_000, 2_000),
            DynOptions::default(),
        );
        h.write(0, 1).unwrap();
        let c0 = h.client_actor(0);
        // Feed a forged RAck for a long-gone op id through the world.
        let forged = DynMsg::RAck {
            op: 9999,
            obj: ObjectId::DEFAULT,
            reg: TaggedValue::new(Tag::new(99, ProcessId::Client(ClientId(7))), 424242u64),
            changes: CsRef::Full(ChangeSet::from_initial_weights(&cfg.initial_weights)),
            accepted: true,
        };
        h.world.inject(h.server_actor(s(0)), c0, forged);
        h.settle();
        // The forged high tag must not have leaked into any result.
        let (v, _) = h.read(0).unwrap();
        assert_eq!(v, Some(1));
    }

    #[test]
    fn refresh_metrics_zero_without_gains() {
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(5, 1),
            1,
            23,
            UniformLatency::new(1_000, 10_000),
            DynOptions::default(),
        );
        h.write(0, 1).unwrap();
        h.read(0).unwrap();
        h.settle();
        for i in 0..5 {
            let srv = h
                .world
                .actor::<DynServer<u64>>(h.server_actor(s(i)))
                .unwrap();
            assert_eq!(srv.refreshes, 0, "no transfer → no refresh");
        }
    }

    #[test]
    fn null_transfers_do_not_touch_registers_or_weights() {
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(5, 1),
            1,
            24,
            UniformLatency::new(1_000, 10_000),
            DynOptions::default(),
        );
        h.write(0, 9).unwrap();
        // floor = 5/8; Δ = 0.4 needs 1 > 1.025 → null.
        let out = h.transfer_and_wait(s(1), s(0), Ratio::dec("0.4")).unwrap();
        assert!(!out.is_effective());
        h.settle();
        for i in 0..5 {
            let srv = h
                .world
                .actor::<DynServer<u64>>(h.server_actor(s(i)))
                .unwrap();
            assert_eq!(srv.weight(), Ratio::ONE);
            assert_eq!(srv.refreshes, 0);
        }
        let (v, _) = h.read(0).unwrap();
        assert_eq!(v, Some(9));
    }

    #[test]
    fn queued_transfer_burst_batches_and_stays_linearizable() {
        use crate::lin::check_linearizable;
        use awr_core::audit_transfers;

        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(7, 2),
            2,
            31,
            UniformLatency::new(1_000, 40_000),
            DynOptions::default(),
        );
        h.write(0, 1).unwrap();
        // A burst of three donations from s3: two queue behind the first
        // and drain as one batched ⟨T⟩ envelope.
        h.transfer_queued(s(3), s(0), Ratio::dec("0.05")).unwrap();
        h.transfer_queued(s(3), s(0), Ratio::dec("0.05")).unwrap();
        h.transfer_queued(s(3), s(0), Ratio::dec("0.05")).unwrap();
        let (v, _) = h.read(1).unwrap();
        assert_eq!(v, Some(1));
        h.settle();
        check_linearizable(&h.history()).expect("linearizable under batched transfers");
        let report = audit_transfers(h.config(), &h.all_completed_transfers());
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.effective, 3);
        // Two RB instances (eager relay = (n−1)² T messages each), and the
        // gainer refreshed once per *batch*, not once per transfer.
        assert_eq!(h.world.metrics().sent_of_kind("T"), 2 * 36);
        let s0 = h
            .world
            .actor::<DynServer<u64>>(h.server_actor(s(0)))
            .unwrap();
        assert_eq!(s0.refreshes, 2);
        assert_eq!(s0.weight(), Ratio::dec("1.15"));
    }

    #[test]
    fn refresh_acks_are_delta_encoded_for_large_values() {
        // A fat register: shipping it in every RefreshAck would cost
        // n × ~0.5 KB per refresh. With delta encoding, a replier whose
        // register is no newer than the refresher's sends a 16-byte header.
        type Fat = [u64; 64];
        let mut h: StorageHarness<Fat> = StorageHarness::build(
            RpConfig::uniform(5, 1),
            1,
            33,
            UniformLatency::new(1_000, 10_000),
            DynOptions::default(),
        );
        h.write(0, [7u64; 64]).unwrap();
        // Weight moves → both endpoints refresh before applying. Every
        // server already holds the written register, so every ack elides
        // its value.
        h.transfer_and_wait(s(1), s(0), Ratio::dec("0.1")).unwrap();
        h.settle();
        let s0 = h
            .world
            .actor::<DynServer<Fat>>(h.server_actor(s(0)))
            .unwrap();
        assert_eq!(s0.refreshes, 1);
        let m = h.world.metrics();
        assert!(m.sent_of_kind("RefA") >= 5);
        let full = std::mem::size_of::<TaggedValue<Fat>>() as f64;
        assert_eq!(
            m.mean_bytes_of_kind("RefA"),
            16.0,
            "every ack should elide the register (full would be ≥ {full})"
        );
        // The refresh outcome is unchanged: the register survives.
        let (v, _) = h.read(0).unwrap();
        assert_eq!(v, Some([7u64; 64]));
    }

    #[test]
    fn options_default_matches_paper() {
        let o = DynOptions::default();
        assert!(o.restart_on_stale);
        assert!(o.refresh_on_gain);
    }
}
