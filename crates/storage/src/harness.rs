//! A wired world for the dynamic-weighted storage: `n` servers at indices
//! `0..n`, clients after them.

use std::collections::BTreeMap;

use awr_core::{RpConfig, TransferError, TransferOutcome};
use awr_sim::{ActorId, FaultPlan, NetworkModel, Time, World};
use awr_types::{Change, ChangeSet, ClientId, ObjectId, ProcessId, Ratio, ServerId};

use crate::abd_static::Value;
use crate::durable::StorageHandle;
use crate::dynamic::{DynClient, DynCompletedOp, DynMsg, DynOptions, DynServer};
use crate::history::History;

/// A ready-to-run dynamic-weighted atomic storage system.
///
/// # Examples
///
/// ```
/// use awr_core::RpConfig;
/// use awr_sim::UniformLatency;
/// use awr_storage::{DynOptions, StorageHarness};
/// use awr_types::{Ratio, ServerId};
///
/// let cfg = RpConfig::uniform(7, 2);
/// let mut h: StorageHarness<u64> =
///     StorageHarness::build(cfg, 2, 7, UniformLatency::new(1_000, 50_000), DynOptions::default());
///
/// h.write(0, 42).unwrap();
/// // Weights move while the register keeps serving.
/// h.transfer_and_wait(ServerId(3), ServerId(0), Ratio::dec("0.25")).unwrap();
/// assert_eq!(h.read(1).unwrap().0, Some(42));
/// ```
pub struct StorageHarness<V: Value> {
    /// The simulated world (exposed for metrics and custom driving).
    pub world: World<DynMsg<V>>,
    cfg: RpConfig,
    n_clients: usize,
    options: DynOptions,
    /// Per-server durable stores (empty unless built with
    /// [`StorageHarness::build_durable`]). Index = server index. The
    /// handles outlive crashed incarnations — that is what recovery reads.
    storage: Vec<StorageHandle<V>>,
}

impl<V: Value> StorageHarness<V> {
    /// Builds the system. `network` is any [`NetworkModel`]: a plain
    /// latency model (infinite bandwidth) or a bandwidth-aware topology
    /// like [`awr_sim::constrained_uplink`] where message sizes shape the
    /// schedule.
    pub fn build(
        cfg: RpConfig,
        n_clients: usize,
        seed: u64,
        network: impl NetworkModel + 'static,
        options: DynOptions,
    ) -> StorageHarness<V> {
        let mut world = World::new(seed, network);
        for s in cfg.servers() {
            world.add_actor(DynServer::<V>::new(cfg.clone(), s, options));
        }
        for c in 0..n_clients {
            world.add_actor(DynClient::<V>::new(
                ProcessId::Client(ClientId(c as u32)),
                cfg.clone(),
                options,
            ));
        }
        StorageHarness {
            world,
            cfg,
            n_clients,
            options,
            storage: Vec::new(),
        }
    }

    /// Like [`StorageHarness::build`], but every server runs durably over
    /// its own in-memory [`StorageHandle`] (WAL + snapshots on the
    /// [`DynOptions::checkpoint`] cadence), which makes the harness's
    /// crash/restart machinery — [`StorageHarness::install_fault_plan`]
    /// and [`StorageHarness::restart_server`] — available.
    pub fn build_durable(
        cfg: RpConfig,
        n_clients: usize,
        seed: u64,
        network: impl NetworkModel + 'static,
        options: DynOptions,
    ) -> StorageHarness<V> {
        let mut world = World::new(seed, network);
        let mut storage = Vec::new();
        for s in cfg.servers() {
            let handle = StorageHandle::in_memory();
            world.add_actor(DynServer::<V>::with_storage(
                cfg.clone(),
                s,
                options,
                handle.clone(),
            ));
            storage.push(handle);
        }
        for c in 0..n_clients {
            world.add_actor(DynClient::<V>::new(
                ProcessId::Client(ClientId(c as u32)),
                cfg.clone(),
                options,
            ));
        }
        StorageHarness {
            world,
            cfg,
            n_clients,
            options,
            storage,
        }
    }

    /// Server `s`'s durable store, if the harness was built durable.
    pub fn storage_handle(&self, s: ServerId) -> Option<&StorageHandle<V>> {
        self.storage.get(s.index())
    }

    /// Installs a crash/restart campaign: every kill in `plan` becomes a
    /// scheduled crash, and every restart rebuilds that server via
    /// [`DynServer::recover`] from its durable store (so the rebooted
    /// incarnation replays snapshot + WAL and rejoins through the sync +
    /// refresh round).
    ///
    /// # Panics
    ///
    /// Panics if the harness was not built with
    /// [`StorageHarness::build_durable`], or if the plan targets a
    /// non-server actor.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        assert!(
            !self.storage.is_empty(),
            "fault plans need a durable harness (build_durable)"
        );
        for f in &plan.faults {
            assert!(
                f.actor.index() < self.cfg.n,
                "fault plan targets non-server actor {:?}",
                f.actor
            );
        }
        let cfg = self.cfg.clone();
        let options = self.options;
        let storage = self.storage.clone();
        plan.apply(&mut self.world, move |a| {
            Box::new(DynServer::<V>::recover(
                cfg.clone(),
                ServerId(a.index() as u32),
                options,
                storage[a.index()].clone(),
            ))
        });
    }

    /// Immediately reboots a previously crashed server from its durable
    /// store (the manual counterpart of a planned restart).
    ///
    /// # Panics
    ///
    /// Panics if the harness is not durable or the server is not down.
    pub fn restart_server(&mut self, s: ServerId) {
        let handle = self
            .storage
            .get(s.index())
            .expect("restart needs a durable harness (build_durable)")
            .clone();
        let server = DynServer::<V>::recover(self.cfg.clone(), s, self.options, handle);
        self.world
            .restart_now(self.server_actor(s), Box::new(server));
    }

    /// The configuration.
    pub fn config(&self) -> &RpConfig {
        &self.cfg
    }

    /// Actor id of server `s`.
    pub fn server_actor(&self, s: ServerId) -> ActorId {
        ActorId(s.index())
    }

    /// Actor id of client `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ n_clients`.
    pub fn client_actor(&self, k: usize) -> ActorId {
        assert!(k < self.n_clients, "client {k} out of range");
        ActorId(self.cfg.n + k)
    }

    /// Crashes server `s` immediately.
    pub fn crash_server(&mut self, s: ServerId) {
        self.world.crash_now(self.server_actor(s));
    }

    /// Test/bench hook: pre-seeds every server *and* every client with the
    /// same converged set of at least `extra` additional changes, so
    /// subsequent operations run in a large-|C| steady state. The changes
    /// come in cancelling ±1/1000 pairs on one target, leaving every weight
    /// (and hence quorum behaviour) untouched — what varies is purely the
    /// wire cost of referencing `C`. Call before driving any operation.
    /// Returns the seeded set (shared, copy-on-write, by all participants).
    pub fn seed_converged_changes(&mut self, extra: usize) -> ChangeSet {
        let n = self.cfg.n;
        let mut set = ChangeSet::new();
        let mut i = 0u64;
        while set.len() < extra {
            let t = ServerId((i % n as u64) as u32);
            set.insert(Change::new(t, 1_000 + i, t, Ratio::new(1, 1000)));
            set.insert(Change::new(t, 1_000 + i, t, Ratio::new(-1, 1000)));
            i += 1;
        }
        for s in self.cfg.servers() {
            let a = self.server_actor(s);
            self.world
                .actor_mut::<DynServer<V>>(a)
                .expect("server")
                .seed_changes(&set);
        }
        for k in 0..self.n_clients {
            let a = self.client_actor(k);
            self.world
                .actor_mut::<DynClient<V>>(a)
                .expect("client")
                .driver
                .changes
                .merge(&set);
        }
        set
    }

    fn run_client_op(
        &mut self,
        k: usize,
        start: impl FnOnce(&mut DynClient<V>, &mut awr_sim::Context<'_, DynMsg<V>>),
    ) -> Result<DynCompletedOp<V>, TransferError> {
        let actor = self.client_actor(k);
        let before = self
            .world
            .actor::<DynClient<V>>(actor)
            .expect("client")
            .driver
            .completed
            .len();
        self.world.with_actor_ctx::<DynClient<V>, _>(actor, start);
        let done = self.world.run_until(|w| {
            w.actor::<DynClient<V>>(actor)
                .map(|c| c.driver.completed.len() > before)
                .unwrap_or(false)
        });
        if !done {
            return Err(TransferError::InvalidArguments {
                reason: "world quiesced before the operation completed".into(),
            });
        }
        // Nudge virtual time forward so an operation invoked right after
        // this one strictly follows it in real-time order (the harness is
        // the "global clock" of §II; checker precedence is strict).
        self.world.run_for(1);
        Ok(self
            .world
            .actor::<DynClient<V>>(actor)
            .expect("client")
            .driver
            .completed[before]
            .clone())
    }

    /// Client `k` writes `v` to the [default object](ObjectId::DEFAULT),
    /// running the world until completion.
    ///
    /// # Errors
    ///
    /// Errors if the world quiesces first (too many crashes).
    pub fn write(&mut self, k: usize, v: V) -> Result<DynCompletedOp<V>, TransferError> {
        self.write_obj(k, ObjectId::DEFAULT, v)
    }

    /// Client `k` reads the [default object](ObjectId::DEFAULT), returning
    /// `(value, op record)`.
    ///
    /// # Errors
    ///
    /// Errors if the world quiesces first.
    pub fn read(&mut self, k: usize) -> Result<(Option<V>, DynCompletedOp<V>), TransferError> {
        self.read_obj(k, ObjectId::DEFAULT)
    }

    /// Client `k` writes `v` to `obj`, running the world until completion.
    ///
    /// # Errors
    ///
    /// Errors if the world quiesces first (too many crashes).
    pub fn write_obj(
        &mut self,
        k: usize,
        obj: ObjectId,
        v: V,
    ) -> Result<DynCompletedOp<V>, TransferError> {
        self.run_client_op(k, |c, ctx| c.begin_write_obj(obj, v, ctx))
    }

    /// Client `k` reads `obj`, returning `(value, op record)`.
    ///
    /// # Errors
    ///
    /// Errors if the world quiesces first.
    pub fn read_obj(
        &mut self,
        k: usize,
        obj: ObjectId,
    ) -> Result<(Option<V>, DynCompletedOp<V>), TransferError> {
        let op = self.run_client_op(k, |c, ctx| c.begin_read_obj(obj, ctx))?;
        let v = match &op.kind {
            crate::history::OpKind::Read(v) => v.clone(),
            crate::history::OpKind::Write(_) => unreachable!("read returned a write record"),
        };
        Ok((v, op))
    }

    /// Starts a client op on the [default object](ObjectId::DEFAULT)
    /// without waiting (for concurrency experiments).
    pub fn begin_async(&mut self, k: usize, value: Option<V>) {
        self.begin_async_obj(k, ObjectId::DEFAULT, value);
    }

    /// Starts a client op on `obj` without waiting.
    pub fn begin_async_obj(&mut self, k: usize, obj: ObjectId, value: Option<V>) {
        let actor = self.client_actor(k);
        self.world
            .with_actor_ctx::<DynClient<V>, _>(actor, |c, ctx| match value {
                Some(v) => c.begin_write_obj(obj, v, ctx),
                None => c.begin_read_obj(obj, ctx),
            });
    }

    /// Whether client `k` has an operation in flight.
    pub fn client_busy(&self, k: usize) -> bool {
        self.world
            .actor::<DynClient<V>>(self.client_actor(k))
            .map(|c| c.driver.is_busy())
            .unwrap_or(false)
    }

    /// Server `from` transfers `Δ` to `to`; runs until the invocation
    /// completes.
    ///
    /// # Errors
    ///
    /// Propagates invocation errors; errors if the world quiesces first.
    pub fn transfer_and_wait(
        &mut self,
        from: ServerId,
        to: ServerId,
        delta: Ratio,
    ) -> Result<TransferOutcome, TransferError> {
        let actor = self.server_actor(from);
        let before = self
            .world
            .actor::<DynServer<V>>(actor)
            .expect("server")
            .completed_transfers()
            .len();
        self.world
            .with_actor_ctx::<DynServer<V>, Result<_, TransferError>>(actor, |srv, ctx| {
                srv.begin_transfer(to, delta, ctx).map(|_| ())
            })?;
        let done = self.world.run_until(|w| {
            w.actor::<DynServer<V>>(actor)
                .map(|s| s.completed_transfers().len() > before)
                .unwrap_or(false)
        });
        if !done {
            return Err(TransferError::InvalidArguments {
                reason: "world quiesced before the transfer completed".into(),
            });
        }
        Ok(self
            .world
            .actor::<DynServer<V>>(actor)
            .expect("server")
            .completed_transfers()[before]
            .0
            .clone())
    }

    /// Starts a transfer without waiting.
    ///
    /// # Errors
    ///
    /// Propagates invocation errors.
    pub fn transfer_async(
        &mut self,
        from: ServerId,
        to: ServerId,
        delta: Ratio,
    ) -> Result<(), TransferError> {
        let actor = self.server_actor(from);
        self.world
            .with_actor_ctx::<DynServer<V>, Result<_, TransferError>>(actor, |srv, ctx| {
                srv.begin_transfer(to, delta, ctx).map(|_| ())
            })
    }

    /// Starts a transfer in queued mode without waiting: requests issued
    /// while `from` is busy queue up and are announced batched in one
    /// `⟨T⟩` envelope when the in-flight transfer completes.
    ///
    /// # Errors
    ///
    /// Propagates invocation errors (never [`TransferError::Busy`]).
    pub fn transfer_queued(
        &mut self,
        from: ServerId,
        to: ServerId,
        delta: Ratio,
    ) -> Result<(), TransferError> {
        let actor = self.server_actor(from);
        self.world
            .with_actor_ctx::<DynServer<V>, Result<_, TransferError>>(actor, |srv, ctx| {
                srv.begin_transfer_queued(to, delta, ctx).map(|_| ())
            })
    }

    /// Runs the world to quiescence.
    pub fn settle(&mut self) {
        self.world.run_to_quiescence();
    }

    /// Collects the full operation history across clients (all objects;
    /// each op carries its [`ObjectId`]).
    pub fn history(&self) -> History<V> {
        let mut h = History::new();
        for k in 0..self.n_clients {
            if let Some(c) = self.world.actor::<DynClient<V>>(self.client_actor(k)) {
                for op in c.history_ops(k) {
                    h.record(op);
                }
            }
        }
        h
    }

    /// The history split per object — the input shape of
    /// [`crate::check_linearizable_keyed`]'s underlying partition, exposed
    /// for per-object reporting.
    pub fn keyed_history(&self) -> BTreeMap<ObjectId, History<V>> {
        self.history().partition_by_object()
    }

    /// Per-object operation counts and mean latency (virtual ms) over the
    /// *whole* recorded history — the latency side of the per-object
    /// metrics (the byte side lives in
    /// [`awr_sim::Metrics::bytes_by_object`]).
    pub fn per_object_latency(&self) -> BTreeMap<ObjectId, (usize, f64)> {
        self.history().per_object_latency()
    }

    /// All completed transfers across servers, sorted by completion time
    /// (the auditor's input).
    pub fn all_completed_transfers(&self) -> Vec<(TransferOutcome, Time)> {
        let mut all = Vec::new();
        for s in self.cfg.servers() {
            let a = self.server_actor(s);
            if let Some(srv) = self.world.actor::<DynServer<V>>(a) {
                all.extend(srv.completed_transfers().iter().cloned());
            }
            // A crash wipes the live list; the auditor is an omniscient
            // observer, so completions recorded by dead incarnations still
            // count (incarnations are disjoint — a recovered server starts
            // with an empty list).
            for dead in self.world.dead_incarnations::<DynServer<V>>(a) {
                all.extend(dead.completed_transfers().iter().cloned());
            }
        }
        all.sort_by_key(|(o, t)| (*t, o.from, o.counter));
        all
    }

    /// Total restarts across all clients (staleness metric).
    pub fn total_restarts(&self) -> u64 {
        (0..self.n_clients)
            .filter_map(|k| self.world.actor::<DynClient<V>>(self.client_actor(k)))
            .flat_map(|c| c.driver.completed.iter().map(|o| o.restarts))
            .sum()
    }
}
