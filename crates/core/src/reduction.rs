//! The consensus reductions (paper Algorithms 1 and 2, Theorems 1 and 2).
//!
//! These algorithms prove the *impossibility* of (pairwise) weight
//! reassignment in asynchronous failure-prone systems by showing that any
//! solution would solve consensus. We run them against the linearizable
//! oracles of [`crate::oracle`] — the hypothetical solutions — and verify
//! that all servers reach Agreement, Validity, and Termination under
//! arbitrary interleavings:
//!
//! * [`run_alg1`] — Algorithm 1, deterministic seeded interleaving;
//! * [`run_alg2`] — Algorithm 2, deterministic seeded interleaving;
//! * [`run_alg1_threads`] / [`run_alg2_threads`] — the same algorithms on
//!   real OS threads (non-deterministic interleavings).
//!
//! The initial weights are the constructions from the paper: servers in
//! `F = {s_1..s_f}` start at `(n−1)/(2f)`, the rest at `(n+1)/(2(n−f))`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use awr_types::{Ratio, ServerId, WeightMap};

use crate::oracle::{PwOracle, WrOracle};
use crate::swmr::SwmrArray;

/// The paper's initial weights for the reduction constructions:
/// `W_{s,0} = (n−1)/(2f)` for `s ∈ F = {s_1..s_f}`, else `(n+1)/(2(n−f))`.
///
/// # Panics
///
/// Panics unless `0 < f < n`.
pub fn reduction_initial_weights(n: usize, f: usize) -> WeightMap {
    assert!(f > 0 && f < n, "need 0 < f < n, got n={n} f={f}");
    let wf = Ratio::integer((n - 1) as i64) / Ratio::integer(2 * f as i64);
    let wr = Ratio::integer((n + 1) as i64) / Ratio::integer(2 * (n - f) as i64);
    WeightMap::from_fn(n, |s| if s.index() < f { wf } else { wr })
}

/// The result of running a reduction: one decision per server, in id order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusRun<V> {
    /// Decisions, index = server index.
    pub decisions: Vec<V>,
    /// The proposals, for validity checking.
    pub proposals: Vec<V>,
    /// Total polling iterations spent across servers (termination metric).
    pub poll_iterations: u64,
}

impl<V: PartialEq + Clone> ConsensusRun<V> {
    /// Agreement: all decisions equal.
    pub fn agreement(&self) -> bool {
        self.decisions.windows(2).all(|w| w[0] == w[1])
    }

    /// Validity (for our crash-free runs): the decision is one of the
    /// proposals.
    pub fn validity(&self) -> bool {
        self.decisions.iter().all(|d| self.proposals.contains(d))
    }

    /// The agreed value, if Agreement holds.
    pub fn decided(&self) -> Option<&V> {
        if self.agreement() {
            self.decisions.first()
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Algorithm 1: consensus from the (unrestricted) weight reassignment problem.
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Alg1Phase {
    /// About to write R[i] and invoke reassign.
    Init,
    /// Polling `read_changes(s_j)` round-robin.
    Polling { next_j: usize },
    /// Decided.
    Done(usize), // index of the winning server
}

/// One server of Algorithm 1 as an explicitly-steppable state machine.
struct Alg1Server {
    i: usize,
    phase: Alg1Phase,
    polls: u64,
}

impl Alg1Server {
    /// Advances by one atomic step. Returns `true` if newly decided.
    fn step<V: Clone + Send + Sync>(
        &mut self,
        oracle: &WrOracle,
        registers: &SwmrArray<V>,
        proposals: &[V],
        n: usize,
        f: usize,
    ) -> bool {
        match self.phase {
            Alg1Phase::Init => {
                // R[i] ← v_i
                registers.write(self.i, proposals[self.i].clone());
                // reassign(s_i, ±0.5): +0.5 for F-members, −0.5 otherwise.
                let delta = if self.i < f {
                    Ratio::dec("0.5")
                } else {
                    Ratio::dec("-0.5")
                };
                let me = ServerId(self.i as u32);
                let _ = oracle.reassign(me.into(), 2, me, delta);
                self.phase = Alg1Phase::Polling { next_j: 0 };
                false
            }
            Alg1Phase::Polling { next_j } => {
                self.polls += 1;
                let sj = ServerId(next_j as u32);
                let c = oracle.read_changes(sj);
                // Look for ⟨s_j, 2, s_j, Δ⟩ with Δ ≠ 0.
                let won = c.iter().any(|ch| {
                    ch.issuer == sj.into() && ch.counter == 2 && ch.target == sj && !ch.is_null()
                });
                if won {
                    self.phase = Alg1Phase::Done(next_j);
                    true
                } else {
                    self.phase = Alg1Phase::Polling {
                        next_j: (next_j + 1) % n,
                    };
                    false
                }
            }
            Alg1Phase::Done(_) => false,
        }
    }
}

/// Runs Algorithm 1 with a seeded random interleaving of server steps.
/// Deterministic per `(proposals, seed)`.
///
/// # Panics
///
/// Panics unless `0 < f < n` and `proposals.len() == n`.
///
/// # Examples
///
/// ```
/// use awr_core::reduction::run_alg1;
///
/// let run = run_alg1(4, 1, (0..4).map(|i| format!("v{i}")).collect(), 7);
/// assert!(run.agreement() && run.validity());
/// ```
pub fn run_alg1<V: Clone + PartialEq + Send + Sync>(
    n: usize,
    f: usize,
    proposals: Vec<V>,
    seed: u64,
) -> ConsensusRun<V> {
    assert_eq!(proposals.len(), n, "need one proposal per server");
    let oracle = WrOracle::new(reduction_initial_weights(n, f), f);
    let registers: SwmrArray<V> = SwmrArray::new(n);
    let mut servers: Vec<Alg1Server> = (0..n)
        .map(|i| Alg1Server {
            i,
            phase: Alg1Phase::Init,
            polls: 0,
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut undecided: Vec<usize> = (0..n).collect();
    let mut winners: Vec<Option<usize>> = vec![None; n];
    let mut safety_fuel: u64 = 1_000_000;
    while !undecided.is_empty() {
        safety_fuel -= 1;
        assert!(safety_fuel > 0, "Algorithm 1 failed to terminate");
        let pick = rng.random_range(0..undecided.len());
        let idx = undecided[pick];
        servers[idx].step(&oracle, &registers, &proposals, n, f);
        if let Alg1Phase::Done(j) = servers[idx].phase {
            winners[idx] = Some(j);
            undecided.swap_remove(pick);
        }
    }
    let poll_iterations = servers.iter().map(|s| s.polls).sum();
    let decisions = winners
        .into_iter()
        .map(|j| registers.read(j.expect("decided")).expect("R[j] written"))
        .collect();
    ConsensusRun {
        decisions,
        proposals,
        poll_iterations,
    }
}

/// Runs Algorithm 1 on real OS threads (true concurrency, OS-scheduled
/// interleavings). Each server busy-polls with a yield.
pub fn run_alg1_threads<V: Clone + PartialEq + Send + Sync + 'static>(
    n: usize,
    f: usize,
    proposals: Vec<V>,
) -> ConsensusRun<V> {
    assert_eq!(proposals.len(), n);
    let oracle = Arc::new(WrOracle::new(reduction_initial_weights(n, f), f));
    let registers: Arc<SwmrArray<V>> = Arc::new(SwmrArray::new(n));
    let proposals_arc = Arc::new(proposals.clone());
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let oracle = Arc::clone(&oracle);
            let registers = Arc::clone(&registers);
            let proposals = Arc::clone(&proposals_arc);
            std::thread::spawn(move || {
                let mut server = Alg1Server {
                    i,
                    phase: Alg1Phase::Init,
                    polls: 0,
                };
                loop {
                    server.step(&oracle, &registers, &proposals, n, f);
                    if let Alg1Phase::Done(j) = server.phase {
                        return (registers.read(j).expect("R[j] written"), server.polls);
                    }
                    std::thread::yield_now();
                }
            })
        })
        .collect();
    let mut decisions = Vec::with_capacity(n);
    let mut poll_iterations = 0;
    for h in handles {
        let (d, p) = h.join().expect("server thread panicked");
        decisions.push(d);
        poll_iterations += p;
    }
    ConsensusRun {
        decisions,
        proposals,
        poll_iterations,
    }
}

// ---------------------------------------------------------------------------
// Algorithm 2: consensus from pairwise weight reassignment.
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Alg2Phase {
    Init,
    Polling { next: usize },
    Done(usize),
}

struct Alg2Server {
    i: usize,
    phase: Alg2Phase,
    polls: u64,
}

impl Alg2Server {
    fn step<V: Clone + Send + Sync>(
        &mut self,
        oracle: &PwOracle,
        registers: &SwmrArray<V>,
        proposals: &[V],
        n: usize,
        f: usize,
    ) -> bool {
        match self.phase {
            Alg2Phase::Init => {
                registers.write(self.i, proposals[self.i].clone());
                let me = ServerId(self.i as u32);
                if self.i < f {
                    // transfer(s_i, s_{(i+1) mod f}, 0.1) within F.
                    // (The paper's `j ← (i+1) mod f` in 1-based indexing is
                    // exactly `(i+1) mod f` in our 0-based indexing.)
                    // With f = 1 the ring degenerates to a self-transfer;
                    // the F-internal transfers only exist to keep W_F
                    // constant, so the lone F member simply skips its
                    // transfer (W_F trivially unchanged).
                    if f > 1 {
                        let j = ServerId(((self.i + 1) % f) as u32);
                        let _ = oracle.transfer(me, 2, me, j, Ratio::dec("0.1"));
                    }
                } else {
                    // transfer(s_i, s_1, 0.4) from outside F.
                    let _ = oracle.transfer(me, 2, me, ServerId(0), Ratio::dec("0.4"));
                }
                self.phase = Alg2Phase::Polling { next: f };
                false
            }
            Alg2Phase::Polling { next } => {
                self.polls += 1;
                let sj = ServerId(next as u32);
                // Look for ⟨s_j, 2, s_1, 0.4⟩ ∈ read_changes(s_j)'s *credit
                // side*: the effective credit targets s_1, so read s_1's
                // changes. (The paper reads `read_changes(s_j)` and matches
                // ⟨s_j, 2, s_1, 0.4⟩ — a change *created for* s_1; querying
                // the target server returns it.)
                let c = oracle.read_changes(ServerId(0));
                let won = c.iter().any(|ch| {
                    ch.issuer == sj.into()
                        && ch.counter == 2
                        && ch.target == ServerId(0)
                        && ch.delta == Ratio::dec("0.4")
                });
                if won {
                    self.phase = Alg2Phase::Done(next);
                    true
                } else {
                    let mut nx = next + 1;
                    if nx >= n {
                        nx = f;
                    }
                    self.phase = Alg2Phase::Polling { next: nx };
                    false
                }
            }
            Alg2Phase::Done(_) => false,
        }
    }
}

/// Runs Algorithm 2 with a seeded random interleaving. Deterministic per
/// `(proposals, seed)`. Requires `f ≥ 1` and `n − f ≥ 1`.
///
/// # Examples
///
/// ```
/// use awr_core::reduction::run_alg2;
///
/// let run = run_alg2(7, 2, (0..7).collect::<Vec<i32>>(), 3);
/// assert!(run.agreement());
/// // The winner is a proposal from outside F = {s1, s2}.
/// assert!(*run.decided().unwrap() >= 2);
/// ```
pub fn run_alg2<V: Clone + PartialEq + Send + Sync>(
    n: usize,
    f: usize,
    proposals: Vec<V>,
    seed: u64,
) -> ConsensusRun<V> {
    assert_eq!(proposals.len(), n, "need one proposal per server");
    assert!(f >= 1 && n > f, "Algorithm 2 needs 1 ≤ f < n");
    let oracle = PwOracle::new(reduction_initial_weights(n, f), f);
    let registers: SwmrArray<V> = SwmrArray::new(n);
    let mut servers: Vec<Alg2Server> = (0..n)
        .map(|i| Alg2Server {
            i,
            phase: Alg2Phase::Init,
            polls: 0,
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut undecided: Vec<usize> = (0..n).collect();
    let mut winners: Vec<Option<usize>> = vec![None; n];
    let mut safety_fuel: u64 = 1_000_000;
    while !undecided.is_empty() {
        safety_fuel -= 1;
        assert!(safety_fuel > 0, "Algorithm 2 failed to terminate");
        let pick = rng.random_range(0..undecided.len());
        let idx = undecided[pick];
        servers[idx].step(&oracle, &registers, &proposals, n, f);
        if let Alg2Phase::Done(j) = servers[idx].phase {
            winners[idx] = Some(j);
            undecided.swap_remove(pick);
        }
    }
    let poll_iterations = servers.iter().map(|s| s.polls).sum();
    let decisions = winners
        .into_iter()
        .map(|j| registers.read(j.expect("decided")).expect("R[j] written"))
        .collect();
    ConsensusRun {
        decisions,
        proposals,
        poll_iterations,
    }
}

/// Runs Algorithm 2 on real OS threads.
pub fn run_alg2_threads<V: Clone + PartialEq + Send + Sync + 'static>(
    n: usize,
    f: usize,
    proposals: Vec<V>,
) -> ConsensusRun<V> {
    assert_eq!(proposals.len(), n);
    let oracle = Arc::new(PwOracle::new(reduction_initial_weights(n, f), f));
    let registers: Arc<SwmrArray<V>> = Arc::new(SwmrArray::new(n));
    let proposals_arc = Arc::new(proposals.clone());
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let oracle = Arc::clone(&oracle);
            let registers = Arc::clone(&registers);
            let proposals = Arc::clone(&proposals_arc);
            std::thread::spawn(move || {
                let mut server = Alg2Server {
                    i,
                    phase: Alg2Phase::Init,
                    polls: 0,
                };
                loop {
                    server.step(&oracle, &registers, &proposals, n, f);
                    if let Alg2Phase::Done(j) = server.phase {
                        return (registers.read(j).expect("R[j] written"), server.polls);
                    }
                    std::thread::yield_now();
                }
            })
        })
        .collect();
    let mut decisions = Vec::with_capacity(n);
    let mut poll_iterations = 0;
    for h in handles {
        let (d, p) = h.join().expect("server thread panicked");
        decisions.push(d);
        poll_iterations += p;
    }
    ConsensusRun {
        decisions,
        proposals,
        poll_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg1_agreement_validity_many_seeds() {
        for seed in 0..50 {
            let run = run_alg1(4, 1, vec!["a", "b", "c", "d"], seed);
            assert!(run.agreement(), "seed {seed}");
            assert!(run.validity(), "seed {seed}");
        }
    }

    #[test]
    fn alg1_various_sizes() {
        for (n, f) in [(3, 1), (5, 2), (7, 3), (10, 4)] {
            let proposals: Vec<u64> = (0..n as u64).collect();
            let run = run_alg1(n, f, proposals, 99);
            assert!(run.agreement(), "n={n} f={f}");
            assert!(run.validity(), "n={n} f={f}");
        }
    }

    #[test]
    fn alg1_decision_differs_across_seeds() {
        // Asynchrony means different schedules may elect different winners —
        // consensus only requires agreement *within* a run.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..40 {
            let run = run_alg1(5, 2, vec![0, 1, 2, 3, 4], seed);
            seen.insert(*run.decided().unwrap());
        }
        assert!(seen.len() > 1, "scheduler never changed the winner");
    }

    #[test]
    fn alg1_threads_agree() {
        for _ in 0..10 {
            let run = run_alg1_threads(5, 2, vec![10, 20, 30, 40, 50]);
            assert!(run.agreement());
            assert!(run.validity());
        }
    }

    #[test]
    fn alg2_agreement_and_winner_outside_f() {
        for seed in 0..50 {
            let run = run_alg2(7, 2, (0..7).collect::<Vec<i32>>(), seed);
            assert!(run.agreement(), "seed {seed}");
            assert!(run.validity(), "seed {seed}");
            // Winner must be proposed by a member of S \ F (indices ≥ f).
            assert!(*run.decided().unwrap() >= 2, "seed {seed}");
        }
    }

    #[test]
    fn alg2_various_sizes() {
        for (n, f) in [(4, 1), (7, 2), (9, 3)] {
            let run = run_alg2(n, f, (0..n as i32).collect(), 7);
            assert!(run.agreement(), "n={n} f={f}");
        }
    }

    #[test]
    fn alg2_threads_agree() {
        for _ in 0..10 {
            let run = run_alg2_threads(6, 2, (0..6).collect::<Vec<i32>>());
            assert!(run.agreement());
            assert!(*run.decided().unwrap() >= 2);
        }
    }

    #[test]
    fn initial_weights_sum_to_n() {
        for (n, f) in [(4, 1), (7, 2), (7, 3), (10, 4)] {
            let w = reduction_initial_weights(n, f);
            assert_eq!(w.total(), Ratio::integer(n as i64));
            assert!(awr_quorum::integrity_holds(&w, f));
        }
    }

    #[test]
    fn deterministic_replay() {
        let a = run_alg1(6, 2, (0..6).collect::<Vec<u32>>(), 1234);
        let b = run_alg1(6, 2, (0..6).collect::<Vec<u32>>(), 1234);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.poll_iterations, b.poll_iterations);
    }

    #[test]
    #[should_panic(expected = "one proposal per server")]
    fn wrong_proposal_count_panics() {
        let _ = run_alg1(4, 1, vec![1, 2], 0);
    }
}
