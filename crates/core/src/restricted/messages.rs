//! Wire messages of the restricted pairwise weight reassignment protocol
//! (Algorithms 3 and 4), with delta-aware change-set payloads.
//!
//! The change-set-carrying legs (`RC_Ack` and `WC`) ship a
//! [`CsRef`] instead of a full [`awr_types::ChangeSet`], negotiated per the
//! discipline of [`awr_types::sync`]:
//!
//! * `⟨RC, s, known⟩` carries the requester's digest of its last known
//!   restriction `C|s`; a server whose restriction matches answers with an
//!   O(1) [`CsRef::Summary`], a server that can cover the gap from its
//!   per-target journal answers with an O(gap) [`CsRef::Delta`], and
//!   anything else falls back to [`CsRef::Full`]. `known = 0` (an empty
//!   cache) always resolves, because every journal's empty prefix digests
//!   to 0.
//! * `⟨WC, s, ref⟩` write-backs open with a `Summary` toward servers the
//!   requester believes are already converged and `Full` toward the rest.
//!   A server that cannot prove it stores the referenced set replies
//!   `⟨WC_Miss, have⟩` with its own restriction digest; the requester
//!   answers with a delta against `have`, degrading to `Full` after one
//!   failed delta — so the exchange is bounded and the store-then-ack
//!   semantics of Algorithm 3 line 8 (and hence Validity-II) are untouched.
//!
//! A `WC_Ack` is still sent only once the receiving server *stores* the
//! referenced set (possibly proving it already did via the digest).

use awr_rb::RbEnvelope;
use awr_sim::Message;
use awr_types::{CsRef, ServerId, TransferChanges};
use serde::{Deserialize, Serialize};

/// Protocol messages. Names follow the paper's:
///
/// * `⟨T, c, c′⟩` — reliable-broadcast transfer announcement (Algorithm 4
///   line 14), carried inside an RB envelope. The envelope payload is a
///   *batch*: transfers queued behind an in-flight one (via
///   `TransferCore::transfer_queued`) are announced together, one envelope
///   and one relay wave for the whole batch, so the `T` leg is charged
///   per batch rather than per transfer. A single `transfer` is a batch of
///   one, with the per-transfer `T_Ack` contract unchanged;
/// * `⟨T_Ack, lc⟩` — per-transfer acknowledgment (line 11/15);
/// * `⟨RC, s⟩` / `⟨RC_Ack, ref⟩` — read_changes collect phase (Algorithm 3),
///   the reply carrying a [`CsRef`] to the replier's restriction;
/// * `⟨WC, s, ref⟩` / `⟨WC_Ack⟩` / `⟨WC_Miss⟩` — read_changes write-back
///   phase with digest negotiation (see the module docs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WrMsg {
    /// Reliable-broadcast leg carrying a batch of transfer change pairs.
    Rb(RbEnvelope<Vec<TransferChanges>>),
    /// Acknowledgment that the sender stored the changes of the transfer
    /// identified by the origin's local counter.
    TAck {
        /// The origin's local counter of the acknowledged transfer.
        counter: u64,
    },
    /// `read_changes` collect request for `target`'s changes.
    Rc {
        /// Requester-local operation number (matches replies to requests).
        op: u64,
        /// The server whose changes are being read.
        target: ServerId,
        /// Digest of the restriction the requester already holds for
        /// `target` (0 = nothing cached), so the replier can answer with a
        /// summary or delta instead of the full restriction.
        known: u64,
    },
    /// Reply to [`WrMsg::Rc`] referencing the changes the replier has
    /// stored for the requested server.
    RcAck {
        /// Echo of the request's `op`.
        op: u64,
        /// Reference to the replier's restriction `C|target`.
        changes: CsRef,
    },
    /// Write-back of the collected set (Algorithm 3 line 7).
    Wc {
        /// Echo of the request's `op`.
        op: u64,
        /// The server whose restriction is being written back — tells the
        /// receiver which per-target digest to check a summary against.
        target: ServerId,
        /// Reference to the union the reader collected.
        changes: CsRef,
    },
    /// Acknowledgment of a write-back: the sender stores the referenced set.
    WcAck {
        /// Echo of the request's `op`.
        op: u64,
    },
    /// The receiver of a [`WrMsg::Wc`] could not prove it stores the
    /// referenced set; `have` is its current restriction digest so the
    /// requester can resend a delta (or `Full`).
    WcMiss {
        /// Echo of the request's `op`.
        op: u64,
        /// The replier's current digest of `C|target`.
        have: u64,
    },
    /// Management RPC: ask the receiving server to invoke
    /// `transfer(self, to, delta)`. Not part of the paper's wire protocol —
    /// it stands in for the monitoring system's "please reassign" signal
    /// and lets harnesses (including the threaded runtime, which has no
    /// `with_actor_ctx`) drive transfers through ordinary messages.
    Invoke {
        /// The destination server.
        to: ServerId,
        /// The amount to transfer.
        delta: awr_types::Ratio,
    },
}

impl Message for WrMsg {
    fn kind(&self) -> &'static str {
        match self {
            WrMsg::Rb(_) => "T",
            WrMsg::TAck { .. } => "T_Ack",
            WrMsg::Rc { .. } => "RC",
            WrMsg::RcAck { .. } => "RC_Ack",
            WrMsg::Wc { .. } => "WC",
            WrMsg::WcAck { .. } => "WC_Ack",
            WrMsg::WcMiss { .. } => "WC_Miss",
            WrMsg::Invoke { .. } => "Invoke",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            // The change-set payloads dominate; charge the reference's own
            // size on top of a small fixed header.
            WrMsg::RcAck { changes, .. } => 16 + changes.wire_size(),
            WrMsg::Wc { changes, .. } => 20 + changes.wire_size(),
            // The RB envelope ships its batch of change pairs inline.
            WrMsg::Rb(env) => 24 + env.payload.len() * std::mem::size_of::<TransferChanges>(),
            // Everything else is plain data: the enum footprint is honest.
            _ => std::mem::size_of_val(self),
        }
    }

    fn content_digest(&self) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        fn hash_cs_ref(h: &mut impl Hasher, r: &CsRef) {
            // The variant matters, not just the implied set: a Summary and
            // a Delta describing the same set draw different receiver
            // behaviour (a summary can miss, content applies).
            match r {
                CsRef::Summary { digest, len } => (0u8, digest, len).hash(h),
                CsRef::Delta { base_digest, adds } => (1u8, base_digest, adds).hash(h),
                CsRef::Full(set) => (2u8, set.digest(), set.len()).hash(h),
            }
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        match self {
            WrMsg::Rb(env) => (0u8, env.origin.index(), env.seq, &env.payload).hash(&mut h),
            WrMsg::TAck { counter } => (1u8, counter).hash(&mut h),
            WrMsg::Rc { op, target, known } => (2u8, op, target, known).hash(&mut h),
            WrMsg::RcAck { op, changes } => {
                (3u8, op).hash(&mut h);
                hash_cs_ref(&mut h, changes);
            }
            WrMsg::Wc {
                op,
                target,
                changes,
            } => {
                (4u8, op, target).hash(&mut h);
                hash_cs_ref(&mut h, changes);
            }
            WrMsg::WcAck { op } => (5u8, op).hash(&mut h),
            WrMsg::WcMiss { op, have } => (6u8, op, have).hash(&mut h),
            WrMsg::Invoke { to, delta } => (7u8, to, delta).hash(&mut h),
        }
        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_paper_names() {
        let rc = WrMsg::Rc {
            op: 0,
            target: ServerId(0),
            known: 0,
        };
        assert_eq!(rc.kind(), "RC");
        assert_eq!(WrMsg::TAck { counter: 2 }.kind(), "T_Ack");
        assert_eq!(WrMsg::WcAck { op: 1 }.kind(), "WC_Ack");
        assert_eq!(WrMsg::WcMiss { op: 1, have: 7 }.kind(), "WC_Miss");
    }

    #[test]
    fn kinds_are_distinct_per_variant() {
        use awr_types::{ChangeSet, Ratio};
        let variants = [
            WrMsg::Rb(RbEnvelope {
                origin: awr_sim::ActorId(0),
                seq: 0,
                payload: vec![TransferChanges::new(
                    ServerId(0),
                    ServerId(1),
                    2,
                    Ratio::ONE,
                    true,
                )],
            }),
            WrMsg::TAck { counter: 1 },
            WrMsg::Rc {
                op: 0,
                target: ServerId(0),
                known: 0,
            },
            WrMsg::RcAck {
                op: 0,
                changes: CsRef::summary(&ChangeSet::new()),
            },
            WrMsg::Wc {
                op: 0,
                target: ServerId(0),
                changes: CsRef::summary(&ChangeSet::new()),
            },
            WrMsg::WcAck { op: 0 },
            WrMsg::WcMiss { op: 0, have: 0 },
            WrMsg::Invoke {
                to: ServerId(1),
                delta: Ratio::ONE,
            },
        ];
        let kinds: std::collections::BTreeSet<&str> = variants.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), variants.len(), "kind labels must be distinct");
    }

    #[test]
    fn rb_batch_wire_size_scales_with_batch() {
        use awr_types::Ratio;
        let pair = |c| TransferChanges::new(ServerId(0), ServerId(1), c, Ratio::ONE, true);
        let env = |payload| {
            WrMsg::Rb(RbEnvelope {
                origin: awr_sim::ActorId(0),
                seq: 0,
                payload,
            })
        };
        let one = env(vec![pair(2)]);
        let three = env(vec![pair(2), pair(3), pair(4)]);
        // Three coalesced transfers cost one envelope, not three.
        assert!(three.wire_size() < 3 * one.wire_size());
        assert_eq!(
            three.wire_size() - one.wire_size(),
            2 * std::mem::size_of::<TransferChanges>()
        );
    }

    #[test]
    fn wire_size_charges_for_change_payloads() {
        use awr_types::{Change, ChangeSet, Ratio};
        let mut set = ChangeSet::new();
        for i in 0..50u64 {
            set.insert(Change::new(ServerId(0), 2 + i, ServerId(0), Ratio::ZERO));
        }
        let summary = WrMsg::RcAck {
            op: 0,
            changes: CsRef::summary(&set),
        };
        let full = WrMsg::RcAck {
            op: 0,
            changes: CsRef::Full(set),
        };
        assert!(summary.wire_size() < full.wire_size());
        assert!(full.wire_size() > 50 * std::mem::size_of::<Change>());
    }
}
