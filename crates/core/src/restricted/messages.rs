//! Wire messages of the restricted pairwise weight reassignment protocol
//! (Algorithms 3 and 4).

use awr_rb::RbEnvelope;
use awr_sim::Message;
use awr_types::{ChangeSet, ServerId, TransferChanges};

/// Protocol messages. Names follow the paper's:
///
/// * `⟨T, c, c′⟩` — reliable-broadcast transfer announcement (Algorithm 4
///   line 14), carried inside an RB envelope;
/// * `⟨T_Ack, lc⟩` — per-transfer acknowledgment (line 11/15);
/// * `⟨RC, s⟩` / `⟨RC_Ack, C_s⟩` — read_changes collect phase (Algorithm 3);
/// * `⟨WC, C⟩` / `⟨WC_Ack⟩` — read_changes write-back phase.
#[derive(Clone, Debug)]
pub enum WrMsg {
    /// Reliable-broadcast leg carrying the transfer's change pair.
    Rb(RbEnvelope<TransferChanges>),
    /// Acknowledgment that the sender stored the changes of the transfer
    /// identified by the origin's local counter.
    TAck {
        /// The origin's local counter of the acknowledged transfer.
        counter: u64,
    },
    /// `read_changes` collect request for `target`'s changes.
    Rc {
        /// Requester-local operation number (matches replies to requests).
        op: u64,
        /// The server whose changes are being read.
        target: ServerId,
    },
    /// Reply to [`WrMsg::Rc`] with the changes the replier has stored.
    RcAck {
        /// Echo of the request's `op`.
        op: u64,
        /// The changes stored for the requested server.
        changes: ChangeSet,
    },
    /// Write-back of the collected set (Algorithm 3 line 7).
    Wc {
        /// Echo of the request's `op`.
        op: u64,
        /// The union the reader collected.
        changes: ChangeSet,
    },
    /// Acknowledgment of a write-back.
    WcAck {
        /// Echo of the request's `op`.
        op: u64,
    },
    /// Management RPC: ask the receiving server to invoke
    /// `transfer(self, to, delta)`. Not part of the paper's wire protocol —
    /// it stands in for the monitoring system's "please reassign" signal
    /// and lets harnesses (including the threaded runtime, which has no
    /// `with_actor_ctx`) drive transfers through ordinary messages.
    Invoke {
        /// The destination server.
        to: ServerId,
        /// The amount to transfer.
        delta: awr_types::Ratio,
    },
}

impl Message for WrMsg {
    fn kind(&self) -> &'static str {
        match self {
            WrMsg::Rb(_) => "T",
            WrMsg::TAck { .. } => "T_Ack",
            WrMsg::Rc { .. } => "RC",
            WrMsg::RcAck { .. } => "RC_Ack",
            WrMsg::Wc { .. } => "WC",
            WrMsg::WcAck { .. } => "WC_Ack",
            WrMsg::Invoke { .. } => "Invoke",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_paper_names() {
        let rc = WrMsg::Rc {
            op: 0,
            target: ServerId(0),
        };
        assert_eq!(rc.kind(), "RC");
        assert_eq!(WrMsg::TAck { counter: 2 }.kind(), "T_Ack");
        assert_eq!(WrMsg::WcAck { op: 1 }.kind(), "WC_Ack");
    }
}
