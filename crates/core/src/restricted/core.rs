//! The embeddable protocol engines: [`TransferCore`] (Algorithm 4) and
//! [`ReadChangesClient`] (Algorithm 3, requester side).
//!
//! Both are plain state machines that host actors embed. The pure
//! weight-reassignment server ([`crate::restricted::RpServer`]) applies
//! learned changes immediately; the dynamic-weighted storage server defers
//! application behind a register refresh (Algorithm 4 lines 8–9) — which is
//! why "apply these changes" is surfaced to the host as an
//! [`ApplyRequest`] instead of happening internally.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use awr_rb::RbEngine;
use awr_sim::{ActorId, Context, Message, Time};
use awr_types::{Change, ChangeSet, CsRef, ProcessId, Ratio, ServerId, TransferChanges};

use crate::problem::{RpConfig, TransferError, TransferOutcome};
use crate::restricted::messages::WrMsg;

/// Maps a server id to its actor id given the base offset at which servers
/// were added to the world (servers occupy `base .. base + n`).
pub fn server_actor(base: usize, s: ServerId) -> ActorId {
    ActorId(base + s.index())
}

/// Inverse of [`server_actor`] for actors known to be servers.
pub fn actor_server(base: usize, a: ActorId) -> ServerId {
    ServerId((a.index() - base) as u32)
}

/// Changes that a host must apply (possibly after a register refresh),
/// together with the write-back acknowledgment owed once applied.
#[derive(Clone, Debug)]
pub struct ApplyRequest {
    /// Changes not yet in the local set `C`.
    pub new_changes: Vec<Change>,
    /// If the changes came from a `⟨WC, C⟩` write-back: who to ack and with
    /// which op number, once applied.
    pub wc_ack: Option<(ActorId, u64)>,
}

impl ApplyRequest {
    /// Whether any new change (with non-zero delta) targets `me` — the
    /// Algorithm 4 line 8 condition triggering a register refresh.
    pub fn affects(&self, me: ServerId) -> bool {
        self.new_changes
            .iter()
            .any(|c| c.target == me && !c.is_null())
    }
}

/// Events surfaced to the host by [`TransferCore::handle`].
#[derive(Clone, Debug)]
pub enum CoreEvent {
    /// New changes to apply; call [`TransferCore::apply`] (immediately, or
    /// after a register refresh in storage mode).
    NeedApply(ApplyRequest),
    /// This server's own outstanding transfer completed.
    Completed(TransferOutcome),
}

/// The immediate disposition of a [`TransferCore::transfer`] (or
/// [`TransferCore::transfer_queued`]) invocation.
#[derive(Clone, Debug)]
pub enum TransferStart {
    /// The local C2 check failed: the transfer completed *null* right away
    /// (Algorithm 4 lines 17–18); the outcome records zero-weight changes.
    Null(TransferOutcome),
    /// The transfer is effective and in flight (waiting for `n − f − 1`
    /// acknowledgments); completion surfaces later as
    /// [`CoreEvent::Completed`].
    Effective,
    /// The request was queued behind an in-flight transfer
    /// ([`TransferCore::transfer_queued`] only). Its C2 check runs when the
    /// queue drains; it is announced — coalesced with every other queued
    /// request — in a single RB envelope, and both its start and its
    /// completion surface later as [`CoreEvent::Completed`] (null requests
    /// included).
    Queued,
}

#[derive(Debug)]
struct PendingTransfer {
    outcome: TransferOutcome,
    acks: HashSet<ActorId>,
    needed: usize,
}

/// Per-server engine for Algorithm 4 (`transfer`) plus the server side of
/// Algorithm 3 (`RC`/`WC` handling).
#[derive(Debug)]
pub struct TransferCore {
    cfg: RpConfig,
    me: ServerId,
    actor_base: usize,
    /// Local counter `lc`. Starts at 2: counter 1 is reserved for the
    /// conventional initial-weight changes (Algorithm 4 line 2 pairs
    /// `lc ← 1` with `⟨s, 1, s, 1⟩`; starting real transfers at 2 keeps
    /// operation keys collision-free and matches the `⟨s_j, 2, …⟩` lookups
    /// of Algorithms 1–2).
    lc: u64,
    changes: ChangeSet,
    /// The RB engine carries *batches* of change pairs: queued transfers
    /// coalesce into one envelope (see [`TransferCore::transfer_queued`]).
    rb: RbEngine<Vec<TransferChanges>>,
    /// In-flight own transfers, keyed by local counter. [`TransferCore::transfer`]
    /// keeps at most one entry (processes are sequential, §II); a drained
    /// queue of [`TransferCore::transfer_queued`] requests may hold several,
    /// all announced by the same envelope.
    pending: BTreeMap<u64, PendingTransfer>,
    /// Requests accepted by [`TransferCore::transfer_queued`] while a
    /// transfer was in flight, started (as one batch) when it completes.
    queued: VecDeque<(ServerId, Ratio)>,
    /// Transfers (issuer, counter) we already acknowledged — the
    /// "if not already sent" of Algorithm 4 line 11.
    acked: HashSet<(ServerId, u64)>,
    /// Completed own transfers with completion times (for the auditor).
    completed: Vec<(TransferOutcome, Time)>,
}

impl TransferCore {
    /// Creates the engine for server `me`. `actor_base` is the world index
    /// of server 0 (servers must occupy contiguous actor ids).
    pub fn new(cfg: RpConfig, me: ServerId, actor_base: usize) -> TransferCore {
        let members = (0..cfg.n).map(|i| ActorId(actor_base + i)).collect();
        TransferCore {
            changes: ChangeSet::from_initial_weights(&cfg.initial_weights),
            rb: RbEngine::new(server_actor(actor_base, me), members),
            cfg,
            me,
            actor_base,
            lc: 2,
            pending: BTreeMap::new(),
            queued: VecDeque::new(),
            acked: HashSet::new(),
            completed: Vec::new(),
        }
    }

    /// Rebuilds the engine from a recovered set of completed changes (the
    /// durable-storage restart path). The local counter resumes past the
    /// highest counter this server ever issued — changes are globally keyed
    /// by `⟨issuer, counter⟩`, so reusing a counter after a crash would
    /// alias a previous operation. In-flight transfer state (pending
    /// invocations, relay acks, queued requests) is *not* recovered: an
    /// interrupted own transfer was never completed, and restarting with it
    /// dropped is indistinguishable from the invocation never having been
    /// accepted (crash-stop semantics, paper §II).
    pub fn recover(
        cfg: RpConfig,
        me: ServerId,
        actor_base: usize,
        changes: ChangeSet,
    ) -> TransferCore {
        let mut core = TransferCore::new(cfg, me, actor_base);
        let issued_max = changes
            .iter()
            .filter(|c| c.issuer == ProcessId::Server(me))
            .map(|c| c.counter)
            .max()
            .unwrap_or(1);
        core.lc = (issued_max + 1).max(2);
        // Resume the RB sequence past anything we could have broadcast:
        // every envelope consumed at least one counter, so counters are an
        // upper bound on sequences used. Without this, peers (whose dedup
        // sets survive our crash) would swallow every post-recovery
        // broadcast as a duplicate and the transfer would never complete.
        core.rb.resume_at(issued_max + 1);
        core.changes = changes;
        core
    }

    /// The configuration this server runs under.
    pub fn config(&self) -> &RpConfig {
        &self.cfg
    }

    /// This server's id.
    pub fn server_id(&self) -> ServerId {
        self.me
    }

    /// The local set of changes `C`.
    pub fn changes(&self) -> &ChangeSet {
        &self.changes
    }

    /// Harness/bench hook: merges `set` into the local `C` directly,
    /// bypassing the protocol (no `T_Ack`s, no write-back bookkeeping).
    /// Used to pre-seed converged steady states in benchmarks and tests;
    /// never called by protocol code.
    pub fn absorb_changes(&mut self, set: &ChangeSet) {
        self.changes.merge(set);
    }

    /// Reconciles the local `C` against a wire reference (the recovery
    /// rejoin path), returning whether anything new was absorbed.
    pub fn absorb_ref(&mut self, r: &CsRef) -> bool {
        self.changes.apply_ref(r).learned()
    }

    /// Truncates the local change journal to at most `keep` recent entries
    /// (see [`ChangeSet::compact_journal`]); returns the entries dropped.
    /// Callers owning a write-ahead log must persist the journal tail
    /// before compacting.
    pub fn compact_journal(&mut self, keep: usize) -> usize {
        self.changes.compact_journal(keep)
    }

    /// `weight()` of Algorithm 4 lines 4–5: this server's weight computed
    /// from its local changes.
    pub fn weight(&self) -> Ratio {
        self.changes.server_weight(self.me)
    }

    /// `get_changes(s)` of Algorithm 4 line 6.
    pub fn get_changes(&self, s: ServerId) -> ChangeSet {
        self.changes.restricted_to(s)
    }

    /// Completed own transfers with completion times.
    pub fn completed(&self) -> &[(TransferOutcome, Time)] {
        &self.completed
    }

    /// Whether a transfer is currently in flight or queued.
    pub fn is_busy(&self) -> bool {
        !self.pending.is_empty() || !self.queued.is_empty()
    }

    /// A canonical digest of this engine's logical state, for the
    /// model-checking explorer. Covers everything that decides future
    /// behaviour — counter, change set, RB engine, in-flight/queued/acked
    /// bookkeeping, completed outcomes — but no virtual times (two
    /// schedules reaching the same protocol state must hash equal).
    /// Hash-set contents are sorted before hashing.
    pub fn state_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.lc.hash(&mut h);
        self.changes.digest().hash(&mut h);
        self.rb.state_digest().hash(&mut h);
        for (counter, p) in &self.pending {
            counter.hash(&mut h);
            p.outcome.hash(&mut h);
            p.needed.hash(&mut h);
            let mut acks: Vec<usize> = p.acks.iter().map(|a| a.index()).collect();
            acks.sort_unstable();
            acks.hash(&mut h);
        }
        for (to, delta) in &self.queued {
            (to, delta).hash(&mut h);
        }
        let mut acked: Vec<(ServerId, u64)> = self.acked.iter().copied().collect();
        acked.sort_unstable();
        acked.hash(&mut h);
        for (outcome, _at) in &self.completed {
            outcome.hash(&mut h);
        }
        h.finish()
    }

    fn validate(&self, to: ServerId, delta: Ratio) -> Result<(), TransferError> {
        if !delta.is_positive() {
            return Err(TransferError::InvalidArguments {
                reason: format!("delta must be positive, got {delta}"),
            });
        }
        if to == self.me {
            return Err(TransferError::InvalidArguments {
                reason: "cannot transfer to self".into(),
            });
        }
        if to.index() >= self.cfg.n {
            return Err(TransferError::InvalidArguments {
                reason: format!("unknown destination {to}"),
            });
        }
        Ok(())
    }

    /// Invokes `transfer(me, to, Δ)` (Algorithm 4 lines 12–20).
    ///
    /// Under C1, only this server can move its own weight, which the
    /// signature enforces structurally: there is no way to name another
    /// source.
    ///
    /// # Errors
    ///
    /// [`TransferError::Busy`] if the previous transfer has not completed
    /// (processes are sequential, §II); [`TransferError::InvalidArguments`]
    /// for `Δ ≤ 0`, unknown `to`, or `to == me`.
    pub fn transfer<M: Message>(
        &mut self,
        to: ServerId,
        delta: Ratio,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(WrMsg) -> M + Copy,
    ) -> Result<TransferStart, TransferError> {
        if self.is_busy() {
            return Err(TransferError::Busy);
        }
        // Not busy, so this can never return `Queued`.
        self.transfer_queued(to, delta, ctx, wrap)
    }

    /// Like [`TransferCore::transfer`], but a request arriving while a
    /// transfer is in flight is *queued* instead of rejected. When the
    /// in-flight transfer completes, every queued request runs its C2 check
    /// (in arrival order, each seeing its predecessors' debits) and all
    /// effective ones are RB-broadcast **in a single `⟨T⟩` envelope** — the
    /// batching that keeps the reliable-broadcast leg from paying one
    /// envelope-plus-relay wave per transfer under bursty reassignment.
    ///
    /// Queued requests surface *only* as [`CoreEvent::Completed`] events
    /// (null outcomes included), since the invocation has long returned by
    /// the time their C2 check runs.
    ///
    /// # Errors
    ///
    /// [`TransferError::InvalidArguments`] for `Δ ≤ 0`, unknown `to`, or
    /// `to == me` (checked at enqueue time).
    pub fn transfer_queued<M: Message>(
        &mut self,
        to: ServerId,
        delta: Ratio,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(WrMsg) -> M + Copy,
    ) -> Result<TransferStart, TransferError> {
        self.validate(to, delta)?;
        if self.is_busy() {
            self.queued.push_back((to, delta));
            return Ok(TransferStart::Queued);
        }
        let mut starts = self.start_batch(vec![(to, delta)], ctx, wrap);
        // Degenerate configs (n − f − 1 == 0) complete instantly.
        let _ = self.reap_complete(ctx.now());
        Ok(starts.pop().expect("one request, one disposition"))
    }

    /// Starts every request in `reqs` now: per-request C2 check (each
    /// seeing its predecessors' debits), then one RB broadcast carrying all
    /// effective pairs. Returns the per-request dispositions, in order.
    fn start_batch<M: Message>(
        &mut self,
        reqs: Vec<(ServerId, Ratio)>,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(WrMsg) -> M + Copy,
    ) -> Vec<TransferStart> {
        let mut starts = Vec::with_capacity(reqs.len());
        let mut batch: Vec<TransferChanges> = Vec::new();
        for (to, delta) in reqs {
            let counter = self.lc;
            self.lc += 1;
            // Line 12: the local C2 check — weight() > Δ + W_{S,0}/(2(n−f)).
            let clamp_ok = self.weight() > delta + self.cfg.floor();
            #[cfg(feature = "mutate")]
            // MUTATION: drop the Property-1 floor clamp — the transfer
            // proceeds even when it takes the issuer below the RP-Integrity
            // floor.
            let clamp_ok =
                clamp_ok || awr_sim::mutate::armed(awr_sim::mutate::Mutation::DropFloorClamp);
            if clamp_ok {
                let pair = TransferChanges::new(self.me, to, counter, delta, true);
                // Line 13: add both changes to the local set now.
                self.changes.insert(pair.debit);
                self.changes.insert(pair.credit);
                // Never ack our own transfer (we wait for *other* servers).
                self.acked.insert((self.me, counter));
                let outcome = TransferOutcome {
                    from: self.me,
                    to,
                    requested: delta,
                    changes: pair,
                    counter,
                };
                self.pending.insert(
                    counter,
                    PendingTransfer {
                        outcome,
                        acks: HashSet::new(),
                        needed: self.cfg.n - self.cfg.f - 1,
                    },
                );
                batch.push(pair);
                starts.push(TransferStart::Effective);
            } else {
                // Lines 17–18: null completion, no broadcast, no stored
                // change (zero-weight changes don't affect weights, per the
                // paper's Theorem 4 proof remark).
                let pair = TransferChanges::new(self.me, to, counter, delta, false);
                let outcome = TransferOutcome {
                    from: self.me,
                    to,
                    requested: delta,
                    changes: pair,
                    counter,
                };
                self.completed.push((outcome.clone(), ctx.now()));
                starts.push(TransferStart::Null(outcome));
            }
        }
        if !batch.is_empty() {
            // Line 14: RB-broadcast ⟨T, c, c′⟩ — once for the whole batch.
            self.rb
                .broadcast(batch, ctx, move |env| wrap(WrMsg::Rb(env)));
        }
        starts
    }

    /// Moves every fully-acknowledged pending transfer to `completed`,
    /// returning the reaped outcomes (in counter order).
    fn reap_complete(&mut self, now: Time) -> Vec<TransferOutcome> {
        let done: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.acks.len() >= p.needed)
            .map(|(c, _)| *c)
            .collect();
        done.into_iter()
            .map(|c| {
                let p = self.pending.remove(&c).expect("key collected above");
                self.completed.push((p.outcome.clone(), now));
                p.outcome
            })
            .collect()
    }

    /// Handles a protocol message addressed to this server. Returns events
    /// the host must act on (change application, completion).
    pub fn handle<M: Message>(
        &mut self,
        from: ActorId,
        msg: WrMsg,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(WrMsg) -> M + Copy,
    ) -> Vec<CoreEvent> {
        match msg {
            WrMsg::Rb(env) => {
                let delivered = self.rb.on_envelope(env, ctx, move |e| wrap(WrMsg::Rb(e)));
                match delivered {
                    Some(batch) => {
                        // One staging pass for the whole batch: a storage
                        // host pays at most one register refresh for all
                        // the coalesced transfers.
                        let all: Vec<Change> = batch.iter().flat_map(|pair| pair.both()).collect();
                        let req = self.stage_changes(all, None);
                        match req {
                            Some(r) => vec![CoreEvent::NeedApply(r)],
                            None => Vec::new(),
                        }
                    }
                    None => Vec::new(),
                }
            }
            WrMsg::TAck { counter } => {
                let mut events = Vec::new();
                if let Some(p) = self.pending.get_mut(&counter) {
                    p.acks.insert(from);
                }
                for outcome in self.reap_complete(ctx.now()) {
                    events.push(CoreEvent::Completed(outcome));
                }
                // Every in-flight transfer is done: start the queued batch.
                if self.pending.is_empty() && !self.queued.is_empty() {
                    let reqs: Vec<(ServerId, Ratio)> = self.queued.drain(..).collect();
                    for start in self.start_batch(reqs, ctx, wrap) {
                        // Queued invocations returned long ago; null
                        // dispositions surface as completions instead.
                        if let TransferStart::Null(o) = start {
                            events.push(CoreEvent::Completed(o));
                        }
                    }
                    for outcome in self.reap_complete(ctx.now()) {
                        events.push(CoreEvent::Completed(outcome));
                    }
                }
                events
            }
            WrMsg::Rc { op, target, known } => {
                // Algorithm 3 lines 12–13, with the delta-aware reply. The
                // O(1) per-target digest decides the steady-state case —
                // requester already converged — without building the
                // restriction at all.
                let digest = self.changes.target_digest(target);
                let changes = if known == digest {
                    CsRef::Summary {
                        digest,
                        len: self.changes.target_len(target),
                    }
                } else {
                    CsRef::for_peer(&self.get_changes(target), known)
                };
                ctx.send(from, wrap(WrMsg::RcAck { op, changes }));
                Vec::new()
            }
            WrMsg::Wc {
                op,
                target,
                changes,
            } => self.handle_write_back(from, op, target, changes, ctx, wrap),
            WrMsg::RcAck { .. }
            | WrMsg::WcAck { .. }
            | WrMsg::WcMiss { .. }
            | WrMsg::Invoke { .. } => {
                // Client-side / management messages; the host handles
                // `Invoke` before calling into the core.
                Vec::new()
            }
        }
    }

    /// Algorithm 3 lines 14–15 — the server side of a `⟨WC, target, ref⟩`
    /// write-back. The ack contract is unchanged from the full-set
    /// protocol: `WC_Ack` goes out exactly when this server stores the
    /// referenced set (possibly proving it already does via the per-target
    /// digest). A reference it cannot resolve draws a `WC_Miss` carrying
    /// the local restriction digest, and the requester escalates
    /// (delta → full), so the exchange stays bounded.
    fn handle_write_back<M: Message>(
        &mut self,
        from: ActorId,
        op: u64,
        target: ServerId,
        changes: CsRef,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(WrMsg) -> M + Copy,
    ) -> Vec<CoreEvent> {
        let have = self.changes.target_digest(target);
        match changes {
            CsRef::Full(set) => {
                // `contains_all` decides the no-op write-back — the common
                // steady-state case — in O(1) via the digest/cardinality
                // fast paths before falling back to a subset scan.
                if self.changes.contains_all(&set) {
                    ctx.send(from, wrap(WrMsg::WcAck { op }));
                    return Vec::new();
                }
                self.ack_or_stage(from, op, set.iter().copied(), ctx, wrap)
            }
            CsRef::Summary { digest, len } => {
                if have == digest && self.changes.target_len(target) == len {
                    // The restriction this server stores *is* the collected
                    // set (w.h.p.): ack without any content on the wire.
                    ctx.send(from, wrap(WrMsg::WcAck { op }));
                } else {
                    ctx.send(from, wrap(WrMsg::WcMiss { op, have }));
                }
                Vec::new()
            }
            CsRef::Delta { base_digest, adds } => {
                if base_digest != have {
                    // The delta was cut against a restriction this server no
                    // longer (or never) had; ask for a better reference.
                    ctx.send(from, wrap(WrMsg::WcMiss { op, have }));
                    return Vec::new();
                }
                self.ack_or_stage(from, op, adds.into_iter(), ctx, wrap)
            }
        }
    }

    /// The content-carrying tail of a write-back: ack immediately when
    /// every candidate change is already stored, otherwise stage the new
    /// ones with the owed `WC_Ack` attached (sent by [`TransferCore::apply`]
    /// once the host applies them — the single place the ack contract lives).
    fn ack_or_stage<M: Message>(
        &self,
        from: ActorId,
        op: u64,
        candidate: impl Iterator<Item = Change>,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(WrMsg) -> M + Copy,
    ) -> Vec<CoreEvent> {
        let new: Vec<Change> = candidate.filter(|c| !self.changes.contains(c)).collect();
        if new.is_empty() {
            ctx.send(from, wrap(WrMsg::WcAck { op }));
            return Vec::new();
        }
        let req = self
            .stage_changes(new, Some((from, op)))
            .expect("non-empty set stages");
        vec![CoreEvent::NeedApply(req)]
    }

    /// Filters already-known changes and packages the rest for the host.
    fn stage_changes(
        &self,
        candidate: Vec<Change>,
        wc_ack: Option<(ActorId, u64)>,
    ) -> Option<ApplyRequest> {
        let new_changes: Vec<Change> = candidate
            .into_iter()
            .filter(|c| !self.changes.contains(c))
            .collect();
        if new_changes.is_empty() && wc_ack.is_none() {
            None
        } else {
            Some(ApplyRequest {
                new_changes,
                wc_ack,
            })
        }
    }

    /// `write_changes` (Algorithm 4 lines 7–11): inserts the staged changes,
    /// acknowledges the originating transfer(s), and sends any owed WC ack.
    /// Hosts call this directly (pure mode) or after their register refresh
    /// (storage mode).
    pub fn apply<M: Message>(
        &mut self,
        req: ApplyRequest,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(WrMsg) -> M + Copy,
    ) {
        for c in &req.new_changes {
            self.changes.insert(*c);
            // Line 11: T_Ack to the issuer, once per (issuer, counter).
            if let Some(issuer) = c.issuer.as_server() {
                if issuer != self.me && self.acked.insert((issuer, c.counter)) {
                    ctx.send(
                        server_actor(self.actor_base, issuer),
                        wrap(WrMsg::TAck { counter: c.counter }),
                    );
                }
            }
        }
        if let Some((to, op)) = req.wc_ack {
            ctx.send(to, wrap(WrMsg::WcAck { op }));
        }
    }
}

// ---------------------------------------------------------------------------
// Algorithm 3, requester side.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct RcPending {
    op: u64,
    target: ServerId,
    acc: ChangeSet,
    responders: HashSet<ActorId>,
    /// Resolved restriction digest per replier at `RC_Ack` time — drives
    /// the per-destination write-back payload (summary to converged
    /// servers, content to the rest).
    peer_digests: HashMap<ActorId, u64>,
    /// Repliers re-asked with `known = 0` after an unresolvable reference
    /// (bounded: one forced-full retry per server per invocation).
    forced_full: HashSet<ActorId>,
    /// Servers whose write-back already drew one `WC_Miss`; the next
    /// resend is unconditionally `Full`.
    wc_retried: HashSet<ActorId>,
    wrote_back: bool,
    wc_acks: HashSet<ActorId>,
    started: Time,
}

/// A completed `read_changes` invocation.
#[derive(Clone, Debug)]
pub struct ReadChangesResult {
    /// The server whose changes were read.
    pub target: ServerId,
    /// The returned set (a superset of `C_{s,t}` at invocation time —
    /// Validity-II).
    pub changes: ChangeSet,
    /// Invocation time.
    pub started: Time,
    /// Completion time.
    pub finished: Time,
}

impl ReadChangesResult {
    /// The target's weight under the returned set.
    pub fn weight(&self) -> Ratio {
        self.changes.server_weight(self.target)
    }
}

/// Requester-side engine for `read_changes` (Algorithm 3 lines 1–9): any
/// process — client or server — embeds one to read a server's changes.
///
/// Keeps a per-target cache of the last restriction it learned, which is
/// what lets servers answer `⟨RC⟩` with an O(1) summary (or an O(gap)
/// delta) in the steady state instead of re-shipping the restriction —
/// see the [`super::messages`] docs for the negotiation.
#[derive(Debug)]
pub struct ReadChangesClient {
    cfg: RpConfig,
    actor_base: usize,
    next_op: u64,
    pending: Option<RcPending>,
    /// Last known restriction per target (digest-negotiation cache).
    cache: BTreeMap<ServerId, ChangeSet>,
    /// Completed invocations, in completion order.
    pub results: Vec<ReadChangesResult>,
}

impl ReadChangesClient {
    /// Creates an engine. `actor_base` is the world index of server 0.
    pub fn new(cfg: RpConfig, actor_base: usize) -> ReadChangesClient {
        ReadChangesClient {
            cfg,
            actor_base,
            next_op: 0,
            pending: None,
            cache: BTreeMap::new(),
            results: Vec::new(),
        }
    }

    /// Whether an invocation is in flight.
    pub fn is_busy(&self) -> bool {
        self.pending.is_some()
    }

    /// A canonical digest of this engine's logical state (no virtual
    /// times), for the model-checking explorer. Hash-container contents are
    /// sorted before hashing.
    pub fn state_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        fn sorted_ids(set: &HashSet<ActorId>) -> Vec<usize> {
            let mut v: Vec<usize> = set.iter().map(|a| a.index()).collect();
            v.sort_unstable();
            v
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.next_op.hash(&mut h);
        if let Some(p) = &self.pending {
            p.op.hash(&mut h);
            p.target.hash(&mut h);
            p.acc.digest().hash(&mut h);
            sorted_ids(&p.responders).hash(&mut h);
            let mut digests: Vec<(usize, u64)> = p
                .peer_digests
                .iter()
                .map(|(a, d)| (a.index(), *d))
                .collect();
            digests.sort_unstable();
            digests.hash(&mut h);
            sorted_ids(&p.forced_full).hash(&mut h);
            sorted_ids(&p.wc_retried).hash(&mut h);
            p.wrote_back.hash(&mut h);
            sorted_ids(&p.wc_acks).hash(&mut h);
        }
        for (target, set) in &self.cache {
            target.hash(&mut h);
            set.digest().hash(&mut h);
        }
        for r in &self.results {
            r.target.hash(&mut h);
            r.changes.digest().hash(&mut h);
        }
        h.finish()
    }

    /// Invokes `read_changes(target)`: broadcasts `⟨RC, target⟩` to all
    /// servers (Algorithm 3 line 2).
    ///
    /// # Errors
    ///
    /// [`TransferError::Busy`] if an invocation is already in flight
    /// (processes are sequential).
    pub fn start<M: Message>(
        &mut self,
        target: ServerId,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(WrMsg) -> M + Copy,
    ) -> Result<(), TransferError> {
        if self.pending.is_some() {
            return Err(TransferError::Busy);
        }
        let op = self.next_op;
        self.next_op += 1;
        self.pending = Some(RcPending {
            op,
            target,
            acc: ChangeSet::new(),
            responders: HashSet::new(),
            peer_digests: HashMap::new(),
            forced_full: HashSet::new(),
            wc_retried: HashSet::new(),
            wrote_back: false,
            wc_acks: HashSet::new(),
            started: ctx.now(),
        });
        // Advertise the restriction we already hold so converged servers
        // can answer with an O(1) summary (0 = empty cache, which every
        // journal can delta from).
        let known = self.cache.get(&target).map(ChangeSet::digest).unwrap_or(0);
        for i in 0..self.cfg.n {
            ctx.send(
                ActorId(self.actor_base + i),
                wrap(WrMsg::Rc { op, target, known }),
            );
        }
        Ok(())
    }

    /// Materializes the set a received [`CsRef`] describes, using the
    /// per-target cache as the delta/summary base. `None` means the
    /// reference cannot be resolved locally (stale or missing cache) and
    /// the replier must be re-asked with `known = 0`.
    fn resolve(&self, target: ServerId, r: &CsRef) -> Option<ChangeSet> {
        match r {
            CsRef::Full(set) => Some(set.clone()),
            CsRef::Summary { digest: 0, len: 0 } => Some(ChangeSet::new()),
            CsRef::Summary { digest, len } => {
                let c = self.cache.get(&target)?;
                (c.digest() == *digest && c.len() == *len).then(|| c.clone())
            }
            CsRef::Delta { base_digest, adds } => {
                let mut base = if *base_digest == 0 {
                    ChangeSet::new()
                } else {
                    let c = self.cache.get(&target)?;
                    if c.digest() != *base_digest {
                        return None;
                    }
                    c.clone()
                };
                base.extend(adds.iter().copied());
                Some(base)
            }
        }
    }

    /// Feeds a client-side message (`RC_Ack` / `WC_Ack`). Returns the result
    /// when the invocation completes.
    pub fn on_message<M: Message>(
        &mut self,
        from: ActorId,
        msg: &WrMsg,
        ctx: &mut Context<'_, M>,
        wrap: impl Fn(WrMsg) -> M + Copy,
    ) -> Option<ReadChangesResult> {
        let p = self.pending.as_ref()?;
        match msg {
            WrMsg::RcAck { op, changes } if *op == p.op && !p.wrote_back => {
                let resolved = self.resolve(p.target, changes);
                let p = self.pending.as_mut().expect("checked above");
                let Some(set) = resolved else {
                    // The replier referenced a base we don't hold (stale
                    // cache): re-ask once for unconditional content.
                    if p.forced_full.insert(from) {
                        ctx.send(
                            from,
                            wrap(WrMsg::Rc {
                                op: p.op,
                                target: p.target,
                                known: 0,
                            }),
                        );
                    }
                    return None;
                };
                p.peer_digests.insert(from, set.digest());
                p.acc.merge(&set);
                p.responders.insert(from);
                // Line 6: until more than f responses.
                if p.responders.len() > self.cfg.f {
                    p.wrote_back = true;
                    // Line 7: broadcast ⟨WC, ref⟩ — an O(1) summary toward
                    // servers whose restriction already equals the
                    // collected set, content toward the rest.
                    for i in 0..self.cfg.n {
                        let dest = ActorId(self.actor_base + i);
                        let payload = match p.peer_digests.get(&dest) {
                            Some(d) if *d == p.acc.digest() => CsRef::summary(&p.acc),
                            Some(d) => CsRef::for_peer(&p.acc, *d),
                            None => CsRef::Full(p.acc.clone()),
                        };
                        ctx.send(
                            dest,
                            wrap(WrMsg::Wc {
                                op: p.op,
                                target: p.target,
                                changes: payload,
                            }),
                        );
                    }
                }
                None
            }
            WrMsg::WcMiss { op, have } if *op == p.op && p.wrote_back => {
                let p = self.pending.as_mut().expect("checked above");
                // One negotiation retry per server: delta against the
                // digest it reported, then unconditional Full.
                let payload = if p.wc_retried.insert(from) {
                    CsRef::for_peer(&p.acc, *have)
                } else {
                    CsRef::Full(p.acc.clone())
                };
                ctx.send(
                    from,
                    wrap(WrMsg::Wc {
                        op: p.op,
                        target: p.target,
                        changes: payload,
                    }),
                );
                None
            }
            WrMsg::WcAck { op } if *op == p.op && p.wrote_back => {
                let p = self.pending.as_mut().expect("checked above");
                p.wc_acks.insert(from);
                // Line 8: wait for n − f acknowledgments.
                if p.wc_acks.len() >= self.cfg.n - self.cfg.f {
                    let p = self.pending.take().expect("pending checked");
                    let result = ReadChangesResult {
                        target: p.target,
                        changes: p.acc.restricted_to(p.target),
                        started: p.started,
                        finished: ctx.now(),
                    };
                    // Remember what we learned: the next invocation's RC
                    // opens with this digest.
                    self.cache.insert(p.target, result.changes.clone());
                    self.results.push(result.clone());
                    Some(result)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_mapping_roundtrip() {
        let s = ServerId(3);
        assert_eq!(server_actor(5, s), ActorId(8));
        assert_eq!(actor_server(5, ActorId(8)), s);
    }

    #[test]
    fn apply_request_affects() {
        let req = ApplyRequest {
            new_changes: vec![Change::new(ServerId(0), 2, ServerId(1), Ratio::dec("0.2"))],
            wc_ack: None,
        };
        assert!(req.affects(ServerId(1)));
        assert!(!req.affects(ServerId(0)));
        let null = ApplyRequest {
            new_changes: vec![Change::new(ServerId(0), 2, ServerId(1), Ratio::ZERO)],
            wc_ack: None,
        };
        assert!(!null.affects(ServerId(1)));
    }
}
