//! The restricted pairwise weight reassignment protocol (paper §VI,
//! Algorithms 3 and 4) — the variant that *is* implementable in
//! asynchronous failure-prone systems (Theorem 5).
//!
//! Structure:
//!
//! * [`messages`] — the wire protocol (`T`, `T_Ack`, `RC`, `RC_Ack`, `WC`,
//!   `WC_Ack`);
//! * [`TransferCore`] — the per-server engine: local C2 check, reliable
//!   broadcast of the change pair, `n − f − 1` ack collection, and the
//!   server side of `read_changes`. Embeddable (the dynamic-weighted
//!   storage hosts it behind a register refresh);
//! * [`ReadChangesClient`] — the requester side of Algorithm 3;
//! * [`RpServer`] / [`RpClient`] — ready-made actors;
//! * [`RpHarness`] — a wired world for tests and experiments.

pub mod core;
pub mod harness;
pub mod messages;
pub mod server;
#[cfg(test)]
mod threaded_tests;

pub use self::core::{
    actor_server, server_actor, ApplyRequest, CoreEvent, ReadChangesClient, ReadChangesResult,
    TransferCore, TransferStart,
};
pub use harness::RpHarness;
pub use messages::WrMsg;
pub use server::{RpClient, RpServer};
