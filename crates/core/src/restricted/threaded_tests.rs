//! The same protocol actors on real OS threads: the [`awr_sim::ThreadedSystem`]
//! runtime delivers messages over crossbeam channels with OS scheduling —
//! no virtual time, true parallelism. Transfers are driven through the
//! `Invoke` management RPC.

use awr_sim::{downcast_actor, ActorId, ThreadedSystem};
use awr_types::{Ratio, ServerId};

use crate::audit::audit_transfers;
use crate::problem::RpConfig;
use crate::restricted::messages::WrMsg;
use crate::restricted::server::RpServer;

#[test]
fn transfers_complete_on_real_threads() {
    let cfg = RpConfig::uniform(7, 2);
    let servers: Vec<RpServer> = cfg
        .servers()
        .map(|s| RpServer::new(cfg.clone(), s, 0))
        .collect();
    let sys = ThreadedSystem::spawn(servers, 0xBEEF);

    // Drive three concurrent transfers through the management RPC.
    for (from, to) in [(3usize, 0u32), (4, 1), (5, 2)] {
        sys.inject(
            ActorId(from),
            ActorId(from),
            WrMsg::Invoke {
                to: ServerId(to),
                delta: Ratio::dec("0.25"),
            },
        );
    }

    // Threads run asynchronously; messages settle in microseconds, but
    // give the OS scheduler ample slack before stopping and auditing.
    std::thread::sleep(std::time::Duration::from_millis(500));
    let actors = sys.shutdown();

    let mut all_completed = Vec::new();
    for a in &actors {
        let srv = downcast_actor::<RpServer, WrMsg>(a.as_ref()).expect("server");
        all_completed.extend(srv.completed().iter().cloned());
    }
    all_completed.sort_by_key(|(o, t)| (*t, o.from, o.counter));
    assert_eq!(all_completed.len(), 3, "all transfers must complete");
    assert!(all_completed.iter().all(|(o, _)| o.is_effective()));

    let report = audit_transfers(&cfg, &all_completed);
    assert!(report.is_clean(), "{:?}", report.violations);

    // Every server converged to the same weights.
    let w0 = downcast_actor::<RpServer, WrMsg>(actors[0].as_ref())
        .unwrap()
        .changes()
        .weights(7);
    assert_eq!(w0.weight(ServerId(0)), Ratio::dec("1.25"));
    assert_eq!(w0.total(), Ratio::integer(7));
    for a in &actors[1..] {
        let w = downcast_actor::<RpServer, WrMsg>(a.as_ref())
            .unwrap()
            .changes()
            .weights(7);
        assert_eq!(w, w0, "server views diverged");
    }
}

#[test]
fn floor_respected_on_real_threads() {
    // Hammer one donor with repeated Invokes; C2 must hold on every thread
    // interleaving: the donor can never fall to 0.7 or below.
    let cfg = RpConfig::uniform(7, 2);
    let servers: Vec<RpServer> = cfg
        .servers()
        .map(|s| RpServer::new(cfg.clone(), s, 0))
        .collect();
    let sys = ThreadedSystem::spawn(servers, 0xF00);
    for i in 0..20u32 {
        sys.inject(
            ActorId(3),
            ActorId(3),
            WrMsg::Invoke {
                to: ServerId(i % 3),
                delta: Ratio::dec("0.1"),
            },
        );
        // Brief pause so some transfers complete and free the donor
        // (busy invokes are dropped by design).
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    std::thread::sleep(std::time::Duration::from_millis(200));
    let actors = sys.shutdown();
    let donor = downcast_actor::<RpServer, WrMsg>(actors[3].as_ref()).unwrap();
    assert!(
        donor.weight() > Ratio::dec("0.7"),
        "floor breached: {}",
        donor.weight()
    );
    let report = audit_transfers(&cfg, &{
        let mut v: Vec<_> = actors
            .iter()
            .flat_map(|a| {
                downcast_actor::<RpServer, WrMsg>(a.as_ref())
                    .unwrap()
                    .completed()
                    .to_vec()
            })
            .collect();
        v.sort_by_key(|(o, t)| (*t, o.from, o.counter));
        v
    });
    assert!(report.is_clean(), "{:?}", report.violations);
}
