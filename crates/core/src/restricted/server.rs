//! The pure weight-reassignment server actor (Algorithm 4 host without a
//! register — change application is immediate).

use std::any::Any;

use awr_sim::{Actor, ActorId, Context};
use awr_types::{ChangeSet, Ratio, ServerId};

use crate::problem::{RpConfig, TransferError, TransferOutcome};
use crate::restricted::core::{CoreEvent, TransferCore, TransferStart};
use crate::restricted::messages::WrMsg;
use crate::Time;

/// A server running the restricted pairwise weight reassignment protocol.
///
/// Hosts a [`TransferCore`]; applies learned changes immediately (there is
/// no register to refresh). Use
/// [`RpHarness`](crate::restricted::RpHarness) to build a full system, or
/// drive servers directly through
/// [`World::with_actor_ctx`](awr_sim::World::with_actor_ctx).
#[derive(Debug)]
pub struct RpServer {
    core: TransferCore,
    /// Completion notifications (the `⟨Complete, c⟩` messages), oldest first.
    pub complete_log: Vec<TransferOutcome>,
}

impl RpServer {
    /// Creates the server for `me`. Servers must occupy world indices
    /// `actor_base .. actor_base + n`.
    pub fn new(cfg: RpConfig, me: ServerId, actor_base: usize) -> RpServer {
        RpServer {
            core: TransferCore::new(cfg, me, actor_base),
            complete_log: Vec::new(),
        }
    }

    /// This server's current weight (from its local change set).
    pub fn weight(&self) -> Ratio {
        self.core.weight()
    }

    /// The local change set `C`.
    pub fn changes(&self) -> &ChangeSet {
        self.core.changes()
    }

    /// Completed own transfers with completion times.
    pub fn completed(&self) -> &[(TransferOutcome, Time)] {
        self.core.completed()
    }

    /// Whether a transfer is in flight.
    pub fn is_busy(&self) -> bool {
        self.core.is_busy()
    }

    /// Invokes `transfer(me, to, Δ)`.
    ///
    /// # Errors
    ///
    /// See [`TransferCore::transfer`].
    pub fn transfer(
        &mut self,
        to: ServerId,
        delta: Ratio,
        ctx: &mut Context<'_, WrMsg>,
    ) -> Result<TransferStart, TransferError> {
        let r = self.core.transfer(to, delta, ctx, |m| m)?;
        if let TransferStart::Null(o) = &r {
            self.complete_log.push(o.clone());
        }
        Ok(r)
    }

    /// Like [`RpServer::transfer`], but queues behind an in-flight transfer
    /// instead of failing `Busy`; drained requests are announced batched in
    /// one `⟨T⟩` envelope (see [`TransferCore::transfer_queued`]).
    ///
    /// # Errors
    ///
    /// See [`TransferCore::transfer_queued`].
    pub fn transfer_queued(
        &mut self,
        to: ServerId,
        delta: Ratio,
        ctx: &mut Context<'_, WrMsg>,
    ) -> Result<TransferStart, TransferError> {
        let r = self.core.transfer_queued(to, delta, ctx, |m| m)?;
        if let TransferStart::Null(o) = &r {
            self.complete_log.push(o.clone());
        }
        Ok(r)
    }
}

impl Actor for RpServer {
    type Msg = WrMsg;

    fn on_message(&mut self, from: ActorId, msg: WrMsg, ctx: &mut Context<'_, WrMsg>) {
        if let WrMsg::Invoke { to, delta } = msg {
            // Management RPC (e.g. from a monitoring process): start the
            // transfer if idle; a busy or invalid request is dropped — the
            // monitor will simply re-plan from observed weights.
            let _ = self.transfer(to, delta, ctx);
            return;
        }
        for ev in self.core.handle(from, msg, ctx, |m| m) {
            match ev {
                CoreEvent::NeedApply(req) => {
                    // Pure mode: apply immediately (no register refresh).
                    self.core.apply(req, ctx, |m| m);
                }
                CoreEvent::Completed(outcome) => {
                    self.complete_log.push(outcome);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A client process (member of Π) that can invoke `read_changes`.
#[derive(Debug)]
pub struct RpClient {
    /// The embedded Algorithm 3 engine; results accumulate in
    /// [`ReadChangesClient::results`](crate::restricted::ReadChangesClient::results).
    pub reader: crate::restricted::core::ReadChangesClient,
}

impl RpClient {
    /// Creates a client for a system whose servers start at `actor_base`.
    pub fn new(cfg: RpConfig, actor_base: usize) -> RpClient {
        RpClient {
            reader: crate::restricted::core::ReadChangesClient::new(cfg, actor_base),
        }
    }

    /// Invokes `read_changes(target)`.
    ///
    /// # Errors
    ///
    /// [`TransferError::Busy`] if an invocation is already in flight.
    pub fn read_changes(
        &mut self,
        target: ServerId,
        ctx: &mut Context<'_, WrMsg>,
    ) -> Result<(), TransferError> {
        self.reader.start(target, ctx, |m| m)
    }
}

impl Actor for RpClient {
    type Msg = WrMsg;

    fn on_message(&mut self, from: ActorId, msg: WrMsg, ctx: &mut Context<'_, WrMsg>) {
        let _ = self.reader.on_message(from, &msg, ctx, |m| m);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
