//! A convenience harness wiring servers + clients into a simulated world.

use awr_sim::{ActorId, NetworkModel, World};
use awr_types::{ChangeSet, Ratio, ServerId, WeightMap};

use crate::problem::{RpConfig, TransferError, TransferOutcome};
use crate::restricted::core::{server_actor, ReadChangesResult};
use crate::restricted::messages::WrMsg;
use crate::restricted::server::{RpClient, RpServer};

/// A ready-to-run restricted pairwise weight reassignment system:
/// `n` servers at world indices `0..n`, `k` clients at `n..n+k`.
///
/// This harness is the *configuration layer* and is deliberately
/// object-agnostic: the weighted configuration it reassigns is shared
/// infrastructure beneath any number of keyed registers (see
/// `awr_storage`'s multi-object `StorageHarness`, where one transfer
/// issued through these same APIs re-weights the whole shard). Nothing
/// here needs an `ObjectId` — that is the point.
///
/// # Examples
///
/// ```
/// use awr_core::{RpConfig, RpHarness};
/// use awr_sim::UniformLatency;
/// use awr_types::{Ratio, ServerId};
///
/// let cfg = RpConfig::uniform(7, 2); // floor = 7/(2·5) = 0.7
/// let mut h = RpHarness::build(cfg, 1, 42, UniformLatency::new(1_000, 80_000));
///
/// // s4 moves 0.25 to s1: allowed, since 1 > 0.25 + 0.7.
/// let out = h.transfer_and_wait(ServerId(3), ServerId(0), Ratio::dec("0.25")).unwrap();
/// assert!(out.is_effective());
///
/// // s4 tries another 0.1: 0.75 > 0.1 + 0.7 fails → null outcome.
/// let out = h.transfer_and_wait(ServerId(3), ServerId(1), Ratio::dec("0.1")).unwrap();
/// assert!(!out.is_effective());
/// ```
pub struct RpHarness {
    /// The simulated world (exposed for metrics and custom driving).
    pub world: World<WrMsg>,
    cfg: RpConfig,
    n_clients: usize,
}

impl RpHarness {
    /// Builds a world with `n` servers and `n_clients` clients. `network`
    /// is any [`NetworkModel`] — a plain latency model or a bandwidth-aware
    /// topology.
    pub fn build(
        cfg: RpConfig,
        n_clients: usize,
        seed: u64,
        network: impl NetworkModel + 'static,
    ) -> RpHarness {
        let mut world = World::new(seed, network);
        for s in cfg.servers() {
            world.add_actor(RpServer::new(cfg.clone(), s, 0));
        }
        for _ in 0..n_clients {
            world.add_actor(RpClient::new(cfg.clone(), 0));
        }
        RpHarness {
            world,
            cfg,
            n_clients,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RpConfig {
        &self.cfg
    }

    /// Actor id of server `s`.
    pub fn server_actor(&self, s: ServerId) -> ActorId {
        server_actor(0, s)
    }

    /// Actor id of client `k` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ n_clients`.
    pub fn client_actor(&self, k: usize) -> ActorId {
        assert!(k < self.n_clients, "client {k} out of range");
        ActorId(self.cfg.n + k)
    }

    /// Crashes server `s` immediately.
    pub fn crash_server(&mut self, s: ServerId) {
        self.world.crash_now(self.server_actor(s));
    }

    /// Starts `transfer(from, to, Δ)` on server `from` and runs the world
    /// until the invocation completes. Returns the outcome.
    ///
    /// # Errors
    ///
    /// Propagates [`TransferError`] from the invocation; errors if the
    /// world quiesces without completing (e.g. too many crashes).
    pub fn transfer_and_wait(
        &mut self,
        from: ServerId,
        to: ServerId,
        delta: Ratio,
    ) -> Result<TransferOutcome, TransferError> {
        let actor = self.server_actor(from);
        let before = self
            .world
            .actor::<RpServer>(actor)
            .expect("server")
            .completed()
            .len();
        self.world
            .with_actor_ctx::<RpServer, Result<_, TransferError>>(actor, |srv, ctx| {
                srv.transfer(to, delta, ctx).map(|_| ())
            })?;
        let done = self.world.run_until(|w| {
            w.actor::<RpServer>(actor)
                .map(|s| s.completed().len() > before)
                .unwrap_or(false)
        });
        if !done {
            return Err(TransferError::InvalidArguments {
                reason: "world quiesced before transfer completed (too many crashes?)".into(),
            });
        }
        Ok(self
            .world
            .actor::<RpServer>(actor)
            .expect("server")
            .completed()[before]
            .0
            .clone())
    }

    /// Starts `transfer` without waiting (for concurrency experiments).
    ///
    /// # Errors
    ///
    /// Propagates invocation errors.
    pub fn transfer_async(
        &mut self,
        from: ServerId,
        to: ServerId,
        delta: Ratio,
    ) -> Result<(), TransferError> {
        let actor = self.server_actor(from);
        self.world
            .with_actor_ctx::<RpServer, Result<_, TransferError>>(actor, |srv, ctx| {
                srv.transfer(to, delta, ctx).map(|_| ())
            })
    }

    /// Starts a transfer in queued mode without waiting: a request issued
    /// while `from` is busy queues and is announced — batched with every
    /// other queued request — in a single `⟨T⟩` envelope when the in-flight
    /// transfer completes.
    ///
    /// # Errors
    ///
    /// Propagates invocation errors (never [`TransferError::Busy`]).
    pub fn transfer_queued(
        &mut self,
        from: ServerId,
        to: ServerId,
        delta: Ratio,
    ) -> Result<(), TransferError> {
        let actor = self.server_actor(from);
        self.world
            .with_actor_ctx::<RpServer, Result<_, TransferError>>(actor, |srv, ctx| {
                srv.transfer_queued(to, delta, ctx).map(|_| ())
            })
    }

    /// Invokes `read_changes(target)` from client `k` and runs until it
    /// completes.
    ///
    /// # Errors
    ///
    /// Propagates [`TransferError::Busy`]; errors if the world quiesces
    /// without completion.
    pub fn read_changes(
        &mut self,
        k: usize,
        target: ServerId,
    ) -> Result<ReadChangesResult, TransferError> {
        let actor = self.client_actor(k);
        let before = self
            .world
            .actor::<RpClient>(actor)
            .expect("client")
            .reader
            .results
            .len();
        self.world
            .with_actor_ctx::<RpClient, Result<_, TransferError>>(actor, |cl, ctx| {
                cl.read_changes(target, ctx)
            })?;
        let done = self.world.run_until(|w| {
            w.actor::<RpClient>(actor)
                .map(|c| c.reader.results.len() > before)
                .unwrap_or(false)
        });
        if !done {
            return Err(TransferError::InvalidArguments {
                reason: "world quiesced before read_changes completed".into(),
            });
        }
        Ok(self
            .world
            .actor::<RpClient>(actor)
            .expect("client")
            .reader
            .results[before]
            .clone())
    }

    /// Drives the deployment toward `target`: plans the current→target
    /// move as pairwise transfers (from server 0's view of the weights)
    /// and issues each one on its donor in queued mode — the reassignment
    /// half of the observe→decide→reassign loop for the bare restricted
    /// protocol (the storage-level driver lives in
    /// `awr_storage::PlacementDriver`). Returns the number of transfers
    /// issued; call [`RpHarness::settle`] to let them complete.
    ///
    /// # Errors
    ///
    /// Propagates the first invocation error.
    ///
    /// # Panics
    ///
    /// Panics if `target` has a different length or total than the current
    /// weights (see `awr_quorum::plan_transfers`).
    pub fn reassign_toward(&mut self, target: &WeightMap) -> Result<usize, TransferError> {
        let current = self.weights_seen_by(ServerId(0));
        let plan = awr_quorum::plan_transfers(&current, target);
        for t in &plan {
            self.transfer_queued(t.from, t.to, t.delta)?;
        }
        Ok(plan.len())
    }

    /// Runs until every server is idle (no pending transfer) and the event
    /// queue drains.
    pub fn settle(&mut self) {
        self.world.run_to_quiescence();
    }

    /// The change set of server `s` (its local `C`).
    pub fn server_changes(&self, s: ServerId) -> &ChangeSet {
        self.world
            .actor::<RpServer>(self.server_actor(s))
            .expect("server")
            .changes()
    }

    /// The weight vector as seen by server `s`.
    pub fn weights_seen_by(&self, s: ServerId) -> WeightMap {
        self.server_changes(s).weights(self.cfg.n)
    }

    /// All completed transfer outcomes across servers, with completion
    /// times, sorted by completion time (the auditor's input).
    pub fn all_completed(&self) -> Vec<(TransferOutcome, awr_sim::Time)> {
        let mut all = Vec::new();
        for s in self.cfg.servers() {
            if let Some(srv) = self.world.actor::<RpServer>(self.server_actor(s)) {
                all.extend(srv.completed().iter().cloned());
            }
        }
        all.sort_by_key(|(o, t)| (*t, o.from, o.counter));
        all
    }
}
