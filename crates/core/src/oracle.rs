//! Linearizable oracles for the two *unsolvable* problems.
//!
//! Theorems 1 and 2 are reductions: *given* a solution to (pairwise) weight
//! reassignment, consensus is solvable. These oracles are that hypothetical
//! solution — shared objects whose operations linearize under a lock and
//! enforce exactly the Validity-I semantics of Definitions 3 and 4 (create
//! the requested change iff Integrity survives, else a zero change).
//!
//! In a real asynchronous failure-prone system such an object cannot be
//! implemented (that is the paper's point); in-process it trivially can,
//! which is what lets us *run* Algorithms 1 and 2 and watch consensus fall
//! out. See [`crate::reduction`].

use parking_lot::Mutex;

use awr_types::{Change, ChangeSet, ProcessId, Ratio, ServerId, TransferChanges, WeightMap};

/// State shared by both oracles.
#[derive(Debug)]
struct OracleState {
    f: usize,
    changes: ChangeSet,
    /// Current weights (kept in sync with `changes` for O(1) checks).
    weights: WeightMap,
}

impl OracleState {
    fn new(initial: WeightMap, f: usize) -> OracleState {
        OracleState {
            f,
            changes: ChangeSet::from_initial_weights(&initial),
            weights: initial,
        }
    }
}

/// A linearizable oracle for the **weight reassignment problem**
/// (Definition 3).
///
/// # Examples
///
/// ```
/// use awr_core::WrOracle;
/// use awr_types::{ProcessId, Ratio, ServerId, WeightMap};
///
/// // Example 1 of the paper: n = 4, f = 1, uniform weight 1.
/// let oracle = WrOracle::new(WeightMap::uniform(4, Ratio::ONE), 1);
///
/// // s1 reassigns itself +1.5 → allowed (weights 2.5,1,1,1: top-1 = 2.5 < 2.75).
/// let c = oracle.reassign(ServerId(0).into(), 2, ServerId(0), Ratio::dec("1.5"));
/// assert_eq!(c.delta, Ratio::dec("1.5"));
///
/// // s3 reassigns s2 by −0.5 → would leave top-1 = 2.5 ≥ 2.5 → aborted.
/// let c = oracle.reassign(ServerId(2).into(), 2, ServerId(1), Ratio::dec("-0.5"));
/// assert!(c.is_null());
/// ```
#[derive(Debug)]
pub struct WrOracle {
    state: Mutex<OracleState>,
}

impl WrOracle {
    /// Creates the oracle with initial weights and fault threshold `f`.
    pub fn new(initial: WeightMap, f: usize) -> WrOracle {
        WrOracle {
            state: Mutex::new(OracleState::new(initial, f)),
        }
    }

    /// `reassign(s, Δ)` invoked by `issuer` with local counter `counter`.
    ///
    /// Linearizes atomically: the change `⟨issuer, counter, s, Δ⟩` is created
    /// if applying it keeps Integrity (`top-f < W_S/2` with the *new* total);
    /// otherwise the null change `⟨issuer, counter, s, 0⟩` is created
    /// (Validity-I).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is zero (the problem forbids `reassign(∗, 0)`).
    pub fn reassign(
        &self,
        issuer: ProcessId,
        counter: u64,
        target: ServerId,
        delta: Ratio,
    ) -> Change {
        assert!(!delta.is_zero(), "reassign requires a non-zero delta");
        let mut st = self.state.lock();
        let mut hypothetical = st.weights.clone();
        hypothetical.add(target, delta);
        let ok = awr_quorum::integrity_holds(&hypothetical, st.f);
        let change = if ok {
            st.weights = hypothetical;
            Change::new(issuer, counter, target, delta)
        } else {
            Change::new(issuer, counter, target, Ratio::ZERO)
        };
        st.changes.insert(change);
        change
    }

    /// `read_changes(s)`: the set of changes created for `s` so far.
    pub fn read_changes(&self, s: ServerId) -> ChangeSet {
        self.state.lock().changes.restricted_to(s)
    }

    /// Current weights (for auditing; not part of the problem interface).
    pub fn weights(&self) -> WeightMap {
        self.state.lock().weights.clone()
    }
}

/// A linearizable oracle for the **pairwise weight reassignment problem**
/// (Definition 4): `transfer(s_i, s_j, Δ)` may be invoked by *any* server
/// `s_k` and keeps the total weight constant.
#[derive(Debug)]
pub struct PwOracle {
    state: Mutex<OracleState>,
}

impl PwOracle {
    /// Creates the oracle with initial weights and fault threshold `f`.
    pub fn new(initial: WeightMap, f: usize) -> PwOracle {
        PwOracle {
            state: Mutex::new(OracleState::new(initial, f)),
        }
    }

    /// `transfer(from, to, Δ)` invoked by `issuer` with counter `counter`.
    ///
    /// Creates the effective pair `⟨issuer, counter, from, −Δ⟩`,
    /// `⟨issuer, counter, to, Δ⟩` iff P-Integrity survives; otherwise the
    /// null pair (P-Validity-I).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is zero or `from == to`.
    pub fn transfer(
        &self,
        issuer: ServerId,
        counter: u64,
        from: ServerId,
        to: ServerId,
        delta: Ratio,
    ) -> TransferChanges {
        assert!(!delta.is_zero(), "transfer requires a non-zero delta");
        assert_ne!(from, to, "transfer requires distinct endpoints");
        let mut st = self.state.lock();
        let mut hypothetical = st.weights.clone();
        hypothetical.add(from, -delta);
        hypothetical.add(to, delta);
        // Total is unchanged by construction; P-Integrity is the same
        // top-f check.
        let ok = awr_quorum::integrity_holds(&hypothetical, st.f);
        let pair = if ok {
            st.weights = hypothetical;
            TransferChanges {
                debit: Change::new(issuer, counter, from, -delta),
                credit: Change::new(issuer, counter, to, delta),
            }
        } else {
            TransferChanges {
                debit: Change::new(issuer, counter, from, Ratio::ZERO),
                credit: Change::new(issuer, counter, to, Ratio::ZERO),
            }
        };
        st.changes.insert(pair.debit);
        st.changes.insert(pair.credit);
        pair
    }

    /// `read_changes(s)`: the set of changes created for `s` so far.
    pub fn read_changes(&self, s: ServerId) -> ChangeSet {
        self.state.lock().changes.restricted_to(s)
    }

    /// Current weights (for auditing).
    pub fn weights(&self) -> WeightMap {
        self.state.lock().weights.clone()
    }

    /// Current total weight — constant forever for a pairwise oracle.
    pub fn total(&self) -> Ratio {
        self.state.lock().weights.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    #[test]
    fn example1_full_replay() {
        // Paper Example 1: S = {s1..s4}, f = 1, all weights 1.
        let oracle = WrOracle::new(WeightMap::uniform(4, Ratio::ONE), 1);

        // s1 invokes reassign(s1, 1.5) with lc = 2 → completed effective.
        let c1 = oracle.reassign(s(0).into(), 2, s(0), Ratio::dec("1.5"));
        assert_eq!(c1, Change::new(s(0), 2, s(0), Ratio::dec("1.5")));

        // c1 reads s1's changes: initial + the new one; weight 2.5.
        let rc = oracle.read_changes(s(0));
        assert_eq!(rc.len(), 2);
        assert_eq!(rc.server_weight(s(0)), Ratio::dec("2.5"));

        // s3 invokes reassign(s2, −0.5): top-1 would be 2.5 of total 4.5−0.5=4.0
        // → 2.5 ≥ 2.0 → Integrity violated → null change.
        let c2 = oracle.reassign(s(2).into(), 2, s(1), Ratio::dec("-0.5"));
        assert!(c2.is_null());

        // c2 reads s2's changes: initial + null change; weight still 1.
        let rc2 = oracle.read_changes(s(1));
        assert_eq!(rc2.len(), 2);
        assert_eq!(rc2.server_weight(s(1)), Ratio::ONE);
    }

    #[test]
    #[should_panic(expected = "non-zero delta")]
    fn reassign_zero_forbidden() {
        let oracle = WrOracle::new(WeightMap::uniform(4, Ratio::ONE), 1);
        let _ = oracle.reassign(s(0).into(), 2, s(0), Ratio::ZERO);
    }

    #[test]
    fn integrity_never_violated_by_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let oracle = WrOracle::new(WeightMap::uniform(7, Ratio::ONE), 3);
        for i in 0..200u64 {
            let target = s(rng.random_range(0..7));
            let delta = Ratio::new(rng.random_range(-10..=10i128), 10);
            if delta.is_zero() {
                continue;
            }
            let issuer = s(rng.random_range(0..7));
            let _ = oracle.reassign(issuer.into(), i + 2, target, delta);
            assert!(
                awr_quorum::integrity_holds(&oracle.weights(), 3),
                "violated after op {i}"
            );
        }
    }

    #[test]
    fn pairwise_total_constant() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let oracle = PwOracle::new(WeightMap::uniform(7, Ratio::ONE), 2);
        for i in 0..200u64 {
            let from = s(rng.random_range(0..7));
            let to = s(rng.random_range(0..7));
            if from == to {
                continue;
            }
            let delta = Ratio::new(rng.random_range(1..=5i128), 10);
            let _ = oracle.transfer(from, i + 2, from, to, delta);
            assert_eq!(oracle.total(), Ratio::integer(7));
            assert!(awr_quorum::integrity_holds(&oracle.weights(), 2));
        }
    }

    #[test]
    fn pairwise_null_when_p_integrity_would_break() {
        // n = 4, f = 1: move 0.9 from s2 to s1 → s1 = 1.9 < 2.0 ok.
        let oracle = PwOracle::new(WeightMap::uniform(4, Ratio::ONE), 1);
        let t1 = oracle.transfer(s(1), 2, s(1), s(0), Ratio::dec("0.9"));
        assert!(t1.is_effective());
        // Another 0.2 to s1 → s1 = 2.1 > 2.0 → violated → null.
        let t2 = oracle.transfer(s(2), 2, s(2), s(0), Ratio::dec("0.2"));
        assert!(!t2.is_effective());
        assert_eq!(oracle.weights().weight(s(0)), Ratio::dec("1.9"));
    }

    #[test]
    fn read_changes_contains_null_outcomes() {
        let oracle = PwOracle::new(WeightMap::uniform(4, Ratio::ONE), 1);
        let _ = oracle.transfer(s(1), 2, s(1), s(0), Ratio::dec("0.9"));
        let t = oracle.transfer(s(2), 2, s(2), s(0), Ratio::dec("0.2"));
        assert!(!t.is_effective());
        // Validity-II: the null credit for s1 must be readable.
        let c = oracle.read_changes(s(0));
        assert!(c.contains(&t.credit));
    }

    #[test]
    fn oracle_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<WrOracle>();
        assert_sync::<PwOracle>();
    }
}
