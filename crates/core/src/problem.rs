//! Problem definitions (paper §III and §V).
//!
//! Three problems, strictest last:
//!
//! 1. **Weight reassignment** (Definition 3): any process may `reassign(s, Δ)`
//!    any server's weight. Properties: Integrity, Validity-I, Validity-II,
//!    Liveness. *Not implementable* in asynchronous failure-prone systems
//!    (Theorem 1 / Corollary 1) — see [`crate::reduction`].
//! 2. **Pairwise weight reassignment** (Definition 4): reassignment happens
//!    only through `transfer(s_i, s_j, Δ)`, keeping the total constant.
//!    *Still not implementable* (Theorem 2).
//! 3. **Restricted pairwise weight reassignment** (Definition 5): adds
//!    condition **C1** (only `s_i` may transfer `s_i`'s weight) and **C2**
//!    (weights stay strictly above `W_{S,0}/(2(n−f))`). Implementable —
//!    [`crate::restricted`] is Algorithms 3–4.

use awr_types::{Change, Ratio, ServerId, TransferChanges, WeightMap};

/// Static parameters of a restricted-pairwise deployment: the server count,
/// the fault threshold, and the initial weights (which fix `W_{S,0}` and the
/// RP-Integrity floor forever).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpConfig {
    /// Number of servers `n`.
    pub n: usize,
    /// Fault threshold `f` (at most `f` servers may crash).
    pub f: usize,
    /// Initial weights `W_{s,0}`.
    pub initial_weights: WeightMap,
}

impl RpConfig {
    /// Creates a configuration, validating it against Property 1 and the
    /// RP-Integrity floor.
    ///
    /// # Errors
    ///
    /// Returns the list of violations if the configuration is unusable (see
    /// [`awr_quorum::validate_initial_config`]).
    pub fn new(
        f: usize,
        initial_weights: WeightMap,
    ) -> Result<RpConfig, Vec<awr_quorum::ConfigViolation>> {
        let v = awr_quorum::validate_initial_config(&initial_weights, f);
        if !v.is_empty() {
            return Err(v);
        }
        Ok(RpConfig {
            n: initial_weights.len(),
            f,
            initial_weights,
        })
    }

    /// The canonical `n`-server, uniform-weight-1 configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n ≤ 2f` (no valid uniform configuration exists).
    pub fn uniform(n: usize, f: usize) -> RpConfig {
        RpConfig::new(f, WeightMap::uniform(n, Ratio::ONE))
            .unwrap_or_else(|v| panic!("invalid uniform config n={n} f={f}: {v:?}"))
    }

    /// The initial total weight `W_{S,0}`.
    pub fn initial_total(&self) -> Ratio {
        self.initial_weights.total()
    }

    /// The RP-Integrity floor `W_{S,0} / (2(n − f))`.
    pub fn floor(&self) -> Ratio {
        awr_quorum::rp_floor(self.initial_total(), self.n, self.f)
    }

    /// The weighted-quorum threshold `W_{S,0} / 2` used by `is_quorum`.
    pub fn quorum_threshold(&self) -> Ratio {
        self.initial_total().half()
    }

    /// All server ids.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> {
        ServerId::all(self.n)
    }
}

/// The outcome of a completed `transfer` invocation, i.e. the
/// `⟨Complete, c⟩` message of §V plus bookkeeping for the auditor.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TransferOutcome {
    /// The source server (and, under C1, the issuer).
    pub from: ServerId,
    /// The destination server.
    pub to: ServerId,
    /// The requested amount.
    pub requested: Ratio,
    /// The change pair actually created (null pair if aborted).
    pub changes: TransferChanges,
    /// The issuer's local counter used for the invocation.
    pub counter: u64,
}

impl TransferOutcome {
    /// Whether weight actually moved.
    pub fn is_effective(&self) -> bool {
        self.changes.is_effective()
    }

    /// The `c` of the paper's `⟨Complete, c⟩` (the debit change).
    pub fn complete_change(&self) -> Change {
        self.changes.debit
    }
}

/// Why a `transfer` invocation could not even start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransferError {
    /// The previous transfer by this server has not completed yet
    /// (processes are sequential, §II).
    Busy,
    /// `Δ ≤ 0`, or `from == to`, or an unknown server id.
    InvalidArguments {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::Busy => write!(f, "previous transfer still in progress"),
            TransferError::InvalidArguments { reason } => {
                write!(f, "invalid transfer arguments: {reason}")
            }
        }
    }
}

impl std::error::Error for TransferError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_config() {
        let cfg = RpConfig::uniform(7, 2);
        assert_eq!(cfg.n, 7);
        assert_eq!(cfg.initial_total(), Ratio::integer(7));
        assert_eq!(cfg.floor(), Ratio::dec("0.7"));
        assert_eq!(cfg.quorum_threshold(), Ratio::dec("3.5"));
        assert_eq!(cfg.servers().count(), 7);
    }

    #[test]
    #[should_panic(expected = "invalid uniform config")]
    fn uniform_config_rejects_f_too_large() {
        // n = 4, f = 2: uniform weight 1 vs floor 4/4 = 1 → not strictly above.
        let _ = RpConfig::uniform(4, 2);
    }

    #[test]
    fn custom_weights_validated() {
        // §V.C weights are a valid f=2 configuration (floor 0.7, min 0.8).
        let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
        let cfg = RpConfig::new(2, w).unwrap();
        assert_eq!(cfg.floor(), Ratio::dec("0.7"));
        // But with f = 3 the floor is 7/8 and the 0.8s violate it.
        let w2 = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
        assert!(RpConfig::new(3, w2).is_err());
    }

    #[test]
    fn outcome_accessors() {
        let tc = TransferChanges::new(ServerId(0), ServerId(1), 2, Ratio::dec("0.2"), true);
        let o = TransferOutcome {
            from: ServerId(0),
            to: ServerId(1),
            requested: Ratio::dec("0.2"),
            changes: tc,
            counter: 2,
        };
        assert!(o.is_effective());
        assert_eq!(o.complete_change().delta, Ratio::dec("-0.2"));
    }

    #[test]
    fn error_display() {
        assert!(TransferError::Busy.to_string().contains("in progress"));
        let e = TransferError::InvalidArguments {
            reason: "zero delta".into(),
        };
        assert!(e.to_string().contains("zero delta"));
    }
}
