//! Execution auditing: executable versions of the paper's safety properties.
//!
//! The auditor replays a completion-ordered log of transfer outcomes from
//! the initial weights and checks, after every completion:
//!
//! * **RP-Integrity** (Definition 5): every weight strictly above
//!   `W_{S,0}/(2(n−f))`;
//! * **P-Integrity / Property 1**: the `f` heaviest servers stay strictly
//!   below half the total (implied by RP-Integrity via Lemma 1 — checked
//!   independently as a cross-validation);
//! * **conservation**: pairwise transfers never change the total;
//! * **C1**: the issuer of every transfer is its source server;
//! * **RP-Validity-I**: effective outcomes carry exact `±Δ` pairs, null
//!   outcomes carry zero pairs.
//!
//! Harnesses feed it [`RpHarness::all_completed`](crate::RpHarness::all_completed);
//! tests assert [`AuditReport::is_clean`].

use awr_sim::Time;
use awr_types::{ProcessId, Ratio, WeightMap};

use crate::problem::{RpConfig, TransferOutcome};

/// One detected property violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Completion time of the offending transfer.
    pub at: Time,
    /// Which property broke.
    pub property: &'static str,
    /// Human-readable details.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} — {}", self.at, self.property, self.detail)
    }
}

/// The result of auditing an execution.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// All violations found (empty = clean).
    pub violations: Vec<Violation>,
    /// Weight trajectory: the vector after each effective completion.
    pub trajectory: Vec<(Time, WeightMap)>,
    /// Count of effective transfers.
    pub effective: usize,
    /// Count of null (aborted) transfers.
    pub null: usize,
}

impl AuditReport {
    /// `true` iff no property was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits a completion-ordered transfer log against `cfg`.
///
/// # Examples
///
/// ```
/// use awr_core::{audit_transfers, RpConfig};
///
/// let cfg = RpConfig::uniform(7, 2);
/// let report = audit_transfers(&cfg, &[]);
/// assert!(report.is_clean());
/// ```
pub fn audit_transfers(cfg: &RpConfig, completed: &[(TransferOutcome, Time)]) -> AuditReport {
    let mut report = AuditReport::default();
    let mut weights = cfg.initial_weights.clone();
    let floor = cfg.floor();
    let initial_total = cfg.initial_total();

    for (outcome, at) in completed {
        let at = *at;
        // C1: only the source server may move its own weight.
        if outcome.changes.debit.issuer != ProcessId::Server(outcome.from) {
            report.violations.push(Violation {
                at,
                property: "C1",
                detail: format!(
                    "transfer of {}'s weight issued by {:?}",
                    outcome.from, outcome.changes.debit.issuer
                ),
            });
        }
        // RP-Validity-I: the pair is ±Δ or ±0, consistently.
        let d = outcome.changes.debit.delta;
        let c = outcome.changes.credit.delta;
        if d + c != Ratio::ZERO {
            report.violations.push(Violation {
                at,
                property: "RP-Validity-I",
                detail: format!("debit {d} and credit {c} do not cancel"),
            });
        }
        if outcome.is_effective() && c != outcome.requested {
            report.violations.push(Violation {
                at,
                property: "RP-Validity-I",
                detail: format!(
                    "effective transfer moved {c}, requested {}",
                    outcome.requested
                ),
            });
        }
        if outcome.is_effective() {
            report.effective += 1;
            weights.add(outcome.from, d);
            weights.add(outcome.to, c);
            report.trajectory.push((at, weights.clone()));

            // RP-Integrity after this completion.
            if !awr_quorum::rp_integrity_holds(&weights, floor) {
                report.violations.push(Violation {
                    at,
                    property: "RP-Integrity",
                    detail: format!("weights {weights} have a server at/below floor {floor}"),
                });
            }
            // P-Integrity (Property 1) cross-check.
            if !awr_quorum::integrity_holds(&weights, cfg.f) {
                report.violations.push(Violation {
                    at,
                    property: "P-Integrity",
                    detail: format!(
                        "top-{} = {} not < half total {}",
                        cfg.f,
                        weights.top_f_sum(cfg.f),
                        weights.total().half()
                    ),
                });
            }
            // Conservation.
            if weights.total() != initial_total {
                report.violations.push(Violation {
                    at,
                    property: "Conservation",
                    detail: format!("total {} != initial {initial_total}", weights.total()),
                });
            }
        } else {
            report.null += 1;
        }
    }
    report
}

/// Checks Validity-II across a pair of `read_changes` results: a later read
/// of the same server must contain every change an earlier *completed* read
/// returned. Returns a violation description on failure.
pub fn check_validity_ii(
    earlier: &crate::restricted::ReadChangesResult,
    later: &crate::restricted::ReadChangesResult,
) -> Option<String> {
    if earlier.target != later.target {
        return Some("results target different servers".into());
    }
    if earlier.finished > later.started {
        return Some("reads are concurrent; Validity-II does not order them".into());
    }
    if !later.changes.contains_all(&earlier.changes) {
        let missing: Vec<_> = earlier.changes.difference(&later.changes);
        return Some(format!(
            "later read is missing {} change(s): {missing:?}",
            missing.len()
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use awr_types::{Change, ServerId, TransferChanges};

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    fn outcome(from: u32, to: u32, delta: &str, effective: bool, counter: u64) -> TransferOutcome {
        let d = Ratio::dec(delta);
        TransferOutcome {
            from: s(from),
            to: s(to),
            requested: d,
            changes: TransferChanges::new(s(from), s(to), counter, d, effective),
            counter,
        }
    }

    #[test]
    fn clean_sequence() {
        let cfg = RpConfig::uniform(7, 2);
        let log = vec![
            (outcome(3, 0, "0.25", true, 2), Time(10)),
            (outcome(4, 1, "0.25", true, 2), Time(20)),
            (outcome(5, 2, "0.25", true, 2), Time(30)),
            (outcome(5, 2, "0.1", false, 3), Time(40)), // aborted
        ];
        let r = audit_transfers(&cfg, &log);
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.effective, 3);
        assert_eq!(r.null, 1);
        assert_eq!(r.trajectory.len(), 3);
        let last = &r.trajectory.last().unwrap().1;
        assert_eq!(last.weight(s(0)), Ratio::dec("1.25"));
        assert_eq!(last.weight(s(5)), Ratio::dec("0.75"));
    }

    #[test]
    fn detects_floor_violation() {
        let cfg = RpConfig::uniform(7, 2);
        // 0.3 would leave s4 at exactly 0.7 — a violation the protocol
        // must never produce, but the auditor must catch.
        let log = vec![(outcome(3, 0, "0.3", true, 2), Time(5))];
        let r = audit_transfers(&cfg, &log);
        assert!(!r.is_clean());
        assert!(r.violations.iter().any(|v| v.property == "RP-Integrity"));
    }

    #[test]
    fn detects_c1_violation() {
        let cfg = RpConfig::uniform(7, 2);
        let mut o = outcome(3, 0, "0.1", true, 2);
        // Forge an issuer that is not the source.
        o.changes.debit = Change::new(s(6), 2, s(3), Ratio::dec("-0.1"));
        let r = audit_transfers(&cfg, &[(o, Time(1))]);
        assert!(r.violations.iter().any(|v| v.property == "C1"));
    }

    #[test]
    fn detects_non_cancelling_pair() {
        let cfg = RpConfig::uniform(7, 2);
        let mut o = outcome(3, 0, "0.1", true, 2);
        o.changes.credit = Change::new(s(3), 2, s(0), Ratio::dec("0.2"));
        let r = audit_transfers(&cfg, &[(o, Time(1))]);
        assert!(r
            .violations
            .iter()
            .any(|v| v.property == "RP-Validity-I" && v.detail.contains("cancel")));
    }

    #[test]
    fn violation_display() {
        let v = Violation {
            at: Time(3),
            property: "RP-Integrity",
            detail: "boom".into(),
        };
        assert!(v.to_string().contains("RP-Integrity"));
    }
}
