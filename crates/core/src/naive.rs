//! A deliberately *naive* asynchronous implementation of the unrestricted
//! weight reassignment problem — the operational face of Theorem 1.
//!
//! Each server validates a `reassign` against its **local** view only, then
//! reliable-broadcasts the change. Sequentially this looks correct; under
//! concurrency two invocations that are each locally safe can jointly
//! violate Integrity. The paper proves no asynchronous implementation can
//! avoid this without consensus; this module exhibits the violation on a
//! real schedule (experiment E4's second half, and the
//! `naive_violates_integrity` tests).

use std::any::Any;

use awr_rb::{RbEngine, RbEnvelope};
use awr_sim::{Actor, ActorId, Context, Message};
use awr_types::{Change, ChangeSet, Ratio, ServerId, WeightMap};

/// Wire message: just the reliable broadcast of a change.
#[derive(Clone, Debug)]
pub struct NaiveMsg(pub RbEnvelope<Change>);

impl Message for NaiveMsg {
    fn kind(&self) -> &'static str {
        "naive"
    }
}

/// A server of the naive protocol.
#[derive(Debug)]
pub struct NaiveWrServer {
    me: ServerId,
    f: usize,
    n: usize,
    lc: u64,
    changes: ChangeSet,
    rb: RbEngine<Change>,
    /// Changes this server has applied, in application order (for audits).
    pub applied: Vec<Change>,
    /// Reassignments that the local check rejected.
    pub rejected: u64,
}

impl NaiveWrServer {
    /// Creates a server. Servers occupy world indices `0..n`.
    pub fn new(me: ServerId, initial: &WeightMap, f: usize) -> NaiveWrServer {
        let n = initial.len();
        NaiveWrServer {
            me,
            f,
            n,
            lc: 2,
            changes: ChangeSet::from_initial_weights(initial),
            rb: RbEngine::new(ActorId(me.index()), (0..n).map(ActorId).collect()),
            applied: Vec::new(),
            rejected: 0,
        }
    }

    /// Local weights as this server currently sees them.
    pub fn local_weights(&self) -> WeightMap {
        self.changes.weights(self.n)
    }

    /// Invokes `reassign(target, Δ)` with *local-only* validation: the fatal
    /// flaw. Returns `true` if the local check passed and the change was
    /// broadcast.
    pub fn reassign(
        &mut self,
        target: ServerId,
        delta: Ratio,
        ctx: &mut Context<'_, NaiveMsg>,
    ) -> bool {
        let counter = self.lc;
        self.lc += 1;
        let mut hypothetical = self.local_weights();
        hypothetical.add(target, delta);
        if awr_quorum::integrity_holds(&hypothetical, self.f) {
            let change = Change::new(self.me, counter, target, delta);
            let delivered = self.rb.broadcast(change, ctx, NaiveMsg);
            self.apply(delivered);
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    fn apply(&mut self, c: Change) {
        if self.changes.insert(c) {
            self.applied.push(c);
        }
    }
}

impl Actor for NaiveWrServer {
    type Msg = NaiveMsg;

    fn on_message(&mut self, _from: ActorId, msg: NaiveMsg, ctx: &mut Context<'_, NaiveMsg>) {
        if let Some(change) = self.rb.on_envelope(msg.0, ctx, NaiveMsg) {
            self.apply(change);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Runs the canonical two-server race from the Theorem 1 construction and
/// reports whether global Integrity survived. Returns
/// `(final_weights, integrity_held)`.
///
/// With the Algorithm 1 initial weights, concurrent `reassign(s_1, +0.5)`
/// and `reassign(s_{f+1}, −0.5)` both pass their local checks, both apply
/// everywhere, and Integrity breaks — for every seed.
pub fn run_theorem1_race(n: usize, f: usize, seed: u64) -> (WeightMap, bool) {
    use crate::reduction::reduction_initial_weights;
    let initial = reduction_initial_weights(n, f);
    let mut world: awr_sim::World<NaiveMsg> =
        awr_sim::World::new(seed, awr_sim::UniformLatency::new(1_000, 50_000));
    for i in 0..n {
        world.add_actor(NaiveWrServer::new(ServerId(i as u32), &initial, f));
    }
    // Concurrent invocations before any broadcast is delivered.
    world.with_actor_ctx::<NaiveWrServer, _>(ActorId(0), |srv, ctx| {
        srv.reassign(ServerId(0), Ratio::dec("0.5"), ctx)
    });
    world.with_actor_ctx::<NaiveWrServer, _>(ActorId(f), |srv, ctx| {
        srv.reassign(ServerId(f as u32), Ratio::dec("-0.5"), ctx)
    });
    world.run_to_quiescence();
    // All correct servers converge to the same set; read server 0's view.
    let weights = world
        .actor::<NaiveWrServer>(ActorId(0))
        .expect("server 0")
        .local_weights();
    let ok = awr_quorum::integrity_holds(&weights, f);
    (weights, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_use_is_safe() {
        // One at a time, the naive protocol behaves: the second request is
        // locally rejected because the first has already propagated.
        let initial = crate::reduction::reduction_initial_weights(4, 1);
        let mut world: awr_sim::World<NaiveMsg> =
            awr_sim::World::new(7, awr_sim::ConstantLatency(1_000));
        for i in 0..4 {
            world.add_actor(NaiveWrServer::new(ServerId(i), &initial, 1));
        }
        world.with_actor_ctx::<NaiveWrServer, _>(ActorId(0), |srv, ctx| {
            assert!(srv.reassign(ServerId(0), Ratio::dec("0.5"), ctx));
        });
        world.run_to_quiescence();
        world.with_actor_ctx::<NaiveWrServer, _>(ActorId(1), |srv, ctx| {
            // Locally visible now → correctly rejected.
            assert!(!srv.reassign(ServerId(1), Ratio::dec("-0.5"), ctx));
        });
        world.run_to_quiescence();
        let w = world
            .actor::<NaiveWrServer>(ActorId(2))
            .unwrap()
            .local_weights();
        assert!(awr_quorum::integrity_holds(&w, 1));
    }

    #[test]
    fn concurrent_use_violates_integrity_every_seed() {
        for seed in 0..25 {
            let (_, ok) = run_theorem1_race(4, 1, seed);
            assert!(!ok, "seed {seed}: naive protocol accidentally safe?");
        }
        for seed in 0..10 {
            let (_, ok) = run_theorem1_race(7, 3, seed);
            assert!(!ok, "seed {seed}");
        }
    }

    #[test]
    fn all_servers_converge_to_same_view() {
        let initial = crate::reduction::reduction_initial_weights(5, 2);
        let mut world: awr_sim::World<NaiveMsg> =
            awr_sim::World::new(3, awr_sim::UniformLatency::new(1, 100_000));
        for i in 0..5 {
            world.add_actor(NaiveWrServer::new(ServerId(i), &initial, 2));
        }
        for i in 0..5u32 {
            world.with_actor_ctx::<NaiveWrServer, _>(ActorId(i as usize), |srv, ctx| {
                srv.reassign(ServerId(i), Ratio::dec("-0.1"), ctx)
            });
        }
        world.run_to_quiescence();
        let w0 = world
            .actor::<NaiveWrServer>(ActorId(0))
            .unwrap()
            .local_weights();
        for i in 1..5 {
            let wi = world
                .actor::<NaiveWrServer>(ActorId(i))
                .unwrap()
                .local_weights();
            assert_eq!(w0, wi, "server {i} diverged");
        }
    }
}
