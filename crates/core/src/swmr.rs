//! Single-writer multi-reader register arrays.
//!
//! Algorithms 1 and 2 assume "a shared array of SWMR registers R of size n
//! to store servers' proposals". The registers are an *assumed primitive* of
//! the reduction (they are implementable from message passing with f < n/2
//! via ABD, which `awr-storage` also provides); here we give the in-process
//! linearizable version the reductions run against.

use parking_lot::RwLock;

/// A shared array of single-writer multi-reader registers.
///
/// Slot `i` must only be written by process `i`; this is enforced at
/// runtime.
///
/// # Examples
///
/// ```
/// use awr_core::SwmrArray;
///
/// let r: SwmrArray<u64> = SwmrArray::new(3);
/// r.write(0, 42);
/// assert_eq!(r.read(0), Some(42));
/// assert_eq!(r.read(1), None);
/// ```
#[derive(Debug)]
pub struct SwmrArray<V> {
    slots: Vec<RwLock<Option<V>>>,
    written: Vec<RwLock<bool>>,
}

impl<V: Clone> SwmrArray<V> {
    /// Creates `n` empty registers.
    pub fn new(n: usize) -> SwmrArray<V> {
        SwmrArray {
            slots: (0..n).map(|_| RwLock::new(None)).collect(),
            written: (0..n).map(|_| RwLock::new(false)).collect(),
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the array has no registers.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Writes register `i` (caller must be the unique writer of slot `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the slot was written twice — the
    /// reduction algorithms write each slot exactly once, so a double write
    /// indicates a harness bug.
    pub fn write(&self, i: usize, v: V) {
        let mut wr = self.written[i].write();
        assert!(!*wr, "SWMR register {i} written twice");
        *wr = true;
        *self.slots[i].write() = Some(v);
    }

    /// Reads register `i` (`None` if unwritten).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn read(&self, i: usize) -> Option<V> {
        self.slots[i].read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn write_then_read() {
        let r: SwmrArray<String> = SwmrArray::new(2);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        r.write(1, "v".into());
        assert_eq!(r.read(1).as_deref(), Some("v"));
        assert_eq!(r.read(0), None);
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn double_write_panics() {
        let r: SwmrArray<u32> = SwmrArray::new(1);
        r.write(0, 1);
        r.write(0, 2);
    }

    #[test]
    fn concurrent_readers_see_writes() {
        let r: Arc<SwmrArray<u64>> = Arc::new(SwmrArray::new(8));
        let writers: Vec<_> = (0..8)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || r.write(i, i as u64 * 10))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for i in 0..8 {
            assert_eq!(r.read(i), Some(i as u64 * 10));
        }
    }
}
