//! # awr-core — asynchronous weight reassignment (the paper's contribution)
//!
//! Implements the complete technical content of *“How Hard is Asynchronous
//! Weight Reassignment?”* (Heydari, Silvestre, Bessani — ICDCS 2023):
//!
//! * **Problem definitions** ([`problem`]) — the weight reassignment,
//!   pairwise, and restricted pairwise problems (Definitions 3–5) with the
//!   validated [`RpConfig`] deployment parameters.
//! * **Impossibility, operationally** ([`reduction`], [`naive`]) —
//!   Algorithms 1 and 2 run against linearizable oracles ([`WrOracle`],
//!   [`PwOracle`]) and solve consensus (Theorems 1–2); the naive
//!   asynchronous implementation demonstrably violates Integrity under
//!   concurrency.
//! * **The implementable protocol** ([`restricted`]) — Algorithms 3 and 4:
//!   `read_changes` with write-back, and `transfer` with the local C2 check
//!   plus reliable broadcast (Theorems 4–5).
//! * **Auditing** ([`audit_transfers`]) — executable RP-Integrity,
//!   P-Integrity, C1, conservation, and Validity checks over recorded
//!   executions.
//!
//! # Quick tour
//!
//! ```
//! use awr_core::{audit_transfers, RpConfig, RpHarness};
//! use awr_sim::UniformLatency;
//! use awr_types::{Ratio, ServerId};
//!
//! // Fig. 1's system: seven servers, f = 2, uniform weight 1.
//! let cfg = RpConfig::uniform(7, 2);
//! let mut h = RpHarness::build(cfg.clone(), 1, 1, UniformLatency::new(1_000, 60_000));
//!
//! // s4, s5, s6 each donate 0.25 to s1, s2, s3.
//! for (from, to) in [(3, 0), (4, 1), (5, 2)] {
//!     let out = h
//!         .transfer_and_wait(ServerId(from), ServerId(to), Ratio::dec("0.25"))
//!         .unwrap();
//!     assert!(out.is_effective());
//! }
//!
//! // The audit replays the execution and certifies every safety property.
//! let report = audit_transfers(&cfg, &h.all_completed());
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod naive;
pub mod oracle;
pub mod problem;
pub mod reduction;
pub mod restricted;
mod swmr;

pub use audit::{audit_transfers, check_validity_ii, AuditReport, Violation};
pub use oracle::{PwOracle, WrOracle};
pub use problem::{RpConfig, TransferError, TransferOutcome};
pub use restricted::{
    ReadChangesClient, ReadChangesResult, RpClient, RpHarness, RpServer, TransferCore,
    TransferStart, WrMsg,
};
pub use swmr::SwmrArray;

// Re-exported for downstream convenience (auditor signatures use sim time).
pub use awr_sim::Time;

#[cfg(test)]
mod protocol_tests {
    use super::*;
    use awr_sim::{ActorId, UniformLatency};
    use awr_types::{Ratio, ServerId};

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    fn harness(n: usize, f: usize, seed: u64) -> RpHarness {
        RpHarness::build(
            RpConfig::uniform(n, f),
            2,
            seed,
            UniformLatency::new(1_000, 80_000),
        )
    }

    #[test]
    fn effective_transfer_reaches_all_servers() {
        let mut h = harness(7, 2, 1);
        let out = h.transfer_and_wait(s(3), s(0), Ratio::dec("0.25")).unwrap();
        assert!(out.is_effective());
        h.settle();
        for i in 0..7 {
            let w = h.weights_seen_by(s(i));
            assert_eq!(w.weight(s(0)), Ratio::dec("1.25"), "server {i}");
            assert_eq!(w.weight(s(3)), Ratio::dec("0.75"), "server {i}");
        }
    }

    #[test]
    fn null_transfer_changes_nothing() {
        let mut h = harness(7, 2, 2);
        // 0.4 > 1 − 0.7 = 0.3 → must abort.
        let out = h.transfer_and_wait(s(3), s(0), Ratio::dec("0.4")).unwrap();
        assert!(!out.is_effective());
        h.settle();
        for i in 0..7 {
            assert_eq!(h.weights_seen_by(s(i)).weight(s(3)), Ratio::ONE);
        }
        // Null outcomes are not broadcast: no T messages at all.
        assert_eq!(h.world.metrics().sent_of_kind("T"), 0);
    }

    #[test]
    fn boundary_exactly_at_floor_aborts() {
        let mut h = harness(7, 2, 3);
        // weight 1, floor 0.7: Δ = 0.3 needs 1 > 1.0 → false → null.
        let out = h.transfer_and_wait(s(3), s(0), Ratio::dec("0.3")).unwrap();
        assert!(!out.is_effective());
        // Δ = 0.29 passes.
        let out = h.transfer_and_wait(s(3), s(0), Ratio::dec("0.29")).unwrap();
        assert!(out.is_effective());
    }

    #[test]
    fn read_changes_sees_completed_transfer() {
        let mut h = harness(7, 2, 4);
        h.transfer_and_wait(s(3), s(0), Ratio::dec("0.25")).unwrap();
        let rc = h.read_changes(0, s(0)).unwrap();
        assert_eq!(rc.weight(), Ratio::dec("1.25"));
        // Definition 2: the response contains the credit change.
        assert!(rc
            .changes
            .iter()
            .any(|c| c.issuer == s(3).into() && c.counter == 2 && c.target == s(0)));
    }

    #[test]
    fn transfers_survive_f_crashes() {
        for seed in 0..10 {
            let mut h = harness(7, 2, seed);
            h.crash_server(s(5));
            h.crash_server(s(6));
            let out = h
                .transfer_and_wait(s(3), s(0), Ratio::dec("0.2"))
                .expect("liveness with f crashes");
            assert!(out.is_effective());
            let rc = h.read_changes(0, s(0)).expect("read_changes liveness");
            assert_eq!(rc.weight(), Ratio::dec("1.2"), "seed {seed}");
        }
    }

    #[test]
    fn audit_clean_over_random_workload() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut h = harness(7, 2, seed);
            for _ in 0..30 {
                let from = s(rng.random_range(0..7));
                let to = s(rng.random_range(0..7));
                if from == to {
                    continue;
                }
                let delta = Ratio::new(rng.random_range(1..=4i128), 20); // 0.05..0.2
                let _ = h.transfer_and_wait(from, to, delta);
            }
            let report = audit_transfers(h.config(), &h.all_completed());
            assert!(report.is_clean(), "seed {seed}: {:?}", report.violations);
        }
    }

    #[test]
    fn sequentiality_enforced() {
        let mut h = harness(7, 2, 9);
        h.transfer_async(s(3), s(0), Ratio::dec("0.1")).unwrap();
        // Second invocation while the first is pending must be rejected.
        let err = h.transfer_async(s(3), s(1), Ratio::dec("0.1")).unwrap_err();
        assert_eq!(err, TransferError::Busy);
        h.settle();
        // After completion it works again.
        let out = h.transfer_and_wait(s(3), s(1), Ratio::dec("0.1")).unwrap();
        assert!(out.is_effective());
    }

    #[test]
    fn concurrent_transfers_from_distinct_servers_all_complete() {
        for seed in 0..10 {
            let mut h = harness(7, 2, 100 + seed);
            h.transfer_async(s(3), s(0), Ratio::dec("0.2")).unwrap();
            h.transfer_async(s(4), s(1), Ratio::dec("0.2")).unwrap();
            h.transfer_async(s(5), s(2), Ratio::dec("0.2")).unwrap();
            h.settle();
            let report = audit_transfers(h.config(), &h.all_completed());
            assert!(report.is_clean(), "seed {seed}");
            assert_eq!(report.effective, 3, "seed {seed}");
            let w = h.weights_seen_by(s(0));
            assert_eq!(w.weight(s(0)), Ratio::dec("1.2"));
            assert_eq!(w.total(), Ratio::integer(7));
        }
    }

    #[test]
    fn validity_ii_across_sequential_reads() {
        let mut h = harness(7, 2, 11);
        h.transfer_and_wait(s(3), s(0), Ratio::dec("0.1")).unwrap();
        let r1 = h.read_changes(0, s(0)).unwrap();
        h.transfer_and_wait(s(4), s(0), Ratio::dec("0.1")).unwrap();
        let r2 = h.read_changes(1, s(0)).unwrap();
        assert!(check_validity_ii(&r1, &r2).is_none());
        assert!(r2.weight() > r1.weight());
    }

    #[test]
    fn invalid_arguments_rejected() {
        let mut h = harness(7, 2, 12);
        assert!(matches!(
            h.transfer_async(s(0), s(0), Ratio::dec("0.1")),
            Err(TransferError::InvalidArguments { .. })
        ));
        assert!(matches!(
            h.transfer_async(s(0), s(1), Ratio::dec("-0.1")),
            Err(TransferError::InvalidArguments { .. })
        ));
        assert!(matches!(
            h.transfer_async(s(0), ServerId(99), Ratio::dec("0.1")),
            Err(TransferError::InvalidArguments { .. })
        ));
    }

    #[test]
    fn message_complexity_is_quadratic_in_n() {
        // One effective transfer costs O(n²) messages (eager-relay RB)
        // plus n − f − 1 acks.
        let mut h = harness(7, 2, 13);
        h.transfer_and_wait(s(3), s(0), Ratio::dec("0.1")).unwrap();
        h.settle();
        let m = h.world.metrics();
        // RB: origin sends 6, each of 6 receivers relays ≤ 5 → ≤ 36.
        assert!(m.sent_of_kind("T") >= 6);
        assert!(m.sent_of_kind("T") <= 36);
        assert_eq!(m.sent_of_kind("T_Ack"), 6);
    }

    #[test]
    fn client_read_changes_on_quiet_system() {
        let mut h = harness(4, 1, 14);
        let rc = h.read_changes(0, s(2)).unwrap();
        assert_eq!(rc.weight(), Ratio::ONE);
        assert_eq!(rc.changes.len(), 1); // just the initial change
    }

    #[test]
    fn crashed_reader_never_completes_but_system_lives() {
        let mut h = harness(7, 2, 15);
        let client = h.client_actor(0);
        h.world.with_actor_ctx::<RpClient, _>(client, |c, ctx| {
            c.read_changes(s(0), ctx).unwrap();
        });
        h.world.crash_now(client);
        h.settle();
        // The system is unaffected; a transfer still completes.
        let out = h.transfer_and_wait(s(3), s(0), Ratio::dec("0.1")).unwrap();
        assert!(out.is_effective());
    }

    #[test]
    fn queued_transfers_batch_into_one_envelope() {
        let mut h = harness(7, 2, 17);
        // The first request starts immediately; the next two queue behind
        // it and drain as ONE batched ⟨T⟩ envelope when it completes.
        h.transfer_queued(s(3), s(0), Ratio::dec("0.05")).unwrap();
        h.transfer_queued(s(3), s(1), Ratio::dec("0.05")).unwrap();
        h.transfer_queued(s(3), s(2), Ratio::dec("0.05")).unwrap();
        h.settle();
        let report = audit_transfers(h.config(), &h.all_completed());
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.effective, 3);
        // Eager-relay RB costs exactly (n−1)² = 36 T messages per
        // broadcast instance: two instances (first + drained batch), not
        // three — the batching saved a full relay wave.
        assert_eq!(h.world.metrics().sent_of_kind("T"), 2 * 36);
        // Every server converged on all three credits.
        for i in 0..7 {
            let w = h.weights_seen_by(s(i));
            assert_eq!(w.weight(s(3)), Ratio::dec("0.85"), "server {i}");
            assert_eq!(w.total(), Ratio::integer(7), "server {i}");
        }
    }

    #[test]
    fn queued_null_transfers_complete_via_events() {
        let mut h = harness(7, 2, 18);
        h.transfer_queued(s(3), s(0), Ratio::dec("0.25")).unwrap();
        // At drain time the donor holds 0.75: 0.2 fails C2 (needs > 0.9),
        // 0.04 passes (needs > 0.74) — the null must still complete.
        h.transfer_queued(s(3), s(1), Ratio::dec("0.2")).unwrap();
        h.transfer_queued(s(3), s(2), Ratio::dec("0.04")).unwrap();
        h.settle();
        let all = h.all_completed();
        assert_eq!(all.len(), 3, "every queued request must complete");
        let report = audit_transfers(h.config(), &all);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.effective, 2);
        // The null outcome reached the host's completion log too.
        let logged = &h.world.actor::<RpServer>(ActorId(3)).unwrap().complete_log;
        assert_eq!(logged.len(), 3);
        assert_eq!(logged.iter().filter(|o| !o.is_effective()).count(), 1);
    }

    #[test]
    fn with_actor_ctx_effects_flow() {
        // Regression guard: effects from with_actor_ctx must enter the queue.
        let mut h = harness(4, 1, 16);
        h.transfer_async(s(1), s(0), Ratio::dec("0.1")).unwrap();
        assert!(h.world.metrics().sent_of_kind("T") > 0);
        let busy = h.world.actor::<RpServer>(ActorId(1)).unwrap().is_busy();
        assert!(busy);
        h.settle();
        assert!(!h.world.actor::<RpServer>(ActorId(1)).unwrap().is_busy());
    }
}
