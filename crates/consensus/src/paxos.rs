//! Single-decree Paxos (synod) over the simulated asynchronous network.
//!
//! The baseline substrate for *consensus-based* weight reassignment
//! ([10], [20], [22] in the paper): safe under full asynchrony, live only
//! under partial synchrony — which is exactly the contrast experiment E9
//! stages against the consensus-free restricted pairwise protocol.
//!
//! Roles are folded into one actor per server: proposer (only on designated
//! leaders), acceptor, and learner. No retransmission is needed because the
//! simulated links are reliable.

use std::any::Any;
use std::collections::HashMap;

use awr_sim::{Actor, ActorId, Context, Message};

/// A Paxos ballot number: `(round, proposer)` ordered lexicographically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ballot {
    /// The round counter.
    pub round: u64,
    /// The proposing actor (ties broken by id).
    pub proposer: usize,
}

/// Wire messages of single-decree Paxos.
#[derive(Clone, Debug)]
pub enum PaxosMsg<V> {
    /// Phase 1a: leader asks acceptors to promise.
    Prepare {
        /// The ballot being prepared.
        ballot: Ballot,
    },
    /// Phase 1b: promise, carrying any previously accepted value.
    Promise {
        /// The ballot being promised.
        ballot: Ballot,
        /// The highest-ballot value this acceptor accepted, if any.
        accepted: Option<(Ballot, V)>,
    },
    /// Phase 2a: leader asks acceptors to accept a value.
    Accept {
        /// The ballot of the proposal.
        ballot: Ballot,
        /// The proposed value.
        value: V,
    },
    /// Phase 2b: accepted notification (sent to the leader and learners).
    Accepted {
        /// The accepted ballot.
        ballot: Ballot,
        /// The accepted value.
        value: V,
    },
    /// Decision dissemination.
    Decide {
        /// The chosen value.
        value: V,
    },
}

impl<V: Clone + std::fmt::Debug + Send + 'static> Message for PaxosMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            PaxosMsg::Prepare { .. } => "1a",
            PaxosMsg::Promise { .. } => "1b",
            PaxosMsg::Accept { .. } => "2a",
            PaxosMsg::Accepted { .. } => "2b",
            PaxosMsg::Decide { .. } => "D",
        }
    }
}

#[derive(Debug)]
struct ProposerState<V> {
    ballot: Ballot,
    value: V,
    promises: HashMap<usize, Option<(Ballot, V)>>,
    accepts: usize,
    phase2: bool,
}

/// A Paxos node (acceptor + learner + optional proposer).
#[derive(Debug)]
pub struct PaxosNode<V> {
    n: usize,
    // Acceptor state.
    promised: Option<Ballot>,
    accepted: Option<(Ballot, V)>,
    // Proposer state.
    proposing: Option<ProposerState<V>>,
    /// The decided value, once learned.
    pub decided: Option<V>,
}

impl<V: Clone + PartialEq + std::fmt::Debug + Send + 'static> PaxosNode<V> {
    /// Creates a node in an `n`-node system.
    pub fn new(n: usize) -> PaxosNode<V> {
        PaxosNode {
            n,
            promised: None,
            accepted: None,
            proposing: None,
            decided: None,
        }
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// Starts proposing `value` at `round` (the caller is the leader).
    pub fn propose(&mut self, round: u64, value: V, ctx: &mut Context<'_, PaxosMsg<V>>) {
        let ballot = Ballot {
            round,
            proposer: ctx.id().index(),
        };
        self.proposing = Some(ProposerState {
            ballot,
            value,
            promises: HashMap::new(),
            accepts: 0,
            phase2: false,
        });
        for i in 0..self.n {
            ctx.send(ActorId(i), PaxosMsg::Prepare { ballot });
        }
    }

    fn on_prepare(&mut self, from: ActorId, ballot: Ballot, ctx: &mut Context<'_, PaxosMsg<V>>) {
        if self.promised.map(|p| ballot > p).unwrap_or(true) {
            self.promised = Some(ballot);
            ctx.send(
                from,
                PaxosMsg::Promise {
                    ballot,
                    accepted: self.accepted.clone(),
                },
            );
        }
    }

    fn on_promise(
        &mut self,
        from: ActorId,
        ballot: Ballot,
        accepted: Option<(Ballot, V)>,
        ctx: &mut Context<'_, PaxosMsg<V>>,
    ) {
        let majority = self.majority();
        let n = self.n;
        let Some(p) = self.proposing.as_mut() else {
            return;
        };
        if p.ballot != ballot || p.phase2 {
            return;
        }
        p.promises.insert(from.index(), accepted);
        if p.promises.len() >= majority {
            // Adopt the highest previously accepted value, if any.
            if let Some((_, v)) = p
                .promises
                .values()
                .flatten()
                .max_by_key(|(b, _)| *b)
                .cloned()
            {
                p.value = v;
            }
            p.phase2 = true;
            let (ballot, value) = (p.ballot, p.value.clone());
            for i in 0..n {
                ctx.send(
                    ActorId(i),
                    PaxosMsg::Accept {
                        ballot,
                        value: value.clone(),
                    },
                );
            }
        }
    }

    fn on_accept(
        &mut self,
        from: ActorId,
        ballot: Ballot,
        value: V,
        ctx: &mut Context<'_, PaxosMsg<V>>,
    ) {
        if self.promised.map(|p| ballot >= p).unwrap_or(true) {
            self.promised = Some(ballot);
            self.accepted = Some((ballot, value.clone()));
            ctx.send(from, PaxosMsg::Accepted { ballot, value });
        }
    }

    fn on_accepted(&mut self, ballot: Ballot, value: V, ctx: &mut Context<'_, PaxosMsg<V>>) {
        let majority = self.majority();
        let n = self.n;
        let Some(p) = self.proposing.as_mut() else {
            return;
        };
        if p.ballot != ballot || !p.phase2 {
            return;
        }
        p.accepts += 1;
        if p.accepts >= majority && self.decided.is_none() {
            self.decided = Some(value.clone());
            for i in 0..n {
                ctx.send(
                    ActorId(i),
                    PaxosMsg::Decide {
                        value: value.clone(),
                    },
                );
            }
            self.proposing = None;
        }
    }
}

impl<V: Clone + PartialEq + std::fmt::Debug + Send + 'static> Actor for PaxosNode<V> {
    type Msg = PaxosMsg<V>;

    fn on_message(&mut self, from: ActorId, msg: PaxosMsg<V>, ctx: &mut Context<'_, PaxosMsg<V>>) {
        match msg {
            PaxosMsg::Prepare { ballot } => self.on_prepare(from, ballot, ctx),
            PaxosMsg::Promise { ballot, accepted } => self.on_promise(from, ballot, accepted, ctx),
            PaxosMsg::Accept { ballot, value } => self.on_accept(from, ballot, value, ctx),
            PaxosMsg::Accepted { ballot, value } => self.on_accepted(ballot, value, ctx),
            PaxosMsg::Decide { value } => {
                if self.decided.is_none() {
                    self.decided = Some(value);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awr_sim::{UniformLatency, World};

    fn build(n: usize, seed: u64) -> World<PaxosMsg<u64>> {
        let mut w = World::new(seed, UniformLatency::new(1_000, 50_000));
        for _ in 0..n {
            w.add_actor(PaxosNode::<u64>::new(n));
        }
        w
    }

    fn decided(w: &World<PaxosMsg<u64>>, i: usize) -> Option<u64> {
        w.actor::<PaxosNode<u64>>(ActorId(i)).unwrap().decided
    }

    #[test]
    fn single_proposer_decides() {
        let mut w = build(5, 1);
        w.with_actor_ctx::<PaxosNode<u64>, _>(ActorId(0), |n, ctx| n.propose(1, 42, ctx));
        w.run_to_quiescence();
        for i in 0..5 {
            assert_eq!(decided(&w, i), Some(42), "node {i}");
        }
    }

    #[test]
    fn two_proposers_agree() {
        for seed in 0..20 {
            let mut w = build(5, seed);
            w.with_actor_ctx::<PaxosNode<u64>, _>(ActorId(0), |n, ctx| n.propose(1, 10, ctx));
            w.with_actor_ctx::<PaxosNode<u64>, _>(ActorId(1), |n, ctx| n.propose(2, 20, ctx));
            w.run_to_quiescence();
            let winners: Vec<_> = (0..5).filter_map(|i| decided(&w, i)).collect();
            assert!(!winners.is_empty(), "seed {seed}: nobody decided");
            assert!(
                winners.iter().all(|&v| v == winners[0]),
                "seed {seed}: split decision {winners:?}"
            );
            assert!(winners[0] == 10 || winners[0] == 20);
        }
    }

    #[test]
    fn survives_minority_crashes() {
        let mut w = build(5, 3);
        w.crash_now(ActorId(3));
        w.crash_now(ActorId(4));
        w.with_actor_ctx::<PaxosNode<u64>, _>(ActorId(0), |n, ctx| n.propose(1, 7, ctx));
        w.run_to_quiescence();
        for i in 0..3 {
            assert_eq!(decided(&w, i), Some(7), "node {i}");
        }
    }

    #[test]
    fn stalls_without_majority() {
        let mut w = build(5, 4);
        w.crash_now(ActorId(2));
        w.crash_now(ActorId(3));
        w.crash_now(ActorId(4));
        w.with_actor_ctx::<PaxosNode<u64>, _>(ActorId(0), |n, ctx| n.propose(1, 7, ctx));
        w.run_to_quiescence();
        assert_eq!(decided(&w, 0), None, "decided without a majority");
    }
}
