//! # awr-consensus — Paxos and the consensus-based reassignment baseline
//!
//! The paper's related work (§VIII) reassigns weights through consensus in
//! partially-synchronous systems (WHEAT/AWARE and the dynamic-voting line).
//! This crate provides that baseline so the experiments can contrast it
//! with the consensus-free restricted pairwise protocol:
//!
//! * [`PaxosNode`] — single-decree Paxos (safe under asynchrony, live under
//!   partial synchrony);
//! * [`CwrNode`] — consensus-based weight reassignment: a fixed leader
//!   sequences [`WeightCmd`]s through per-slot Paxos instances; nodes apply
//!   them in order. Stalling the leader stalls *all* reassignment — the
//!   operational content of the paper's impossibility results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cwr;
mod paxos;

pub use cwr::{CwrNode, SlotMsg, WeightCmd};
pub use paxos::{Ballot, PaxosMsg, PaxosNode};
