//! Consensus-based weight reassignment — the partially-synchronous baseline
//! (paper §VIII: [10], [20], [22], [27], [28] all reassign weights through
//! consensus or similar primitives).
//!
//! Every reassignment request is funneled through a fixed-leader sequence
//! of single-decree Paxos instances. Safe always; live only while the
//! leader's messages flow — experiment E9 stalls the leader with a
//! [`awr_sim::TargetedDelay`] adversary and counts completed reassignments
//! against the consensus-free restricted pairwise protocol.

use std::any::Any;
use std::collections::BTreeMap;

use awr_sim::{Actor, ActorId, Context, Message};
use awr_types::{Ratio, ServerId, WeightMap};

use crate::paxos::{Ballot, PaxosMsg};

/// A reassignment command agreed through consensus.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightCmd {
    /// The donating server.
    pub from: ServerId,
    /// The receiving server.
    pub to: ServerId,
    /// The amount moved.
    pub delta: Ratio,
}

/// Messages of the consensus-based reassignment: slot-tagged Paxos.
#[derive(Clone, Debug)]
pub struct SlotMsg {
    /// The consensus instance this message belongs to.
    pub slot: u64,
    /// The inner Paxos message.
    pub inner: PaxosMsg<WeightCmd>,
}

impl Message for SlotMsg {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

#[derive(Debug)]
struct SlotAcceptor {
    promised: Option<Ballot>,
    accepted: Option<(Ballot, WeightCmd)>,
}

#[derive(Debug)]
struct SlotProposer {
    ballot: Ballot,
    value: WeightCmd,
    promises: usize,
    prev: Option<(Ballot, WeightCmd)>,
    accepts: usize,
    phase2: bool,
    done: bool,
}

/// A node of the consensus-based weight reassignment baseline.
///
/// Node 0 is the fixed leader (the partial-synchrony assumption); it runs
/// one Paxos instance per submitted command. All nodes apply decided
/// commands to their weight map in slot order.
#[derive(Debug)]
pub struct CwrNode {
    n: usize,
    f: usize,
    is_leader: bool,
    next_slot: u64,
    acceptors: BTreeMap<u64, SlotAcceptor>,
    proposers: BTreeMap<u64, SlotProposer>,
    decided: BTreeMap<u64, WeightCmd>,
    applied_upto: u64,
    weights: WeightMap,
    /// Commands applied, in order (completion log for E9).
    pub applied: Vec<WeightCmd>,
}

impl CwrNode {
    /// Creates a node; `leader` marks node 0's role.
    pub fn new(n: usize, f: usize, initial: WeightMap, is_leader: bool) -> CwrNode {
        CwrNode {
            n,
            f,
            is_leader,
            next_slot: 0,
            acceptors: BTreeMap::new(),
            proposers: BTreeMap::new(),
            decided: BTreeMap::new(),
            applied_upto: 0,
            weights: initial,
            applied: Vec::new(),
        }
    }

    /// Current weights as applied so far.
    pub fn weights(&self) -> &WeightMap {
        &self.weights
    }

    /// Number of commands applied.
    pub fn applied_count(&self) -> usize {
        self.applied.len()
    }

    /// Leader API: submit a reassignment for consensus.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-leader.
    pub fn submit(&mut self, cmd: WeightCmd, ctx: &mut Context<'_, SlotMsg>) {
        assert!(self.is_leader, "only the leader submits commands");
        let slot = self.next_slot;
        self.next_slot += 1;
        let ballot = Ballot {
            round: 1,
            proposer: ctx.id().index(),
        };
        self.proposers.insert(
            slot,
            SlotProposer {
                ballot,
                value: cmd,
                promises: 0,
                prev: None,
                accepts: 0,
                phase2: false,
                done: false,
            },
        );
        for i in 0..self.n {
            ctx.send(
                ActorId(i),
                SlotMsg {
                    slot,
                    inner: PaxosMsg::Prepare { ballot },
                },
            );
        }
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    fn apply_ready(&mut self) {
        // Apply decided slots in order; a gap stalls application (total
        // order is the point of the consensus baseline). Commands that
        // would break Property 1 are skipped as no-ops (the leader is
        // assumed to validate, but we stay safe regardless).
        while let Some(cmd) = self.decided.get(&self.applied_upto).cloned() {
            let mut hypothetical = self.weights.clone();
            hypothetical.add(cmd.from, -cmd.delta);
            hypothetical.add(cmd.to, cmd.delta);
            if awr_quorum::integrity_holds(&hypothetical, self.f) {
                self.weights = hypothetical;
                self.applied.push(cmd);
            }
            self.applied_upto += 1;
        }
    }
}

impl Actor for CwrNode {
    type Msg = SlotMsg;

    fn on_message(&mut self, from: ActorId, msg: SlotMsg, ctx: &mut Context<'_, SlotMsg>) {
        let slot = msg.slot;
        let majority = self.majority();
        let n = self.n;
        match msg.inner {
            PaxosMsg::Prepare { ballot } => {
                let a = self.acceptors.entry(slot).or_insert(SlotAcceptor {
                    promised: None,
                    accepted: None,
                });
                if a.promised.map(|p| ballot > p).unwrap_or(true) {
                    a.promised = Some(ballot);
                    ctx.send(
                        from,
                        SlotMsg {
                            slot,
                            inner: PaxosMsg::Promise {
                                ballot,
                                accepted: a.accepted.clone(),
                            },
                        },
                    );
                }
            }
            PaxosMsg::Promise { ballot, accepted } => {
                if let Some(p) = self.proposers.get_mut(&slot) {
                    if p.ballot == ballot && !p.phase2 {
                        p.promises += 1;
                        if let Some((b, v)) = accepted {
                            if p.prev.as_ref().map(|(pb, _)| b > *pb).unwrap_or(true) {
                                p.prev = Some((b, v));
                            }
                        }
                        if p.promises >= majority {
                            p.phase2 = true;
                            let value = p
                                .prev
                                .as_ref()
                                .map(|(_, v)| v.clone())
                                .unwrap_or_else(|| p.value.clone());
                            p.value = value.clone();
                            let ballot = p.ballot;
                            for i in 0..n {
                                ctx.send(
                                    ActorId(i),
                                    SlotMsg {
                                        slot,
                                        inner: PaxosMsg::Accept {
                                            ballot,
                                            value: value.clone(),
                                        },
                                    },
                                );
                            }
                        }
                    }
                }
            }
            PaxosMsg::Accept { ballot, value } => {
                let a = self.acceptors.entry(slot).or_insert(SlotAcceptor {
                    promised: None,
                    accepted: None,
                });
                if a.promised.map(|p| ballot >= p).unwrap_or(true) {
                    a.promised = Some(ballot);
                    a.accepted = Some((ballot, value.clone()));
                    ctx.send(
                        from,
                        SlotMsg {
                            slot,
                            inner: PaxosMsg::Accepted { ballot, value },
                        },
                    );
                }
            }
            PaxosMsg::Accepted { ballot, value } => {
                let mut decide = false;
                if let Some(p) = self.proposers.get_mut(&slot) {
                    if p.ballot == ballot && p.phase2 && !p.done {
                        p.accepts += 1;
                        if p.accepts >= majority {
                            p.done = true;
                            decide = true;
                        }
                    }
                }
                if decide {
                    for i in 0..n {
                        ctx.send(
                            ActorId(i),
                            SlotMsg {
                                slot,
                                inner: PaxosMsg::Decide {
                                    value: value.clone(),
                                },
                            },
                        );
                    }
                }
            }
            PaxosMsg::Decide { value } => {
                self.decided.entry(slot).or_insert(value);
                self.apply_ready();
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awr_sim::{TargetedDelay, Time, UniformLatency, World, SECOND};

    fn build(n: usize, seed: u64) -> World<SlotMsg> {
        let mut w = World::new(seed, UniformLatency::new(1_000, 50_000));
        for i in 0..n {
            w.add_actor(CwrNode::new(
                n,
                (n - 1) / 2,
                WeightMap::uniform(n, Ratio::ONE),
                i == 0,
            ));
        }
        w
    }

    fn cmd(from: u32, to: u32, d: &str) -> WeightCmd {
        WeightCmd {
            from: ServerId(from),
            to: ServerId(to),
            delta: Ratio::dec(d),
        }
    }

    #[test]
    fn commands_apply_in_order_everywhere() {
        let mut w = build(5, 1);
        w.with_actor_ctx::<CwrNode, _>(ActorId(0), |n, ctx| {
            n.submit(cmd(1, 0, "0.2"), ctx);
            n.submit(cmd(2, 0, "0.1"), ctx);
        });
        w.run_to_quiescence();
        for i in 0..5 {
            let node = w.actor::<CwrNode>(ActorId(i)).unwrap();
            assert_eq!(node.applied_count(), 2, "node {i}");
            assert_eq!(node.weights().weight(ServerId(0)), Ratio::dec("1.3"));
        }
    }

    #[test]
    fn unsafe_commands_skipped() {
        let mut w = build(5, 2);
        // Moving 1.2 onto s1 would give it 2.2 of 5 — top-2 = 3.0 ≥ 2.5.
        w.with_actor_ctx::<CwrNode, _>(ActorId(0), |n, ctx| {
            n.submit(cmd(1, 0, "0.9"), ctx);
        });
        w.run_to_quiescence();
        let node = w.actor::<CwrNode>(ActorId(0)).unwrap();
        // top-2 after: 1.9 + 1 = 2.9 ≥ 2.5 → skipped.
        assert_eq!(node.applied_count(), 0);
        assert_eq!(node.weights().weight(ServerId(0)), Ratio::ONE);
    }

    #[test]
    fn leader_stall_blocks_progress() {
        // The E9 effect in miniature: delay everything the leader sends
        // until t = 10 s; no reassignment applies before that.
        let base = UniformLatency::new(1_000, 50_000);
        let adversary = TargetedDelay::new(base, |from, _| from == ActorId(0), Time(10 * SECOND));
        let mut w: World<SlotMsg> = World::new(3, adversary);
        for i in 0..5 {
            w.add_actor(CwrNode::new(
                5,
                2,
                WeightMap::uniform(5, Ratio::ONE),
                i == 0,
            ));
        }
        w.with_actor_ctx::<CwrNode, _>(ActorId(0), |n, ctx| {
            n.submit(cmd(1, 0, "0.2"), ctx);
        });
        w.run_for(5 * SECOND);
        assert_eq!(
            w.actor::<CwrNode>(ActorId(1)).unwrap().applied_count(),
            0,
            "applied during the stall"
        );
        // After the adversary releases, the command lands.
        w.run_to_quiescence();
        assert_eq!(w.actor::<CwrNode>(ActorId(1)).unwrap().applied_count(), 1);
    }
}
