//! Execution tracing: an optional ring buffer of delivery/crash/timer
//! records for debugging protocols and validating schedules.
//!
//! Tracing is off by default (zero cost beyond a branch); enable it with
//! [`crate::World::enable_trace`]. Records carry the message *kind* labels
//! and per-delivery wire sizes (not payloads), which is enough to
//! reconstruct protocol phases and attribute bandwidth.

use std::collections::VecDeque;
use std::fmt;

use crate::actor::ActorId;
use crate::time::{Nanos, Time};

/// What happened at one traced instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message of the given kind was delivered.
    Deliver {
        /// Sending actor.
        from: ActorId,
        /// Receiving actor.
        to: ActorId,
        /// The message's kind label.
        kind: &'static str,
        /// The message's wire size in bytes.
        bytes: usize,
        /// Transmission component of the delivery delay (`size/bandwidth`
        /// plus link queueing; 0 under pure-propagation models).
        transmission: Nanos,
        /// Propagation component of the delivery delay.
        propagation: Nanos,
    },
    /// A message to a crashed actor was dropped.
    DropCrashed {
        /// Sending actor.
        from: ActorId,
        /// The crashed destination.
        to: ActorId,
        /// The message's kind label.
        kind: &'static str,
        /// The message's wire size in bytes.
        bytes: usize,
    },
    /// A timer fired.
    Timer {
        /// The timer's owner.
        actor: ActorId,
        /// The timer tag.
        tag: u64,
    },
    /// An actor crashed.
    Crash {
        /// The crashed actor.
        actor: ActorId,
    },
    /// A crashed actor was rebuilt and rebooted.
    Restart {
        /// The restarted actor.
        actor: ActorId,
    },
}

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: Time,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TraceKind::Deliver {
                from,
                to,
                kind,
                bytes,
                transmission,
                propagation,
            } => {
                write!(f, "[{}] {from} → {to} : {kind} ({bytes}B)", self.at)?;
                if *transmission > 0 {
                    write!(
                        f,
                        " [tx {:.3}ms + prop {:.3}ms]",
                        *transmission as f64 / 1e6,
                        *propagation as f64 / 1e6
                    )?;
                }
                Ok(())
            }
            TraceKind::DropCrashed {
                from,
                to,
                kind,
                bytes,
            } => {
                write!(
                    f,
                    "[{}] {from} → {to} : {kind} ({bytes}B) (dropped; crashed)",
                    self.at
                )
            }
            TraceKind::Timer { actor, tag } => {
                write!(f, "[{}] {actor} timer #{tag}", self.at)
            }
            TraceKind::Crash { actor } => write!(f, "[{}] {actor} CRASH", self.at),
            TraceKind::Restart { actor } => write!(f, "[{}] {actor} RESTART", self.at),
        }
    }
}

/// A bounded trace buffer (oldest records evicted first).
#[derive(Debug)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    total_recorded: u64,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` records.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_recorded: 0,
        }
    }

    pub(crate) fn record(&mut self, at: Time, kind: TraceKind) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord { at, kind });
        self.total_recorded += 1;
    }

    /// Records currently retained (oldest first).
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Total records ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Retained deliveries of a given message kind.
    pub fn deliveries_of(&self, kind: &str) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(&r.kind, TraceKind::Deliver { kind: k, .. } if *k == kind))
            .count()
    }

    /// Total bytes across retained deliveries of a given message kind.
    pub fn delivered_bytes_of(&self, kind: &str) -> u64 {
        self.records
            .iter()
            .filter_map(|r| match &r.kind {
                TraceKind::Deliver { kind: k, bytes, .. } if *k == kind => Some(*bytes as u64),
                _ => None,
            })
            .sum()
    }

    /// Total `(transmission, propagation)` nanoseconds across retained
    /// deliveries of a given message kind — how much of a phase's latency
    /// was bandwidth versus distance.
    pub fn delivered_delay_components_of(&self, kind: &str) -> (Nanos, Nanos) {
        self.records
            .iter()
            .filter_map(|r| match &r.kind {
                TraceKind::Deliver {
                    kind: k,
                    transmission,
                    propagation,
                    ..
                } if *k == kind => Some((*transmission, *propagation)),
                _ => None,
            })
            .fold((0, 0), |(t, p), (dt, dp)| {
                (t.saturating_add(dt), p.saturating_add(dp))
            })
    }

    /// Renders the retained records, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(2);
        for i in 0..5u64 {
            t.record(
                Time(i),
                TraceKind::Timer {
                    actor: ActorId(0),
                    tag: i,
                },
            );
        }
        assert_eq!(t.total_recorded(), 5);
        let kept: Vec<_> = t.records().map(|r| r.at).collect();
        assert_eq!(kept, vec![Time(3), Time(4)]);
    }

    #[test]
    fn display_formats() {
        let r = TraceRecord {
            at: Time(1_000_000),
            kind: TraceKind::Deliver {
                from: ActorId(0),
                to: ActorId(1),
                kind: "T",
                bytes: 64,
                transmission: 0,
                propagation: 1_000_000,
            },
        };
        assert_eq!(r.to_string(), "[t=1.000ms] a0 → a1 : T (64B)");
        let sized = TraceRecord {
            at: Time(3_000_000),
            kind: TraceKind::Deliver {
                from: ActorId(0),
                to: ActorId(1),
                kind: "W",
                bytes: 4096,
                transmission: 2_000_000,
                propagation: 1_000_000,
            },
        };
        assert_eq!(
            sized.to_string(),
            "[t=3.000ms] a0 → a1 : W (4096B) [tx 2.000ms + prop 1.000ms]"
        );
        let c = TraceRecord {
            at: Time(0),
            kind: TraceKind::Crash { actor: ActorId(2) },
        };
        assert!(c.to_string().contains("CRASH"));
    }

    #[test]
    fn deliveries_of_filters() {
        let mut t = Trace::new(10);
        t.record(
            Time(0),
            TraceKind::Deliver {
                from: ActorId(0),
                to: ActorId(1),
                kind: "T",
                bytes: 48,
                transmission: 300,
                propagation: 700,
            },
        );
        t.record(
            Time(1),
            TraceKind::Deliver {
                from: ActorId(1),
                to: ActorId(0),
                kind: "T_Ack",
                bytes: 16,
                transmission: 0,
                propagation: 500,
            },
        );
        assert_eq!(t.deliveries_of("T"), 1);
        assert_eq!(t.deliveries_of("T_Ack"), 1);
        assert_eq!(t.deliveries_of("nope"), 0);
        assert_eq!(t.delivered_bytes_of("T"), 48);
        assert_eq!(t.delivered_bytes_of("nope"), 0);
        assert_eq!(t.delivered_delay_components_of("T"), (300, 700));
        assert_eq!(t.delivered_delay_components_of("nope"), (0, 0));
        assert!(t.render().contains("T_Ack"));
    }
}
