//! Open-loop arrival processes.
//!
//! A *closed-loop* workload (every bench before `bench_throughput`)
//! issues the next operation when the previous one completes, so the
//! offered rate sags exactly when the system slows down — it can never
//! expose the latency-vs-throughput knee. An *open-loop* workload draws
//! arrival instants from a stochastic process fixed up front: arrivals
//! keep coming at the target rate whether or not the system keeps up,
//! and queueing delay shows up in the recorded latency.
//!
//! The generators here are pure functions of their own seed: they own a
//! private RNG, never touch the simulation's RNG, and never observe
//! completions. That is the open-loop invariant — the arrival sequence
//! for a given `(spec, seed)` is byte-identical no matter what the
//! system under load does — and it is pinned by
//! `tests/arrival_determinism.rs`.
//!
//! Splitting one offered load across `n` logical clients uses Poisson
//! superposition: `n` independent processes at `rate / n` are exactly a
//! Poisson process at `rate` (and in-phase on/off processes sum the same
//! way), so [`ArrivalSpec::split`] preserves the aggregate process.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::{Nanos, Time};

/// A stream of absolute arrival instants, exhausted at a horizon.
pub trait ArrivalProcess {
    /// The next arrival time (non-decreasing), or `None` once the
    /// process has run past its horizon.
    fn next_arrival(&mut self) -> Option<Time>;
}

impl ArrivalProcess for Box<dyn ArrivalProcess> {
    fn next_arrival(&mut self) -> Option<Time> {
        (**self).next_arrival()
    }
}

/// Draws an exponential inter-arrival gap in nanoseconds at `rate`
/// arrivals/second: `-ln(U) / rate`, `U` uniform in `(0, 1]`.
fn exp_gap_ns(rng: &mut StdRng, rate_per_sec: f64) -> f64 {
    // 1 - U ∈ (0, 1]: never ln(0).
    let u = 1.0 - rng.random_f64();
    -u.ln() / rate_per_sec * 1e9
}

/// A homogeneous Poisson arrival process at a target rate.
pub struct PoissonArrivals {
    rng: StdRng,
    rate_per_sec: f64,
    cursor_ns: f64,
    end: Time,
}

impl PoissonArrivals {
    /// Arrivals at `rate_per_sec` from time zero until `end`.
    pub fn new(seed: u64, rate_per_sec: f64, end: Time) -> Self {
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            rate_per_sec,
            cursor_ns: 0.0,
            end,
        }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_arrival(&mut self) -> Option<Time> {
        if self.rate_per_sec <= 0.0 {
            return None;
        }
        self.cursor_ns += exp_gap_ns(&mut self.rng, self.rate_per_sec);
        if self.cursor_ns >= self.end.0 as f64 {
            return None;
        }
        Some(Time(self.cursor_ns as u64))
    }
}

/// An on/off modulated Poisson process: `on_rate` arrivals/second for
/// `on_ns`, silence for `off_ns`, repeating. Phase boundaries are exact:
/// a draw that crosses into the next phase is clamped to the boundary
/// and redrawn there, which by memorylessness samples the
/// piecewise-constant-rate process without approximation.
pub struct BurstyArrivals {
    rng: StdRng,
    on_rate_per_sec: f64,
    on_ns: Nanos,
    off_ns: Nanos,
    cursor_ns: f64,
    end: Time,
}

impl BurstyArrivals {
    /// An on/off process from time zero until `end`, starting in the
    /// "on" phase.
    ///
    /// # Panics
    ///
    /// Panics if `on_ns` is zero (the process would never emit).
    pub fn new(seed: u64, on_rate_per_sec: f64, on_ns: Nanos, off_ns: Nanos, end: Time) -> Self {
        assert!(on_ns > 0, "bursty process needs a non-empty on phase");
        BurstyArrivals {
            rng: StdRng::seed_from_u64(seed),
            on_rate_per_sec,
            on_ns,
            off_ns,
            cursor_ns: 0.0,
            end,
        }
    }

    /// Start of the next "on" window at or after `t_ns`.
    fn skip_off(&self, t_ns: f64) -> f64 {
        let period = (self.on_ns + self.off_ns) as f64;
        let phase = t_ns % period;
        if phase < self.on_ns as f64 {
            t_ns
        } else {
            t_ns - phase + period
        }
    }

    /// End of the "on" window containing `t_ns` (callers ensure `t_ns`
    /// is inside one).
    fn on_window_end(&self, t_ns: f64) -> f64 {
        let period = (self.on_ns + self.off_ns) as f64;
        let phase = t_ns % period;
        t_ns - phase + self.on_ns as f64
    }
}

impl ArrivalProcess for BurstyArrivals {
    fn next_arrival(&mut self) -> Option<Time> {
        if self.on_rate_per_sec <= 0.0 {
            return None;
        }
        let end = self.end.0 as f64;
        loop {
            let t = self.skip_off(self.cursor_ns);
            if t >= end {
                return None;
            }
            let window_end = self.on_window_end(t);
            let candidate = t + exp_gap_ns(&mut self.rng, self.on_rate_per_sec);
            if candidate < window_end {
                if candidate >= end {
                    return None;
                }
                self.cursor_ns = candidate;
                return Some(Time(candidate as u64));
            }
            // Crossed into the off phase: clamp and redraw from the next
            // on-window (memoryless, so this is exact).
            self.cursor_ns = window_end;
        }
    }
}

/// A declarative arrival-process shape a harness can split across many
/// logical clients.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalSpec {
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Aggregate offered rate, arrivals/second.
        rate_per_sec: f64,
    },
    /// On/off modulated Poisson arrivals (all clients phase-aligned).
    Bursty {
        /// Offered rate while "on", arrivals/second.
        on_rate_per_sec: f64,
        /// "On" window length.
        on_ns: Nanos,
        /// "Off" window length.
        off_ns: Nanos,
    },
}

impl ArrivalSpec {
    /// This spec's share for one of `n` clients (Poisson superposition:
    /// the aggregate of the `n` split processes is exactly `self`).
    pub fn split(&self, n: usize) -> ArrivalSpec {
        let n = n.max(1) as f64;
        match *self {
            ArrivalSpec::Poisson { rate_per_sec } => ArrivalSpec::Poisson {
                rate_per_sec: rate_per_sec / n,
            },
            ArrivalSpec::Bursty {
                on_rate_per_sec,
                on_ns,
                off_ns,
            } => ArrivalSpec::Bursty {
                on_rate_per_sec: on_rate_per_sec / n,
                on_ns,
                off_ns,
            },
        }
    }

    /// Long-run mean offered rate in arrivals/second.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalSpec::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalSpec::Bursty {
                on_rate_per_sec,
                on_ns,
                off_ns,
            } => on_rate_per_sec * on_ns as f64 / (on_ns + off_ns) as f64,
        }
    }

    /// Instantiates the process with its own private RNG.
    pub fn build(&self, seed: u64, end: Time) -> Box<dyn ArrivalProcess> {
        match *self {
            ArrivalSpec::Poisson { rate_per_sec } => {
                Box::new(PoissonArrivals::new(seed, rate_per_sec, end))
            }
            ArrivalSpec::Bursty {
                on_rate_per_sec,
                on_ns,
                off_ns,
            } => Box::new(BurstyArrivals::new(
                seed,
                on_rate_per_sec,
                on_ns,
                off_ns,
                end,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SECOND;

    fn collect(p: &mut dyn ArrivalProcess) -> Vec<Time> {
        std::iter::from_fn(|| p.next_arrival()).collect()
    }

    #[test]
    fn poisson_same_seed_identical_sequence() {
        let end = Time(2 * SECOND);
        let a = collect(&mut PoissonArrivals::new(9, 5_000.0, end));
        let b = collect(&mut PoissonArrivals::new(9, 5_000.0, end));
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let c = collect(&mut PoissonArrivals::new(10, 5_000.0, end));
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn poisson_mean_rate_within_tolerance() {
        // 200k expected arrivals: the empirical rate is within ~1%.
        let end = Time(20 * SECOND);
        let n = collect(&mut PoissonArrivals::new(1, 10_000.0, end)).len() as f64;
        let rate = n / 20.0;
        assert!(
            (rate - 10_000.0).abs() < 150.0,
            "empirical rate {rate} too far from 10000"
        );
    }

    #[test]
    fn poisson_arrivals_strictly_ordered_and_bounded() {
        let end = Time(SECOND);
        let a = collect(&mut PoissonArrivals::new(3, 50_000.0, end));
        for w in a.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(a.iter().all(|t| *t < end));
    }

    #[test]
    fn bursty_same_seed_identical_sequence() {
        let end = Time(2 * SECOND);
        let mk = |seed| {
            collect(&mut BurstyArrivals::new(
                seed, 20_000.0, 10_000_000, 30_000_000, end,
            ))
        };
        assert!(!mk(7).is_empty());
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn bursty_arrivals_only_in_on_windows() {
        let on = 5_000_000u64; // 5 ms
        let off = 15_000_000u64; // 15 ms
        let end = Time(4 * SECOND);
        let a = collect(&mut BurstyArrivals::new(2, 40_000.0, on, off, end));
        assert!(!a.is_empty());
        for t in &a {
            let phase = t.0 % (on + off);
            assert!(phase < on, "arrival at {t} lands in an off window");
        }
    }

    #[test]
    fn bursty_mean_rate_matches_duty_cycle() {
        // on_rate 40k with 25% duty cycle → 10k/s long-run mean.
        let spec = ArrivalSpec::Bursty {
            on_rate_per_sec: 40_000.0,
            on_ns: 5_000_000,
            off_ns: 15_000_000,
        };
        assert!((spec.mean_rate() - 10_000.0).abs() < 1e-9);
        let end = Time(20 * SECOND);
        let n = collect(&mut spec.build(5, end)).len() as f64;
        let rate = n / 20.0;
        assert!(
            (rate - 10_000.0).abs() < 200.0,
            "empirical rate {rate} too far from 10000"
        );
    }

    #[test]
    fn split_preserves_aggregate_rate() {
        let spec = ArrivalSpec::Poisson {
            rate_per_sec: 30_000.0,
        };
        let end = Time(5 * SECOND);
        let total: usize = (0..16)
            .map(|i| collect(&mut spec.split(16).build(100 + i, end)).len())
            .sum();
        let rate = total as f64 / 5.0;
        assert!(
            (rate - 30_000.0).abs() < 400.0,
            "aggregate of split processes {rate} too far from 30000"
        );
    }

    #[test]
    fn zero_rate_emits_nothing() {
        assert!(PoissonArrivals::new(1, 0.0, Time(SECOND))
            .next_arrival()
            .is_none());
    }
}
