//! The actor abstraction: event-driven processes over an asynchronous
//! network.
//!
//! Protocols are written as explicit state machines: an [`Actor`] reacts to
//! `on_start`, `on_message`, and `on_timer` callbacks, and interacts with the
//! world exclusively through [`Context`] effects (sends, timers, crash).
//! This style is deliberately faithful to the asynchronous model of the
//! paper (§II): there is no way for an actor to block, read the clock, or
//! peek at another actor's state.

use std::any::Any;
use std::fmt;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::time::{Nanos, Time};

/// Identifier of an actor inside a [`crate::World`] (dense `0..n_actors`).
/// Serializable because it appears inside wire messages (RB envelopes name
/// their origin) that the real-transport runtime ships between processes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActorId(pub usize);

impl ActorId {
    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a pending timer, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// Messages exchanged by actors.
///
/// The `kind` is a coarse label used by the metrics to break message counts
/// down per protocol phase (`"RC"`, `"T"`, `"W"`, …).
pub trait Message: Clone + fmt::Debug + Send + 'static {
    /// A short label for metrics; defaults to `"msg"`.
    fn kind(&self) -> &'static str {
        "msg"
    }

    /// Approximate size of this message on the wire, in bytes. Both
    /// runtimes charge every send against this, so message cost is a
    /// first-class, benchmarkable quantity
    /// ([`crate::Metrics::bytes_sent`] / [`crate::Metrics::bytes_by_kind`]).
    ///
    /// The default — the message's in-memory footprint — is exact for
    /// plain-data messages. Types that carry heap payloads (change sets,
    /// deltas, vectors) must override it to add the payload bytes,
    /// otherwise the metrics silently undercount exactly the messages this
    /// accounting exists to expose.
    fn wire_size(&self) -> usize {
        std::mem::size_of_val(self)
    }

    /// The object (keyed register) this message belongs to, if any — the
    /// hook behind the per-object byte accounting
    /// ([`crate::Metrics::bytes_by_object`]). Multi-object storage
    /// protocols return the key of their addressed register on the keyed
    /// phases; shared-infrastructure traffic (reassignment, whole-space
    /// refreshes) and single-register protocols return `None` (the
    /// default) and stay unattributed.
    fn object_key(&self) -> Option<u64> {
        None
    }

    /// Content digest of this message, used by the model-checking explorer
    /// to identify in-flight messages independently of delivery times and
    /// queue positions. Two messages with equal digests are treated as the
    /// same pending event when deduplicating explored states, so the digest
    /// must cover the full payload — a partial digest silently merges
    /// distinct states and makes the exploration unsound.
    ///
    /// The default `None` means "not diggestible": worlds carrying such
    /// messages report no canonical digest
    /// ([`crate::World::canonical_digest`]) and cannot be state-deduped.
    fn content_digest(&self) -> Option<u64> {
        None
    }
}

/// An event-driven process.
///
/// Implementors must provide [`Actor::as_any`]/[`Actor::as_any_mut`]
/// (two lines of boilerplate) so harnesses can inspect final state through
/// [`crate::World::actor`].
pub trait Actor: 'static {
    /// The message type of the protocol this actor speaks.
    type Msg: Message;

    /// Called once at time zero, before any delivery.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Called on every message delivery.
    fn on_message(&mut self, from: ActorId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Canonical digest of this actor's protocol state, used by the
    /// model-checking explorer to deduplicate reachable states. Must be
    /// deterministic across replays *in the same process*: implementations
    /// hash logical protocol state only (no times, no event sequence
    /// numbers) and must sort any `HashMap`/`HashSet` contents before
    /// hashing — iteration order of std hash containers differs per
    /// instance.
    ///
    /// The default `None` means "not diggestible"; a world containing such
    /// an actor reports no canonical digest.
    fn state_digest(&self) -> Option<u64> {
        None
    }

    /// Upcast for harness inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for harness inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An effect requested by an actor during a callback; applied by the world
/// after the callback returns (keeping callbacks pure with respect to the
/// event queue).
#[derive(Debug)]
pub(crate) enum Effect<M> {
    Send { to: ActorId, msg: M },
    SetTimer { id: TimerId, after: Nanos, tag: u64 },
    CancelTimer { id: TimerId },
    CrashSelf,
    Counter { key: &'static str, add: u64 },
    Sample { key: &'static str, value: u64 },
}

/// The actor's handle onto the world during a callback.
///
/// All interaction is buffered: sends and timers take effect when the
/// callback returns. The RNG is the world's seeded RNG, so randomized actors
/// stay deterministic per seed.
pub struct Context<'a, M> {
    pub(crate) now: Time,
    pub(crate) self_id: ActorId,
    pub(crate) n_actors: usize,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    pub(crate) next_timer: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Current virtual time. For harness bookkeeping (operation latency
    /// stamps), *not* for protocol decisions.
    pub fn now(&self) -> Time {
        self.now
    }

    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.self_id
    }

    /// Total number of actors in the world.
    pub fn n_actors(&self) -> usize {
        self.n_actors
    }

    /// The world's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` to `to` over the asynchronous network.
    pub fn send(&mut self, to: ActorId, msg: M)
    where
        M: Clone,
    {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Sends `msg` to every actor in `targets`.
    pub fn send_to_all(&mut self, targets: impl IntoIterator<Item = ActorId>, msg: M)
    where
        M: Clone,
    {
        for t in targets {
            self.effects.push(Effect::Send {
                to: t,
                msg: msg.clone(),
            });
        }
    }

    /// Filtered broadcast: sends `msg` to every actor in `targets` that
    /// satisfies `keep`, returning how many sends were issued. This is the
    /// targeted write-back shape — phase 2 of an optimized read contacts
    /// only the repliers observed stale in phase 1 — and the simulator
    /// analogue of `awr_net`'s filtered `ConnectionPool` broadcast, so
    /// protocols written against it behave identically on all three
    /// runtimes.
    pub fn broadcast_filter(
        &mut self,
        targets: impl IntoIterator<Item = ActorId>,
        msg: M,
        mut keep: impl FnMut(ActorId) -> bool,
    ) -> usize
    where
        M: Clone,
    {
        let mut sent = 0;
        for t in targets {
            if keep(t) {
                self.effects.push(Effect::Send {
                    to: t,
                    msg: msg.clone(),
                });
                sent += 1;
            }
        }
        sent
    }

    /// Schedules `on_timer(tag)` to fire `after` nanoseconds from now.
    pub fn set_timer(&mut self, after: Nanos, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer { id, after, tag });
        id
    }

    /// Cancels a pending timer (no-op if already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// Crashes this actor at the end of the callback: no further callbacks
    /// will run and pending deliveries to it are dropped.
    pub fn crash_self(&mut self) {
        self.effects.push(Effect::CrashSelf);
    }

    /// Bumps the named protocol counter by `add`
    /// ([`crate::Metrics::counters`]). A metrics-only effect: it changes no
    /// actor or network state, so protocols may record freely without
    /// perturbing schedules or state digests.
    pub fn record_counter(&mut self, key: &'static str, add: u64) {
        self.effects.push(Effect::Counter { key, add });
    }

    /// Records one observation of `value` into the named histogram
    /// ([`crate::Metrics::samples`]). Like [`Context::record_counter`],
    /// purely observational.
    pub fn record_sample(&mut self, key: &'static str, value: u64) {
        self.effects.push(Effect::Sample { key, value });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Ping;
    impl Message for Ping {}

    #[test]
    fn default_message_kind() {
        assert_eq!(Ping.kind(), "msg");
    }

    #[test]
    fn actor_id_display() {
        assert_eq!(ActorId(3).to_string(), "a3");
        assert_eq!(ActorId(3).index(), 3);
    }
}
