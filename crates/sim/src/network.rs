//! Network latency models and adversarial delivery strategies.
//!
//! The system model (§II) assumes reliable links in an asynchronous system:
//! every sent message is eventually delivered, after an arbitrary finite
//! delay. A [`LatencyModel`] decides that delay per message. Composable
//! decorators turn a base model into an adversary: reordering bursts,
//! targeted slow-downs, or temporary partitions that heal (preserving
//! reliability).

use rand::rngs::StdRng;
use rand::Rng;

use crate::actor::ActorId;
use crate::time::{Nanos, Time, MILLI};

/// Decides the delivery delay of each message. Stateful and seeded: given
/// the same seed and send sequence, delays are reproducible.
pub trait LatencyModel: Send {
    /// Delay for a message from `from` to `to` sent at `now`.
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos;
}

/// A fixed delay for every message — synchronous-looking, useful for
/// deterministic protocol unit tests.
#[derive(Clone, Copy, Debug)]
pub struct ConstantLatency(pub Nanos);

impl LatencyModel for ConstantLatency {
    fn sample(&mut self, _: ActorId, _: ActorId, _: Time, _: &mut StdRng) -> Nanos {
        self.0
    }
}

/// Uniformly random delay in `[lo, hi]` — the canonical "asynchronous"
/// network where messages overtake each other freely.
#[derive(Clone, Copy, Debug)]
pub struct UniformLatency {
    /// Minimum delay (inclusive).
    pub lo: Nanos,
    /// Maximum delay (inclusive).
    pub hi: Nanos,
}

impl UniformLatency {
    /// A uniform delay between `lo` and `hi` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: Nanos, hi: Nanos) -> UniformLatency {
        assert!(lo <= hi, "uniform latency needs lo <= hi");
        UniformLatency { lo, hi }
    }
}

impl LatencyModel for UniformLatency {
    fn sample(&mut self, _: ActorId, _: ActorId, _: Time, rng: &mut StdRng) -> Nanos {
        rng.random_range(self.lo..=self.hi)
    }
}

/// A wide-area latency matrix: one-way base delay per (from, to) region pair
/// plus multiplicative jitter. Actors are mapped to regions by
/// `region_of[actor index]`.
pub struct WanMatrix {
    /// `base[i][j]` = one-way delay from region `i` to region `j`.
    base: Vec<Vec<Nanos>>,
    /// Region of each actor (index = actor index).
    region_of: Vec<usize>,
    /// Jitter as a fraction of the base delay (e.g. 0.2 → ±20 %).
    jitter: f64,
    /// Local (same-actor or same-region) floor delay.
    floor: Nanos,
}

impl WanMatrix {
    /// Builds a WAN model from a region RTT/2 matrix and an actor→region map.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, a region index is out of range,
    /// or `jitter` is negative.
    pub fn new(base: Vec<Vec<Nanos>>, region_of: Vec<usize>, jitter: f64) -> WanMatrix {
        let r = base.len();
        assert!(
            base.iter().all(|row| row.len() == r),
            "matrix must be square"
        );
        assert!(
            region_of.iter().all(|&x| x < r),
            "region index out of range"
        );
        assert!(jitter >= 0.0, "jitter must be non-negative");
        WanMatrix {
            base,
            region_of,
            jitter,
            floor: MILLI / 2,
        }
    }

    /// Region of an actor.
    pub fn region(&self, a: ActorId) -> usize {
        self.region_of[a.index()]
    }

    /// Re-maps an actor to a different region (used by regime-shift
    /// experiments where a replica "moves" / degrades).
    pub fn set_region(&mut self, a: ActorId, region: usize) {
        assert!(region < self.base.len());
        self.region_of[a.index()] = region;
    }

    /// The base one-way delay between two actors.
    pub fn base_delay(&self, from: ActorId, to: ActorId) -> Nanos {
        if from == to {
            return self.floor;
        }
        self.base[self.region(from)][self.region(to)].max(self.floor)
    }
}

impl LatencyModel for WanMatrix {
    fn sample(&mut self, from: ActorId, to: ActorId, _: Time, rng: &mut StdRng) -> Nanos {
        let base = self.base_delay(from, to) as f64;
        let j = if self.jitter > 0.0 {
            rng.random_range(-self.jitter..=self.jitter)
        } else {
            0.0
        };
        (base * (1.0 + j)).max(1.0) as Nanos
    }
}

/// A shared, mutable handle to a latency model: clone one side into the
/// world, keep the other to mutate the model mid-run (regime shifts).
///
/// # Examples
///
/// ```
/// use awr_sim::{shared_latency, ConstantLatency};
///
/// let (handle, model) = shared_latency(ConstantLatency(10));
/// // give `model` to World::new(..); later:
/// handle.lock().0 = 500; // the network just got 50× slower
/// # drop(model);
/// ```
pub type SharedLatency<L> = std::sync::Arc<parking_lot::Mutex<L>>;

/// Creates a shared latency model; both values refer to the same state.
pub fn shared_latency<L: LatencyModel>(inner: L) -> (SharedLatency<L>, SharedLatency<L>) {
    let a = std::sync::Arc::new(parking_lot::Mutex::new(inner));
    (a.clone(), a)
}

impl<L: LatencyModel> LatencyModel for SharedLatency<L> {
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos {
        self.lock().sample(from, to, now, rng)
    }
}

/// Decorator that multiplies delays touching a set of "slow" actors —
/// models degraded replicas for the E7/E9 experiments.
pub struct SlowActors<L> {
    inner: L,
    slow: Vec<ActorId>,
    factor: u64,
}

impl<L: LatencyModel> SlowActors<L> {
    /// Wraps `inner`, multiplying delays from/to any actor in `slow` by
    /// `factor`.
    pub fn new(inner: L, slow: Vec<ActorId>, factor: u64) -> SlowActors<L> {
        SlowActors {
            inner,
            slow,
            factor,
        }
    }

    /// Replaces the slow set (regime shift mid-run).
    pub fn set_slow(&mut self, slow: Vec<ActorId>) {
        self.slow = slow;
    }
}

impl<L: LatencyModel> LatencyModel for SlowActors<L> {
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos {
        let base = self.inner.sample(from, to, now, rng);
        if self.slow.contains(&from) || self.slow.contains(&to) {
            base.saturating_mul(self.factor)
        } else {
            base
        }
    }
}

/// Decorator that delays every message matching a predicate until at least
/// a release time — an *adversary* in the formal sense: it controls
/// scheduling but must keep links reliable (messages are delayed, never
/// dropped). Used to stall a Paxos leader (E9) or force stale reads.
pub struct TargetedDelay<L> {
    inner: L,
    /// `(from, to) -> should delay`.
    pred: Box<dyn Fn(ActorId, ActorId) -> bool + Send>,
    /// Messages matching the predicate are held until this virtual time.
    release_at: Time,
}

impl<L: LatencyModel> TargetedDelay<L> {
    /// Wraps `inner`; messages with `pred(from, to)` are delivered no
    /// earlier than `release_at`.
    pub fn new(
        inner: L,
        pred: impl Fn(ActorId, ActorId) -> bool + Send + 'static,
        release_at: Time,
    ) -> TargetedDelay<L> {
        TargetedDelay {
            inner,
            pred: Box::new(pred),
            release_at,
        }
    }
}

impl<L: LatencyModel> LatencyModel for TargetedDelay<L> {
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos {
        let base = self.inner.sample(from, to, now, rng);
        if (self.pred)(from, to) {
            let held = self.release_at - now; // saturating
            base.max(held)
        } else {
            base
        }
    }
}

/// Decorator implementing a temporary partition between two groups: until
/// `heal_at`, cross-group messages are held back; after healing everything
/// flows normally. Reliability is preserved (the model never drops).
pub struct HealingPartition<L> {
    inner: L,
    group_a: Vec<ActorId>,
    heal_at: Time,
}

impl<L: LatencyModel> HealingPartition<L> {
    /// Partitions `group_a` from everyone else until `heal_at`.
    pub fn new(inner: L, group_a: Vec<ActorId>, heal_at: Time) -> HealingPartition<L> {
        HealingPartition {
            inner,
            group_a,
            heal_at,
        }
    }
}

impl<L: LatencyModel> LatencyModel for HealingPartition<L> {
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos {
        let base = self.inner.sample(from, to, now, rng);
        let crosses = self.group_a.contains(&from) != self.group_a.contains(&to);
        if crosses && now < self.heal_at {
            base.max(self.heal_at - now)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn a(i: usize) -> ActorId {
        ActorId(i)
    }

    #[test]
    fn constant_latency() {
        let mut m = ConstantLatency(5);
        assert_eq!(m.sample(a(0), a(1), Time::ZERO, &mut rng()), 5);
    }

    #[test]
    fn uniform_bounds() {
        let mut m = UniformLatency::new(10, 20);
        let mut r = rng();
        for _ in 0..100 {
            let d = m.sample(a(0), a(1), Time::ZERO, &mut r);
            assert!((10..=20).contains(&d));
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let mut m1 = UniformLatency::new(0, 1000);
        let mut m2 = UniformLatency::new(0, 1000);
        let (mut r1, mut r2) = (rng(), rng());
        for _ in 0..50 {
            assert_eq!(
                m1.sample(a(0), a(1), Time::ZERO, &mut r1),
                m2.sample(a(0), a(1), Time::ZERO, &mut r2)
            );
        }
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn uniform_bad_bounds() {
        let _ = UniformLatency::new(5, 1);
    }

    #[test]
    fn wan_matrix_regions() {
        // Two regions, 40 ms apart; actors 0,1 in region 0, actor 2 in 1.
        let m = vec![vec![0, 40 * MILLI], vec![40 * MILLI, 0]];
        let mut wan = WanMatrix::new(m, vec![0, 0, 1], 0.0);
        let mut r = rng();
        let cross = wan.sample(a(0), a(2), Time::ZERO, &mut r);
        let local = wan.sample(a(0), a(1), Time::ZERO, &mut r);
        assert_eq!(cross, 40 * MILLI);
        assert!(local < cross);
        wan.set_region(a(2), 0);
        let now_local = wan.sample(a(0), a(2), Time::ZERO, &mut r);
        assert!(now_local < cross);
    }

    #[test]
    fn slow_actors_multiply() {
        let mut m = SlowActors::new(ConstantLatency(10), vec![a(1)], 10);
        let mut r = rng();
        assert_eq!(m.sample(a(0), a(1), Time::ZERO, &mut r), 100);
        assert_eq!(m.sample(a(1), a(0), Time::ZERO, &mut r), 100);
        assert_eq!(m.sample(a(0), a(2), Time::ZERO, &mut r), 10);
        m.set_slow(vec![]);
        assert_eq!(m.sample(a(0), a(1), Time::ZERO, &mut r), 10);
    }

    #[test]
    fn targeted_delay_holds_until_release() {
        let release = Time(1000);
        let mut m = TargetedDelay::new(ConstantLatency(10), |f, _| f == ActorId(0), release);
        let mut r = rng();
        // At t=0, messages from a0 are held ~1000ns.
        assert_eq!(m.sample(a(0), a(1), Time::ZERO, &mut r), 1000);
        // Other senders unaffected.
        assert_eq!(m.sample(a(1), a(0), Time::ZERO, &mut r), 10);
        // After release, no extra delay.
        assert_eq!(m.sample(a(0), a(1), Time(2000), &mut r), 10);
    }

    #[test]
    fn partition_heals() {
        let mut m = HealingPartition::new(ConstantLatency(10), vec![a(0)], Time(500));
        let mut r = rng();
        assert_eq!(m.sample(a(0), a(1), Time::ZERO, &mut r), 500);
        assert_eq!(m.sample(a(1), a(2), Time::ZERO, &mut r), 10); // same side
        assert_eq!(m.sample(a(0), a(1), Time(600), &mut r), 10); // healed
    }
}

/// Decorator that makes every link FIFO: per (from, to) pair, deliveries
/// never overtake. The base model still decides raw delays; this clamps
/// each arrival to be no earlier than the previous arrival on the link.
/// The paper's model (§II) does not assume FIFO links, so the default
/// everywhere is non-FIFO; this exists to measure how much protocol
/// behaviour depends on reordering (none, for safety — that is the point).
pub struct FifoLinks<L> {
    inner: L,
    last_arrival: std::collections::HashMap<(ActorId, ActorId), Time>,
}

impl<L: LatencyModel> FifoLinks<L> {
    /// Wraps `inner` with per-link FIFO enforcement.
    pub fn new(inner: L) -> FifoLinks<L> {
        FifoLinks {
            inner,
            last_arrival: std::collections::HashMap::new(),
        }
    }
}

impl<L: LatencyModel> LatencyModel for FifoLinks<L> {
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos {
        let raw = self.inner.sample(from, to, now, rng);
        let arrival = now + raw;
        let entry = self.last_arrival.entry((from, to)).or_insert(Time::ZERO);
        let fifo_arrival = if arrival > *entry {
            arrival
        } else {
            *entry + 1
        };
        *entry = fifo_arrival;
        fifo_arrival - now
    }
}

#[cfg(test)]
mod fifo_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn arrivals_never_overtake() {
        let mut m = FifoLinks::new(UniformLatency::new(1, 1_000_000));
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = (ActorId(0), ActorId(1));
        let mut last = 0u64;
        for k in 0..200u64 {
            let now = Time(k); // sends 1 ns apart
            let d = m.sample(a, b, now, &mut rng);
            let arrival = now.nanos() + d;
            assert!(arrival > last, "message overtook at k={k}");
            last = arrival;
        }
        // Other links are independent.
        let d = m.sample(b, a, Time(0), &mut rng);
        assert!(d >= 1);
    }
}
