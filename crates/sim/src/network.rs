//! Network models and adversarial delivery strategies.
//!
//! The system model (§II) assumes reliable links in an asynchronous system:
//! every sent message is eventually delivered, after an arbitrary finite
//! delay. Two layers decide that delay:
//!
//! * A [`LatencyModel`] samples *propagation* delay per message — distance,
//!   jitter, adversarial holds. Composable decorators turn a base model
//!   into an adversary: reordering bursts, targeted slow-downs, or
//!   temporary partitions that heal (preserving reliability).
//! * A [`NetworkModel`] additionally sees the message's *size* and charges
//!   transmission time plus link-serialization queueing. Every
//!   `LatencyModel` is a `NetworkModel` with infinite bandwidth (a blanket
//!   impl), so size-oblivious scenarios keep working unchanged; wrap any
//!   model in [`BandwidthLinks`] to make wire bytes shape the schedule.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::actor::ActorId;
use crate::time::{Nanos, Time, MILLI, SECOND};

/// Decides the propagation delay of each message. Stateful and seeded:
/// given the same seed and send sequence, delays are reproducible.
pub trait LatencyModel: Send {
    /// Delay for a message from `from` to `to` sent at `now`.
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos;
}

/// The components of one message's delivery delay, as decided by a
/// [`NetworkModel`]. The world schedules delivery at
/// `send time + total()` and the trace records the components.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Delivery {
    /// Time spent waiting for the link to free up (serialization behind
    /// earlier messages on the same link/uplink).
    pub queued: Nanos,
    /// Transmission time: `wire_size / link bandwidth`.
    pub transmission: Nanos,
    /// Propagation delay (the [`LatencyModel`] sample).
    pub propagation: Nanos,
}

impl Delivery {
    /// A pure-propagation delivery (infinite bandwidth, idle link).
    pub fn propagation_only(propagation: Nanos) -> Delivery {
        Delivery {
            queued: 0,
            transmission: 0,
            propagation,
        }
    }

    /// Total send-to-delivery delay.
    pub fn total(&self) -> Nanos {
        self.queued
            .saturating_add(self.transmission)
            .saturating_add(self.propagation)
    }
}

/// Decides the full delivery delay of each message, *including* its size:
/// delay = queueing (link serialization) + transmission (size / bandwidth)
/// + propagation.
///
/// Every [`LatencyModel`] is a `NetworkModel` through a blanket impl that
/// charges zero transmission — so constant/uniform/WAN models, all the
/// adversary decorators, and every existing scenario remain valid network
/// models verbatim. Size-aware models ([`BandwidthLinks`]) implement this
/// trait directly.
pub trait NetworkModel: Send {
    /// Delivery components for a message of `bytes` from `from` to `to`
    /// sent at `now`.
    fn delivery(
        &mut self,
        from: ActorId,
        to: ActorId,
        now: Time,
        bytes: usize,
        rng: &mut StdRng,
    ) -> Delivery;
}

impl<L: LatencyModel> NetworkModel for L {
    fn delivery(
        &mut self,
        from: ActorId,
        to: ActorId,
        now: Time,
        _bytes: usize,
        rng: &mut StdRng,
    ) -> Delivery {
        Delivery::propagation_only(self.sample(from, to, now, rng))
    }
}

impl NetworkModel for Box<dyn NetworkModel> {
    fn delivery(
        &mut self,
        from: ActorId,
        to: ActorId,
        now: Time,
        bytes: usize,
        rng: &mut StdRng,
    ) -> Delivery {
        (**self).delivery(from, to, now, bytes, rng)
    }
}

/// Sentinel bandwidth meaning "unlimited" (zero transmission time).
pub const UNLIMITED_BANDWIDTH: u64 = u64::MAX;

/// A per-link bandwidth matrix, mirroring [`WanMatrix`]: bandwidth in
/// bytes/second per (from-region, to-region) pair, with actors mapped to
/// regions by `region_of`. Self-sends are free (no wire is crossed).
///
/// # Examples
///
/// ```
/// use awr_sim::{ActorId, BandwidthMatrix};
///
/// // 4 actors sharing one 10 MB/s fabric.
/// let bw = BandwidthMatrix::uniform(4, 10_000_000);
/// // A 1 MB message occupies the link for 100 ms.
/// assert_eq!(
///     bw.transmission_nanos(ActorId(0), ActorId(1), 1_000_000),
///     100_000_000
/// );
/// assert_eq!(bw.transmission_nanos(ActorId(2), ActorId(2), 1_000_000), 0);
/// ```
#[derive(Clone, Debug)]
pub struct BandwidthMatrix {
    /// `bw[i][j]` = bytes/second from region `i` to region `j`.
    bw: Vec<Vec<u64>>,
    /// Region of each actor (index = actor index).
    region_of: Vec<usize>,
}

impl BandwidthMatrix {
    /// Builds a bandwidth model from a region matrix (bytes/second) and an
    /// actor→region map.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, a region index is out of range,
    /// or any bandwidth is zero.
    pub fn new(bw: Vec<Vec<u64>>, region_of: Vec<usize>) -> BandwidthMatrix {
        let r = bw.len();
        assert!(bw.iter().all(|row| row.len() == r), "matrix must be square");
        assert!(
            bw.iter().all(|row| row.iter().all(|&b| b > 0)),
            "bandwidth must be positive (use UNLIMITED_BANDWIDTH for ∞)"
        );
        assert!(
            region_of.iter().all(|&x| x < r),
            "region index out of range"
        );
        BandwidthMatrix { bw, region_of }
    }

    /// All `n` actors in one region with the same link bandwidth.
    pub fn uniform(n: usize, bytes_per_sec: u64) -> BandwidthMatrix {
        BandwidthMatrix::new(vec![vec![bytes_per_sec]], vec![0; n])
    }

    /// All `n` actors in one region with unlimited bandwidth — the identity
    /// element: wrapping a latency model with this matrix reproduces the
    /// pure-propagation schedule exactly.
    pub fn unlimited(n: usize) -> BandwidthMatrix {
        BandwidthMatrix::uniform(n, UNLIMITED_BANDWIDTH)
    }

    /// Region of an actor.
    pub fn region(&self, a: ActorId) -> usize {
        self.region_of[a.index()]
    }

    /// Re-maps an actor to a different region (regime shifts; mirror of
    /// [`WanMatrix::set_region`]).
    pub fn set_region(&mut self, a: ActorId, region: usize) {
        assert!(region < self.bw.len());
        self.region_of[a.index()] = region;
    }

    /// The bandwidth of the directed link between two actors, bytes/second.
    pub fn link_bandwidth(&self, from: ActorId, to: ActorId) -> u64 {
        self.bw[self.region(from)][self.region(to)]
    }

    /// Transmission time of `bytes` on the `from → to` link. Zero for
    /// self-sends and unlimited links.
    pub fn transmission_nanos(&self, from: ActorId, to: ActorId, bytes: usize) -> Nanos {
        if from == to || bytes == 0 {
            return 0;
        }
        let bw = self.link_bandwidth(from, to);
        if bw == UNLIMITED_BANDWIDTH {
            return 0;
        }
        ((bytes as u128 * SECOND as u128) / bw as u128) as Nanos
    }
}

/// What serializes transmissions in a [`BandwidthLinks`] model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LinkDiscipline {
    /// Each directed `(from, to)` link is its own FIFO pipe: a broadcast's
    /// messages transmit in parallel, but two messages on the *same* link
    /// serialize.
    #[default]
    PerLink,
    /// All of a sender's outgoing messages share one uplink: a broadcast of
    /// `n` large messages occupies the uplink `n` transmissions long — the
    /// regime where full-change-set wires hurt most.
    SharedUplink,
}

/// What serializes *arrivals* at the receiver in a [`BandwidthLinks`]
/// model — the mirror of the sender-side [`LinkDiscipline`].
///
/// Sender-side serialization alone lets a receiver absorb `n` concurrent
/// large transmissions from `n` different senders simultaneously, which no
/// real NIC does: an ack-collection hotspot (a quorum's worth of `RAck`s
/// converging on one client) is invisible. Under
/// [`ReceiveDiscipline::PerDownlink`] each receiver drains one
/// transmission at a time: a message's last byte lands only after the
/// downlink has spent that message's transmission time on it, so
/// converging transmissions queue. `Off` (the default) reproduces the
/// sender-side-only model byte for byte.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReceiveDiscipline {
    /// No receive-side serialization (the historical behaviour; default).
    #[default]
    Off,
    /// All of a receiver's incoming messages share one downlink, drained
    /// one transmission at a time.
    PerDownlink,
}

/// A size-aware network: wraps any [`NetworkModel`] (typically a plain
/// [`LatencyModel`]) and adds transmission time plus link serialization
/// from a [`BandwidthMatrix`].
///
/// Each transmission starts when its link (per [`LinkDiscipline`]) frees
/// up, occupies it for `size / bandwidth`, then propagates independently —
/// so a 12 MB full change set really does delay everything queued behind
/// it. With a constant propagation model this makes every link FIFO; with
/// jittered propagation, messages still serialize at the sender but may
/// reorder in flight (the asynchronous model is preserved).
///
/// # Examples
///
/// ```
/// use awr_sim::{BandwidthLinks, BandwidthMatrix, ConstantLatency, MILLI};
///
/// // 1 ms propagation, 1 MB/s links.
/// let net = BandwidthLinks::new(ConstantLatency(MILLI), BandwidthMatrix::uniform(4, 1_000_000));
/// // give `net` to World::new(..): a 1 KB message now takes 2 ms.
/// # drop(net);
/// ```
pub struct BandwidthLinks<N> {
    inner: N,
    bandwidth: BandwidthMatrix,
    discipline: LinkDiscipline,
    receive: ReceiveDiscipline,
    /// When each link frees up. Key: `(from, Some(to))` per-link or
    /// `(from, None)` shared-uplink.
    free_at: HashMap<(ActorId, Option<ActorId>), Time>,
    /// Reserved drain intervals per receiver downlink, sorted by start
    /// ([`ReceiveDiscipline::PerDownlink`] only). Interval bookkeeping —
    /// not a single free horizon — because messages are *scheduled* in
    /// send order but *arrive* in propagation order: an early-arriving
    /// message must not queue behind the reservation of one that was sent
    /// earlier yet arrives later. Entries ending before the current send
    /// time are pruned on every call, so the list is bounded by the number
    /// of in-flight messages.
    rx_busy: HashMap<ActorId, Vec<(Nanos, Nanos)>>,
}

impl<N: NetworkModel> BandwidthLinks<N> {
    /// Wraps `inner` with per-directed-link serialization (receive-side
    /// scheduling [off](ReceiveDiscipline::Off)).
    pub fn new(inner: N, bandwidth: BandwidthMatrix) -> BandwidthLinks<N> {
        BandwidthLinks::with_discipline(inner, bandwidth, LinkDiscipline::PerLink)
    }

    /// Wraps `inner` with an explicit serialization discipline.
    pub fn with_discipline(
        inner: N,
        bandwidth: BandwidthMatrix,
        discipline: LinkDiscipline,
    ) -> BandwidthLinks<N> {
        BandwidthLinks {
            inner,
            bandwidth,
            discipline,
            receive: ReceiveDiscipline::Off,
            free_at: HashMap::new(),
            rx_busy: HashMap::new(),
        }
    }

    /// Selects the receive-side discipline (builder style; the default is
    /// [`ReceiveDiscipline::Off`], which reproduces the sender-side-only
    /// schedule exactly — pinned by the `receive_off_*` tests).
    pub fn with_receive_discipline(mut self, receive: ReceiveDiscipline) -> BandwidthLinks<N> {
        self.receive = receive;
        self
    }

    /// The bandwidth matrix (for inspection / regime shifts).
    pub fn bandwidth_mut(&mut self) -> &mut BandwidthMatrix {
        &mut self.bandwidth
    }

    /// The wrapped propagation model.
    pub fn inner_mut(&mut self) -> &mut N {
        &mut self.inner
    }

    /// Charges `bytes` of *non-protocol* traffic onto the `from → to` link
    /// (or `from`'s uplink, under [`LinkDiscipline::SharedUplink`]) as if a
    /// competing flow had enqueued them at `at`: the link's free horizon
    /// advances by their transmission time, so protocol messages sent later
    /// queue behind them. This is the injection point the cross-traffic
    /// generators of [`crate::workload`] use; it creates no deliveries and
    /// draws no randomness. Returns the transmission time charged (zero for
    /// self-sends and unlimited links).
    pub fn occupy(&mut self, from: ActorId, to: ActorId, bytes: usize, at: Time) -> Nanos {
        let tx = self.bandwidth.transmission_nanos(from, to, bytes);
        if tx == 0 {
            return 0;
        }
        let key = match self.discipline {
            LinkDiscipline::PerLink => (from, Some(to)),
            LinkDiscipline::SharedUplink => (from, None),
        };
        let free = self.free_at.entry(key).or_insert(Time::ZERO);
        let start = if *free > at { *free } else { at };
        *free = start + tx;
        tx
    }
}

impl<N: NetworkModel> NetworkModel for BandwidthLinks<N> {
    fn delivery(
        &mut self,
        from: ActorId,
        to: ActorId,
        now: Time,
        bytes: usize,
        rng: &mut StdRng,
    ) -> Delivery {
        let base = self.inner.delivery(from, to, now, bytes, rng);
        let tx = self.bandwidth.transmission_nanos(from, to, bytes);
        let key = match self.discipline {
            LinkDiscipline::PerLink => (from, Some(to)),
            LinkDiscipline::SharedUplink => (from, None),
        };
        let free = self.free_at.entry(key).or_insert(Time::ZERO);
        let start = if *free > now { *free } else { now };
        let mut queued = (start - now).saturating_add(base.queued);
        *free = start + tx;
        let transmission = tx.saturating_add(base.transmission);
        // Receive-side scheduling: the receiver's downlink must also spend
        // `tx` draining this message, one message at a time. The last byte
        // can land no earlier than propagation allows AND no earlier than
        // the downlink has a `tx`-wide gap for it; any shift becomes
        // queueing delay. The search is first-fit over the reserved drain
        // intervals (NOT a single free horizon): a message that arrives
        // early — shorter propagation than one sent before it — drains in
        // a gap before the later arrival's reservation instead of
        // phantom-queueing behind it. Zero-transmission messages
        // (self-sends, unlimited links) neither wait nor occupy the
        // downlink.
        if self.receive == ReceiveDiscipline::PerDownlink && tx > 0 {
            let arrival = now
                + queued
                    .saturating_add(transmission)
                    .saturating_add(base.propagation);
            let reserved = self.rx_busy.entry(to).or_default();
            // Anything finished before this send began can never conflict
            // again (future candidates start at ≥ their own send time).
            reserved.retain(|&(_, end)| end > now.nanos());
            let mut rx_start = arrival.nanos().saturating_sub(tx);
            for &(s, e) in reserved.iter() {
                if rx_start + tx <= s {
                    break; // fits entirely before this reservation
                }
                if rx_start < e {
                    rx_start = e; // overlap: drain right after it
                }
            }
            let rx_arrival = rx_start + tx;
            let pos = reserved.partition_point(|&(s, _)| s < rx_start);
            reserved.insert(pos, (rx_start, rx_arrival));
            queued = queued.saturating_add(rx_arrival.saturating_sub(arrival.nanos()));
        }
        Delivery {
            queued,
            transmission,
            propagation: base.propagation,
        }
    }
}

/// A fixed delay for every message — synchronous-looking, useful for
/// deterministic protocol unit tests.
#[derive(Clone, Copy, Debug)]
pub struct ConstantLatency(pub Nanos);

impl LatencyModel for ConstantLatency {
    fn sample(&mut self, _: ActorId, _: ActorId, _: Time, _: &mut StdRng) -> Nanos {
        self.0
    }
}

/// Uniformly random delay in `[lo, hi]` — the canonical "asynchronous"
/// network where messages overtake each other freely.
#[derive(Clone, Copy, Debug)]
pub struct UniformLatency {
    /// Minimum delay (inclusive).
    pub lo: Nanos,
    /// Maximum delay (inclusive).
    pub hi: Nanos,
}

impl UniformLatency {
    /// A uniform delay between `lo` and `hi` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: Nanos, hi: Nanos) -> UniformLatency {
        assert!(lo <= hi, "uniform latency needs lo <= hi");
        UniformLatency { lo, hi }
    }
}

impl LatencyModel for UniformLatency {
    fn sample(&mut self, _: ActorId, _: ActorId, _: Time, rng: &mut StdRng) -> Nanos {
        rng.random_range(self.lo..=self.hi)
    }
}

/// A wide-area latency matrix: one-way base delay per (from, to) region pair
/// plus multiplicative jitter. Actors are mapped to regions by
/// `region_of[actor index]`.
pub struct WanMatrix {
    /// `base[i][j]` = one-way delay from region `i` to region `j`.
    base: Vec<Vec<Nanos>>,
    /// Region of each actor (index = actor index).
    region_of: Vec<usize>,
    /// Jitter as a fraction of the base delay (e.g. 0.2 → ±20 %).
    jitter: f64,
    /// Local (same-actor or same-region) floor delay.
    floor: Nanos,
}

impl WanMatrix {
    /// Builds a WAN model from a region RTT/2 matrix and an actor→region map.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, a region index is out of range,
    /// or `jitter` is negative.
    pub fn new(base: Vec<Vec<Nanos>>, region_of: Vec<usize>, jitter: f64) -> WanMatrix {
        let r = base.len();
        assert!(
            base.iter().all(|row| row.len() == r),
            "matrix must be square"
        );
        assert!(
            region_of.iter().all(|&x| x < r),
            "region index out of range"
        );
        assert!(jitter >= 0.0, "jitter must be non-negative");
        WanMatrix {
            base,
            region_of,
            jitter,
            floor: MILLI / 2,
        }
    }

    /// Region of an actor.
    pub fn region(&self, a: ActorId) -> usize {
        self.region_of[a.index()]
    }

    /// Re-maps an actor to a different region (used by regime-shift
    /// experiments where a replica "moves" / degrades).
    pub fn set_region(&mut self, a: ActorId, region: usize) {
        assert!(region < self.base.len());
        self.region_of[a.index()] = region;
    }

    /// The base one-way delay between two actors.
    pub fn base_delay(&self, from: ActorId, to: ActorId) -> Nanos {
        if from == to {
            return self.floor;
        }
        self.base[self.region(from)][self.region(to)].max(self.floor)
    }
}

impl LatencyModel for WanMatrix {
    fn sample(&mut self, from: ActorId, to: ActorId, _: Time, rng: &mut StdRng) -> Nanos {
        let base = self.base_delay(from, to) as f64;
        let j = if self.jitter > 0.0 {
            rng.random_range(-self.jitter..=self.jitter)
        } else {
            0.0
        };
        (base * (1.0 + j)).max(1.0) as Nanos
    }
}

/// A shared, mutable handle to a latency model: clone one side into the
/// world, keep the other to mutate the model mid-run (regime shifts).
///
/// # Examples
///
/// ```
/// use awr_sim::{shared_latency, ConstantLatency};
///
/// let (handle, model) = shared_latency(ConstantLatency(10));
/// // give `model` to World::new(..); later:
/// handle.lock().0 = 500; // the network just got 50× slower
/// # drop(model);
/// ```
pub type SharedLatency<L> = std::sync::Arc<parking_lot::Mutex<L>>;

/// Creates a shared latency model; both values refer to the same state.
pub fn shared_latency<L: LatencyModel>(inner: L) -> (SharedLatency<L>, SharedLatency<L>) {
    let a = std::sync::Arc::new(parking_lot::Mutex::new(inner));
    (a.clone(), a)
}

impl<L: LatencyModel> LatencyModel for SharedLatency<L> {
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos {
        self.lock().sample(from, to, now, rng)
    }
}

/// Decorator that multiplies delays touching a set of "slow" actors —
/// models degraded replicas for the E7/E9 experiments.
pub struct SlowActors<L> {
    inner: L,
    slow: Vec<ActorId>,
    factor: u64,
}

impl<L: LatencyModel> SlowActors<L> {
    /// Wraps `inner`, multiplying delays from/to any actor in `slow` by
    /// `factor`.
    pub fn new(inner: L, slow: Vec<ActorId>, factor: u64) -> SlowActors<L> {
        SlowActors {
            inner,
            slow,
            factor,
        }
    }

    /// Replaces the slow set (regime shift mid-run).
    pub fn set_slow(&mut self, slow: Vec<ActorId>) {
        self.slow = slow;
    }
}

impl<L: LatencyModel> LatencyModel for SlowActors<L> {
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos {
        let base = self.inner.sample(from, to, now, rng);
        if self.slow.contains(&from) || self.slow.contains(&to) {
            base.saturating_mul(self.factor)
        } else {
            base
        }
    }
}

/// Decorator that delays every message matching a predicate until at least
/// a release time — an *adversary* in the formal sense: it controls
/// scheduling but must keep links reliable (messages are delayed, never
/// dropped). Used to stall a Paxos leader (E9) or force stale reads.
pub struct TargetedDelay<L> {
    inner: L,
    /// `(from, to) -> should delay`.
    pred: Box<dyn Fn(ActorId, ActorId) -> bool + Send>,
    /// Messages matching the predicate are held until this virtual time.
    release_at: Time,
}

impl<L: LatencyModel> TargetedDelay<L> {
    /// Wraps `inner`; messages with `pred(from, to)` are delivered no
    /// earlier than `release_at`.
    pub fn new(
        inner: L,
        pred: impl Fn(ActorId, ActorId) -> bool + Send + 'static,
        release_at: Time,
    ) -> TargetedDelay<L> {
        TargetedDelay {
            inner,
            pred: Box::new(pred),
            release_at,
        }
    }
}

impl<L: LatencyModel> LatencyModel for TargetedDelay<L> {
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos {
        let base = self.inner.sample(from, to, now, rng);
        if (self.pred)(from, to) {
            let held = self.release_at - now; // saturating
            base.max(held)
        } else {
            base
        }
    }
}

/// Decorator implementing a temporary partition between two groups: until
/// `heal_at`, cross-group messages are held back; after healing everything
/// flows normally. Reliability is preserved (the model never drops).
pub struct HealingPartition<L> {
    inner: L,
    group_a: Vec<ActorId>,
    heal_at: Time,
}

impl<L: LatencyModel> HealingPartition<L> {
    /// Partitions `group_a` from everyone else until `heal_at`.
    pub fn new(inner: L, group_a: Vec<ActorId>, heal_at: Time) -> HealingPartition<L> {
        HealingPartition {
            inner,
            group_a,
            heal_at,
        }
    }
}

impl<L: LatencyModel> LatencyModel for HealingPartition<L> {
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos {
        let base = self.inner.sample(from, to, now, rng);
        let crosses = self.group_a.contains(&from) != self.group_a.contains(&to);
        if crosses && now < self.heal_at {
            base.max(self.heal_at - now)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn a(i: usize) -> ActorId {
        ActorId(i)
    }

    #[test]
    fn constant_latency() {
        let mut m = ConstantLatency(5);
        assert_eq!(m.sample(a(0), a(1), Time::ZERO, &mut rng()), 5);
    }

    #[test]
    fn uniform_bounds() {
        let mut m = UniformLatency::new(10, 20);
        let mut r = rng();
        for _ in 0..100 {
            let d = m.sample(a(0), a(1), Time::ZERO, &mut r);
            assert!((10..=20).contains(&d));
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let mut m1 = UniformLatency::new(0, 1000);
        let mut m2 = UniformLatency::new(0, 1000);
        let (mut r1, mut r2) = (rng(), rng());
        for _ in 0..50 {
            assert_eq!(
                m1.sample(a(0), a(1), Time::ZERO, &mut r1),
                m2.sample(a(0), a(1), Time::ZERO, &mut r2)
            );
        }
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn uniform_bad_bounds() {
        let _ = UniformLatency::new(5, 1);
    }

    #[test]
    fn wan_matrix_regions() {
        // Two regions, 40 ms apart; actors 0,1 in region 0, actor 2 in 1.
        let m = vec![vec![0, 40 * MILLI], vec![40 * MILLI, 0]];
        let mut wan = WanMatrix::new(m, vec![0, 0, 1], 0.0);
        let mut r = rng();
        let cross = wan.sample(a(0), a(2), Time::ZERO, &mut r);
        let local = wan.sample(a(0), a(1), Time::ZERO, &mut r);
        assert_eq!(cross, 40 * MILLI);
        assert!(local < cross);
        wan.set_region(a(2), 0);
        let now_local = wan.sample(a(0), a(2), Time::ZERO, &mut r);
        assert!(now_local < cross);
    }

    #[test]
    fn slow_actors_multiply() {
        let mut m = SlowActors::new(ConstantLatency(10), vec![a(1)], 10);
        let mut r = rng();
        assert_eq!(m.sample(a(0), a(1), Time::ZERO, &mut r), 100);
        assert_eq!(m.sample(a(1), a(0), Time::ZERO, &mut r), 100);
        assert_eq!(m.sample(a(0), a(2), Time::ZERO, &mut r), 10);
        m.set_slow(vec![]);
        assert_eq!(m.sample(a(0), a(1), Time::ZERO, &mut r), 10);
    }

    #[test]
    fn targeted_delay_holds_until_release() {
        let release = Time(1000);
        let mut m = TargetedDelay::new(ConstantLatency(10), |f, _| f == ActorId(0), release);
        let mut r = rng();
        // At t=0, messages from a0 are held ~1000ns.
        assert_eq!(m.sample(a(0), a(1), Time::ZERO, &mut r), 1000);
        // Other senders unaffected.
        assert_eq!(m.sample(a(1), a(0), Time::ZERO, &mut r), 10);
        // After release, no extra delay.
        assert_eq!(m.sample(a(0), a(1), Time(2000), &mut r), 10);
    }

    #[test]
    fn partition_heals() {
        let mut m = HealingPartition::new(ConstantLatency(10), vec![a(0)], Time(500));
        let mut r = rng();
        assert_eq!(m.sample(a(0), a(1), Time::ZERO, &mut r), 500);
        assert_eq!(m.sample(a(1), a(2), Time::ZERO, &mut r), 10); // same side
        assert_eq!(m.sample(a(0), a(1), Time(600), &mut r), 10); // healed
    }
}

/// Decorator that makes every link FIFO: per (from, to) pair, deliveries
/// never overtake. The base model still decides raw delays; this clamps
/// each arrival to be no earlier than the previous arrival on the link.
/// The paper's model (§II) does not assume FIFO links, so the default
/// everywhere is non-FIFO; this exists to measure how much protocol
/// behaviour depends on reordering (none, for safety — that is the point).
///
/// Relation to [`BandwidthLinks`]: that wrapper serializes *transmissions*
/// at the sender (arrivals can still reorder under jittered propagation),
/// while this decorator forces FIFO *arrivals* outright with no bandwidth
/// semantics. Compose them — `FifoLinks` inside, as the propagation model —
/// to get both.
pub struct FifoLinks<L> {
    inner: L,
    last_arrival: std::collections::HashMap<(ActorId, ActorId), Time>,
}

impl<L: LatencyModel> FifoLinks<L> {
    /// Wraps `inner` with per-link FIFO enforcement.
    pub fn new(inner: L) -> FifoLinks<L> {
        FifoLinks {
            inner,
            last_arrival: std::collections::HashMap::new(),
        }
    }
}

impl<L: LatencyModel> LatencyModel for FifoLinks<L> {
    fn sample(&mut self, from: ActorId, to: ActorId, now: Time, rng: &mut StdRng) -> Nanos {
        let raw = self.inner.sample(from, to, now, rng);
        let arrival = now + raw;
        let entry = self.last_arrival.entry((from, to)).or_insert(Time::ZERO);
        let fifo_arrival = if arrival > *entry {
            arrival
        } else {
            *entry + 1
        };
        *entry = fifo_arrival;
        fifo_arrival - now
    }
}

#[cfg(test)]
mod bandwidth_tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn a(i: usize) -> ActorId {
        ActorId(i)
    }

    #[test]
    fn blanket_impl_is_pure_propagation() {
        let mut m = ConstantLatency(500);
        let d = m.delivery(a(0), a(1), Time::ZERO, 1 << 20, &mut rng());
        assert_eq!(d, Delivery::propagation_only(500));
        assert_eq!(d.total(), 500);
    }

    #[test]
    fn transmission_is_size_over_bandwidth() {
        let bw = BandwidthMatrix::uniform(3, 1_000_000); // 1 MB/s
        assert_eq!(bw.transmission_nanos(a(0), a(1), 1_000), MILLI);
        assert_eq!(bw.transmission_nanos(a(0), a(1), 0), 0);
        assert_eq!(bw.transmission_nanos(a(1), a(1), 1_000), 0, "self-send");
        let inf = BandwidthMatrix::unlimited(3);
        assert_eq!(inf.transmission_nanos(a(0), a(1), 1 << 30), 0);
    }

    #[test]
    fn unlimited_bandwidth_reproduces_latency_schedule() {
        let mut plain = UniformLatency::new(1, 10_000);
        let mut wrapped = BandwidthLinks::new(
            UniformLatency::new(1, 10_000),
            BandwidthMatrix::unlimited(4),
        );
        let (mut r1, mut r2) = (rng(), rng());
        for k in 0..100u64 {
            let p = plain.delivery(a(0), a(1), Time(k), 10_000, &mut r1);
            let w = wrapped.delivery(a(0), a(1), Time(k), 10_000, &mut r2);
            assert_eq!(p, w, "infinite bandwidth must be a no-op (k={k})");
        }
    }

    #[test]
    fn per_link_serialization_queues_behind_large_messages() {
        // 1 KB/ms links, zero propagation: a 10 KB message occupies the
        // link for 10 ms; a small message sent right after waits for it.
        let mut net =
            BandwidthLinks::new(ConstantLatency(0), BandwidthMatrix::uniform(3, 1_000_000));
        let big = net.delivery(a(0), a(1), Time::ZERO, 10_000, &mut rng());
        assert_eq!(big.queued, 0);
        assert_eq!(big.transmission, 10 * MILLI);
        let small = net.delivery(a(0), a(1), Time(1), 100, &mut rng());
        assert_eq!(small.queued, 10 * MILLI - 1, "must wait for the link");
        // A different link is idle.
        let other = net.delivery(a(0), a(2), Time(1), 100, &mut rng());
        assert_eq!(other.queued, 0);
        // The reverse direction is a separate link too.
        let reverse = net.delivery(a(1), a(0), Time(1), 100, &mut rng());
        assert_eq!(reverse.queued, 0);
    }

    #[test]
    fn shared_uplink_serializes_a_broadcast() {
        let mut net = BandwidthLinks::with_discipline(
            ConstantLatency(0),
            BandwidthMatrix::uniform(5, 1_000_000),
            LinkDiscipline::SharedUplink,
        );
        // Broadcast of four 1 KB messages from a0: the k-th waits k·1 ms.
        for k in 0..4u64 {
            let d = net.delivery(a(0), a(1 + k as usize), Time::ZERO, 1_000, &mut rng());
            assert_eq!(d.queued, k * MILLI, "message {k} must queue");
            assert_eq!(d.transmission, MILLI);
        }
        // Another sender's uplink is independent.
        let d = net.delivery(a(1), a(0), Time::ZERO, 1_000, &mut rng());
        assert_eq!(d.queued, 0);
    }

    #[test]
    fn bandwidth_links_preserve_fifo_per_link() {
        // Constant propagation + serialization ⇒ arrivals on a link never
        // overtake, whatever the message sizes.
        let mut net =
            BandwidthLinks::new(ConstantLatency(MILLI), BandwidthMatrix::uniform(2, 500_000));
        let mut r = rng();
        let mut last = 0u64;
        for k in 0..50u64 {
            let now = Time(k * 100);
            let bytes = if k % 3 == 0 { 20_000 } else { 50 };
            let d = net.delivery(a(0), a(1), now, bytes, &mut r);
            let arrival = now.nanos() + d.total();
            assert!(arrival >= last, "overtake at k={k}");
            last = arrival;
        }
    }

    #[test]
    fn matrix_regions_and_remap() {
        let mut bw = BandwidthMatrix::new(
            vec![vec![1_000_000, 100_000], vec![100_000, 1_000_000]],
            vec![0, 0, 1],
        );
        assert_eq!(bw.region(a(2)), 1);
        assert_eq!(bw.link_bandwidth(a(0), a(1)), 1_000_000);
        assert_eq!(bw.link_bandwidth(a(0), a(2)), 100_000);
        // Cross-region is 10× slower for the same payload.
        assert_eq!(
            bw.transmission_nanos(a(0), a(2), 1_000),
            10 * bw.transmission_nanos(a(0), a(1), 1_000)
        );
        bw.set_region(a(2), 0);
        assert_eq!(bw.link_bandwidth(a(0), a(2)), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = BandwidthMatrix::uniform(2, 0);
    }

    #[test]
    fn receive_off_is_the_default_and_changes_nothing() {
        // The equivalence pin for the off case: an explicit `Off` model and
        // a default-constructed one produce identical deliveries on a
        // workload that WOULD queue under `PerDownlink` (three senders
        // converging on one receiver).
        let mk = || {
            BandwidthLinks::new(
                UniformLatency::new(1, 2 * MILLI),
                BandwidthMatrix::uniform(4, 1_000_000),
            )
        };
        let mut plain = mk();
        let mut off = mk().with_receive_discipline(ReceiveDiscipline::Off);
        let (mut r1, mut r2) = (rng(), rng());
        for k in 0..60u64 {
            let from = a((k % 3) as usize);
            let p = plain.delivery(from, a(3), Time(k * 100), 5_000, &mut r1);
            let o = off.delivery(from, a(3), Time(k * 100), 5_000, &mut r2);
            assert_eq!(p, o, "receive-off diverged from the default (k={k})");
        }
        // And under `Off`, converging senders do NOT queue at the receiver:
        // two simultaneous 10 KB sends from different senders both arrive
        // after exactly their own transmission time.
        let mut net =
            BandwidthLinks::new(ConstantLatency(0), BandwidthMatrix::uniform(3, 1_000_000));
        let d1 = net.delivery(a(0), a(2), Time::ZERO, 10_000, &mut rng());
        let d2 = net.delivery(a(1), a(2), Time::ZERO, 10_000, &mut rng());
        assert_eq!(d1.queued, 0);
        assert_eq!(d2.queued, 0, "off-case must not serialize the downlink");
    }

    #[test]
    fn per_downlink_serializes_converging_arrivals() {
        // 1 KB/ms links, zero propagation: three 10 KB messages from three
        // different senders to one receiver. Uplinks are independent, so
        // sender-side adds nothing; the downlink drains them one at a time.
        let mut net =
            BandwidthLinks::new(ConstantLatency(0), BandwidthMatrix::uniform(4, 1_000_000))
                .with_receive_discipline(ReceiveDiscipline::PerDownlink);
        for k in 0..3u64 {
            let d = net.delivery(a(k as usize), a(3), Time::ZERO, 10_000, &mut rng());
            assert_eq!(d.transmission, 10 * MILLI);
            assert_eq!(d.queued, k * 10 * MILLI, "arrival {k} must drain in turn");
        }
        // A different receiver's downlink is independent.
        let d = net.delivery(a(0), a(2), Time::ZERO, 10_000, &mut rng());
        assert_eq!(d.queued, 0);
        // Unlimited bandwidth ⇒ zero transmission ⇒ the downlink never
        // engages: PerDownlink is a no-op on size-free schedules.
        let mut inf = BandwidthLinks::new(ConstantLatency(MILLI), BandwidthMatrix::unlimited(4))
            .with_receive_discipline(ReceiveDiscipline::PerDownlink);
        for k in 0..5 {
            let d = inf.delivery(a(k % 3), a(3), Time::ZERO, 1 << 20, &mut rng());
            assert_eq!(d, Delivery::propagation_only(MILLI));
        }
    }

    #[test]
    fn per_downlink_schedules_in_arrival_order_not_send_order() {
        // Heterogeneous propagation (the geo case): a far sender's message
        // is sent FIRST but arrives LAST. The near sender's message must
        // drain in the idle gap before the far reservation — no phantom
        // queueing — and a third message genuinely overlapping the far
        // drain still queues.
        let far = 200 * MILLI;
        let near = MILLI;
        let mut lat = WanMatrix::new(
            vec![vec![0, far, far], vec![far, 0, near], vec![far, near, 0]],
            vec![0, 1, 2],
            0.0,
        );
        lat.floor = 0; // exact delays for the arithmetic below
        let mut net = BandwidthLinks::new(lat, BandwidthMatrix::uniform(3, 1_000_000))
            .with_receive_discipline(ReceiveDiscipline::PerDownlink);
        // Far sender at t=0: 1 KB, tx 1 ms, prop 200 ms → drains [200, 201].
        let d_far = net.delivery(a(0), a(2), Time::ZERO, 1_000, &mut rng());
        assert_eq!(d_far.queued, 0);
        // Near sender at t=1 ms: 1 KB, tx 1 ms, prop 1 ms → ideal drain
        // [2, 3] — entirely inside the idle window before [200, 201].
        let d_near = net.delivery(a(1), a(2), Time(MILLI), 1_000, &mut rng());
        assert_eq!(
            d_near.queued, 0,
            "early arrival must not queue behind a later-arriving reservation"
        );
        // A message whose ideal drain coincides with the far one's queues.
        let d_clash = net.delivery(a(1), a(2), Time(199 * MILLI), 1_000, &mut rng());
        assert_eq!(d_clash.queued, MILLI, "overlapping drains must serialize");
    }

    #[test]
    fn per_downlink_respects_propagation_floor() {
        // A message cannot arrive before its propagation even on an idle
        // downlink, and a late-sent message queues only for the downlink
        // time still outstanding.
        let mut net = BandwidthLinks::new(
            ConstantLatency(5 * MILLI),
            BandwidthMatrix::uniform(3, 1_000_000),
        )
        .with_receive_discipline(ReceiveDiscipline::PerDownlink);
        let d1 = net.delivery(a(0), a(2), Time::ZERO, 10_000, &mut rng());
        // Arrival at 15 ms (10 tx + 5 prop); downlink busy [5, 15] ms.
        assert_eq!(d1.queued, 0);
        // Sent at 9 ms from another sender, 1 KB: unscheduled arrival would
        // be 9 + 1 + 5 = 15 ms with rx_start 14 < 15 → drains [15, 16].
        let d2 = net.delivery(a(1), a(2), Time(9 * MILLI), 1_000, &mut rng());
        assert_eq!(d2.transmission, MILLI);
        assert_eq!(d2.queued, MILLI, "must wait for the first drain to finish");
    }
}

#[cfg(test)]
mod fifo_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn arrivals_never_overtake() {
        let mut m = FifoLinks::new(UniformLatency::new(1, 1_000_000));
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = (ActorId(0), ActorId(1));
        let mut last = 0u64;
        for k in 0..200u64 {
            let now = Time(k); // sends 1 ns apart
            let d = m.sample(a, b, now, &mut rng);
            let arrival = now.nanos() + d;
            assert!(arrival > last, "message overtook at k={k}");
            last = arrival;
        }
        // Other links are independent.
        let d = m.sample(b, a, Time(0), &mut rng);
        assert!(d >= 1);
    }
}
