//! Simulation metrics: message, byte, event, and per-link accounting.

use std::collections::BTreeMap;

use crate::actor::ActorId;
use crate::time::{Nanos, Time};

/// Counters accumulated by a [`crate::World`] run (and snapshotted from a
/// [`crate::ThreadedSystem`]).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total events processed (deliveries + timers + crashes).
    pub events_processed: u64,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Bytes handed to the network (sum of [`crate::Message::wire_size`]
    /// over every send).
    pub bytes_sent: u64,
    /// Messages delivered to a live actor.
    pub messages_delivered: u64,
    /// Messages dropped because the destination had crashed.
    pub messages_dropped_crashed: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Per message-kind send counts.
    pub sent_by_kind: BTreeMap<&'static str, u64>,
    /// Per message-kind byte totals.
    pub bytes_by_kind: BTreeMap<&'static str, u64>,
    /// Per directed-link byte totals (`(from, to)` → bytes sent).
    pub bytes_by_link: BTreeMap<(ActorId, ActorId), u64>,
    /// Per directed-link transmission time (`(from, to)` → nanoseconds the
    /// link spent actually transmitting). Zero under pure-propagation
    /// models and in the threaded runtime (no virtual time).
    pub link_busy: BTreeMap<(ActorId, ActorId), Nanos>,
    /// Latest virtual time reached.
    pub last_time: Time,
}

impl Metrics {
    /// Records a send of a message with the given kind label, wire size,
    /// endpoints, and transmission time.
    pub(crate) fn record_send(
        &mut self,
        kind: &'static str,
        bytes: usize,
        from: ActorId,
        to: ActorId,
        transmission: Nanos,
    ) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        *self.sent_by_kind.entry(kind).or_insert(0) += 1;
        *self.bytes_by_kind.entry(kind).or_insert(0) += bytes as u64;
        *self.bytes_by_link.entry((from, to)).or_insert(0) += bytes as u64;
        if transmission > 0 {
            *self.link_busy.entry((from, to)).or_insert(0) += transmission;
        }
    }

    /// Messages sent with a specific kind label.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.sent_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Bytes sent with a specific kind label.
    pub fn bytes_of_kind(&self, kind: &str) -> u64 {
        self.bytes_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Mean bytes per sent message of a specific kind (0 if none sent).
    pub fn mean_bytes_of_kind(&self, kind: &str) -> f64 {
        let n = self.sent_of_kind(kind);
        if n == 0 {
            0.0
        } else {
            self.bytes_of_kind(kind) as f64 / n as f64
        }
    }

    /// Bytes sent on the directed link `from → to`.
    pub fn bytes_on_link(&self, from: ActorId, to: ActorId) -> u64 {
        self.bytes_by_link.get(&(from, to)).copied().unwrap_or(0)
    }

    /// The directed link that carried the most bytes, if any traffic flowed.
    pub fn busiest_link(&self) -> Option<((ActorId, ActorId), u64)> {
        self.bytes_by_link
            .iter()
            .max_by_key(|(link, bytes)| (**bytes, std::cmp::Reverse(**link)))
            .map(|(l, b)| (*l, *b))
    }

    /// Fraction of the run the `from → to` link spent transmitting
    /// (`link_busy / last_time`; 0 before any time has passed). Under
    /// pure-propagation models this is always 0 — utilization only becomes
    /// meaningful once a bandwidth-aware [`crate::NetworkModel`] charges
    /// transmission time.
    pub fn link_utilization(&self, from: ActorId, to: ActorId) -> f64 {
        let elapsed = self.last_time.nanos();
        if elapsed == 0 {
            return 0.0;
        }
        let busy = self.link_busy.get(&(from, to)).copied().unwrap_or(0);
        busy as f64 / elapsed as f64
    }

    /// The highest per-link utilization across all links (0 if no
    /// transmission time was charged).
    pub fn max_link_utilization(&self) -> f64 {
        self.link_busy
            .keys()
            .map(|&(f, t)| self.link_utilization(f, t))
            .fold(0.0, f64::max)
    }

    /// Fraction of the run actor `from`'s *uplink* spent transmitting:
    /// busy time summed over every outgoing link. This is the right
    /// saturation measure under [`crate::LinkDiscipline::SharedUplink`],
    /// where all outgoing transmissions serialize on one pipe —
    /// per-(from, to) utilization splits that pipe's busy time across
    /// destinations and understates it. Transmission time is charged at
    /// send, so a saturated uplink with messages still queued when the
    /// run ends can report slightly above 1.0.
    pub fn uplink_utilization(&self, from: ActorId) -> f64 {
        let elapsed = self.last_time.nanos();
        if elapsed == 0 {
            return 0.0;
        }
        let busy: u128 = self
            .link_busy
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(_, &b)| b as u128)
            .sum();
        busy as f64 / elapsed as f64
    }

    /// The highest uplink utilization across all senders.
    pub fn max_uplink_utilization(&self) -> f64 {
        self.link_busy
            .keys()
            .map(|&(f, _)| self.uplink_utilization(f))
            .fold(0.0, f64::max)
    }

    /// The full `n × n` byte matrix (`matrix[i][j]` = bytes `a_i → a_j`),
    /// for reporting.
    pub fn link_byte_matrix(&self, n: usize) -> Vec<Vec<u64>> {
        let mut m = vec![vec![0u64; n]; n];
        for (&(from, to), &bytes) in &self.bytes_by_link {
            if from.index() < n && to.index() < n {
                m[from.index()][to.index()] = bytes;
            }
        }
        m
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "events={} sent={} bytes={} delivered={} dropped={} timers={} t_end={}",
            self.events_processed,
            self.messages_sent,
            self.bytes_sent,
            self.messages_delivered,
            self.messages_dropped_crashed,
            self.timers_fired,
            self.last_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> ActorId {
        ActorId(i)
    }

    #[test]
    fn record_and_query() {
        let mut m = Metrics::default();
        m.record_send("RC", 24, a(0), a(1), 0);
        m.record_send("RC", 36, a(0), a(2), 0);
        m.record_send("T", 100, a(1), a(0), 0);
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.bytes_sent, 160);
        assert_eq!(m.sent_of_kind("RC"), 2);
        assert_eq!(m.bytes_of_kind("RC"), 60);
        assert_eq!(m.mean_bytes_of_kind("RC"), 30.0);
        assert_eq!(m.sent_of_kind("T"), 1);
        assert_eq!(m.sent_of_kind("nope"), 0);
        assert_eq!(m.bytes_of_kind("nope"), 0);
        assert_eq!(m.mean_bytes_of_kind("nope"), 0.0);
        assert!(m.summary().contains("sent=3"));
        assert!(m.summary().contains("bytes=160"));
    }

    #[test]
    fn per_link_accounting() {
        let mut m = Metrics::default();
        m.record_send("R", 1_000, a(0), a(1), 100);
        m.record_send("R", 3_000, a(0), a(1), 300);
        m.record_send("W", 500, a(1), a(0), 50);
        assert_eq!(m.bytes_on_link(a(0), a(1)), 4_000);
        assert_eq!(m.bytes_on_link(a(1), a(0)), 500);
        assert_eq!(m.bytes_on_link(a(0), a(2)), 0);
        assert_eq!(m.busiest_link(), Some(((a(0), a(1)), 4_000)));
        let mat = m.link_byte_matrix(2);
        assert_eq!(mat, vec![vec![0, 4_000], vec![500, 0]]);
        // Utilization: 400 ns busy over a 1000 ns run.
        m.last_time = Time(1_000);
        assert_eq!(m.link_utilization(a(0), a(1)), 0.4);
        assert_eq!(m.link_utilization(a(2), a(0)), 0.0);
        assert_eq!(m.max_link_utilization(), 0.4);
        // A shared uplink's saturation is the *sum* over destinations.
        m.record_send("R", 1_000, a(0), a(2), 500);
        assert_eq!(m.link_utilization(a(0), a(2)), 0.5);
        assert_eq!(m.uplink_utilization(a(0)), 0.9);
        assert_eq!(m.uplink_utilization(a(2)), 0.0);
        assert_eq!(m.max_uplink_utilization(), 0.9);
    }

    #[test]
    fn utilization_zero_without_time_or_transmission() {
        let mut m = Metrics::default();
        assert_eq!(m.link_utilization(a(0), a(1)), 0.0);
        m.record_send("R", 100, a(0), a(1), 0);
        m.last_time = Time(1_000);
        assert_eq!(m.max_link_utilization(), 0.0, "no transmission charged");
    }
}
