//! Simulation metrics: message, byte, and event accounting.

use std::collections::BTreeMap;

use crate::time::Time;

/// Counters accumulated by a [`crate::World`] run (and snapshotted from a
/// [`crate::ThreadedSystem`]).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total events processed (deliveries + timers + crashes).
    pub events_processed: u64,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Bytes handed to the network (sum of [`crate::Message::wire_size`]
    /// over every send).
    pub bytes_sent: u64,
    /// Messages delivered to a live actor.
    pub messages_delivered: u64,
    /// Messages dropped because the destination had crashed.
    pub messages_dropped_crashed: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Per message-kind send counts.
    pub sent_by_kind: BTreeMap<&'static str, u64>,
    /// Per message-kind byte totals.
    pub bytes_by_kind: BTreeMap<&'static str, u64>,
    /// Latest virtual time reached.
    pub last_time: Time,
}

impl Metrics {
    /// Records a send of a message with the given kind label and wire size.
    pub(crate) fn record_send(&mut self, kind: &'static str, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        *self.sent_by_kind.entry(kind).or_insert(0) += 1;
        *self.bytes_by_kind.entry(kind).or_insert(0) += bytes as u64;
    }

    /// Messages sent with a specific kind label.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.sent_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Bytes sent with a specific kind label.
    pub fn bytes_of_kind(&self, kind: &str) -> u64 {
        self.bytes_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Mean bytes per sent message of a specific kind (0 if none sent).
    pub fn mean_bytes_of_kind(&self, kind: &str) -> f64 {
        let n = self.sent_of_kind(kind);
        if n == 0 {
            0.0
        } else {
            self.bytes_of_kind(kind) as f64 / n as f64
        }
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "events={} sent={} bytes={} delivered={} dropped={} timers={} t_end={}",
            self.events_processed,
            self.messages_sent,
            self.bytes_sent,
            self.messages_delivered,
            self.messages_dropped_crashed,
            self.timers_fired,
            self.last_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut m = Metrics::default();
        m.record_send("RC", 24);
        m.record_send("RC", 36);
        m.record_send("T", 100);
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.bytes_sent, 160);
        assert_eq!(m.sent_of_kind("RC"), 2);
        assert_eq!(m.bytes_of_kind("RC"), 60);
        assert_eq!(m.mean_bytes_of_kind("RC"), 30.0);
        assert_eq!(m.sent_of_kind("T"), 1);
        assert_eq!(m.sent_of_kind("nope"), 0);
        assert_eq!(m.bytes_of_kind("nope"), 0);
        assert_eq!(m.mean_bytes_of_kind("nope"), 0.0);
        assert!(m.summary().contains("sent=3"));
        assert!(m.summary().contains("bytes=160"));
    }
}
