//! Simulation metrics: message, byte, event, and per-link accounting.
//!
//! Besides the classic counters, [`Metrics`] keeps three per-directed-link
//! matrices — bytes ([`Metrics::bytes_on_link`]), transmission busy time
//! ([`Metrics::link_utilization`]), and delivery-delay components
//! ([`Metrics::link_delay`], split into queueing / transmission /
//! propagation) — which together are the observation side of the
//! observe→decide→reassign loop: placement policies consume them to decide
//! where weight should live.

use std::collections::BTreeMap;

use crate::actor::ActorId;
use crate::network::Delivery;
use crate::time::{Nanos, Time};

/// Accumulated delivery-delay components of one directed link, recorded at
/// send time from the [`Delivery`] the network model decided. The split
/// matters to placement policies: `propagation` is the geometry of the
/// topology (what a latency-greedy policy should act on), while `queued`
/// is contention — cross traffic or protocol bursts occupying the link —
/// which only a utilization-aware policy reacts to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkDelayStat {
    /// Messages whose delay contributed to the sums.
    pub count: u64,
    /// Total time spent waiting for the link to free up.
    pub queued: Nanos,
    /// Total transmission time (`wire_size / bandwidth`).
    pub transmission: Nanos,
    /// Total propagation delay.
    pub propagation: Nanos,
}

impl LinkDelayStat {
    /// Mean propagation delay in nanoseconds (`None` before any sample).
    pub fn mean_propagation(&self) -> Option<f64> {
        (self.count > 0).then(|| self.propagation as f64 / self.count as f64)
    }

    /// Mean queueing delay in nanoseconds (`None` before any sample).
    pub fn mean_queued(&self) -> Option<f64> {
        (self.count > 0).then(|| self.queued as f64 / self.count as f64)
    }

    /// Mean total delivery delay in nanoseconds (`None` before any sample).
    pub fn mean_total(&self) -> Option<f64> {
        (self.count > 0).then(|| {
            (self.queued + self.transmission + self.propagation) as f64 / self.count as f64
        })
    }
}

/// Counters accumulated by a [`crate::World`] run (and snapshotted from a
/// [`crate::ThreadedSystem`]).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total events processed (deliveries + timers + crashes).
    pub events_processed: u64,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Bytes handed to the network (sum of [`crate::Message::wire_size`]
    /// over every send).
    pub bytes_sent: u64,
    /// Messages delivered to a live actor.
    pub messages_delivered: u64,
    /// Messages dropped because the destination had crashed.
    pub messages_dropped_crashed: u64,
    /// Actors rebuilt and rebooted after a crash (fault injection).
    pub restarts: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Per message-kind send counts.
    pub sent_by_kind: BTreeMap<&'static str, u64>,
    /// Per message-kind byte totals.
    pub bytes_by_kind: BTreeMap<&'static str, u64>,
    /// Per-object byte totals (object key → bytes), fed by
    /// [`crate::Message::object_key`]. Only messages that name an object
    /// are attributed; shared traffic (reassignment, refreshes) is not.
    pub bytes_by_object: BTreeMap<u64, u64>,
    /// Per-object send counts (object key → messages).
    pub msgs_by_object: BTreeMap<u64, u64>,
    /// Per directed-link byte totals (`(from, to)` → bytes sent).
    pub bytes_by_link: BTreeMap<(ActorId, ActorId), u64>,
    /// Per directed-link transmission time (`(from, to)` → nanoseconds the
    /// link spent actually transmitting). Zero under pure-propagation
    /// models and in the threaded runtime (no virtual time).
    pub link_busy: BTreeMap<(ActorId, ActorId), Nanos>,
    /// Per directed-link message counts (`(from, to)` → messages sent).
    /// Tracked by both runtimes; with [`Metrics::bytes_by_link`] it gives
    /// placement policies a traffic-share signal even where no virtual
    /// time exists.
    pub msgs_by_link: BTreeMap<(ActorId, ActorId), u64>,
    /// Per directed-link delivery-delay accounting (queueing, transmission,
    /// propagation — recorded at send from the decided [`Delivery`]).
    /// Empty in the threaded runtime, which has no virtual time.
    pub delay_by_link: BTreeMap<(ActorId, ActorId), LinkDelayStat>,
    /// Named protocol counters fed by [`crate::Context::record_counter`] —
    /// e.g. the storage layer's fast-path read hits/misses. Tracked by all
    /// three runtimes.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named value histograms (`value → occurrences`) fed by
    /// [`crate::Context::record_sample`] — e.g. the phase-2 write-back
    /// fanout distribution. Tracked by all three runtimes.
    pub samples: BTreeMap<&'static str, BTreeMap<u64, u64>>,
    /// Latest virtual time reached.
    pub last_time: Time,
}

impl Metrics {
    /// Records a send of a message with the given kind label, wire size,
    /// endpoints, and decided delivery components. Called by the runtimes
    /// on every send; public so harnesses and tests can build synthetic
    /// observation matrices for placement policies.
    pub fn record_send(
        &mut self,
        kind: &'static str,
        bytes: usize,
        from: ActorId,
        to: ActorId,
        delivery: Delivery,
    ) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        *self.sent_by_kind.entry(kind).or_insert(0) += 1;
        *self.bytes_by_kind.entry(kind).or_insert(0) += bytes as u64;
        *self.bytes_by_link.entry((from, to)).or_insert(0) += bytes as u64;
        *self.msgs_by_link.entry((from, to)).or_insert(0) += 1;
        if delivery.transmission > 0 {
            *self.link_busy.entry((from, to)).or_insert(0) += delivery.transmission;
        }
        let stat = self.delay_by_link.entry((from, to)).or_default();
        stat.count += 1;
        stat.queued = stat.queued.saturating_add(delivery.queued);
        stat.transmission = stat.transmission.saturating_add(delivery.transmission);
        stat.propagation = stat.propagation.saturating_add(delivery.propagation);
    }

    /// Attributes a send to an object (keyed register). The runtimes call
    /// this alongside [`Metrics::record_send`] whenever
    /// [`crate::Message::object_key`] names one.
    pub fn record_object(&mut self, object: u64, bytes: usize) {
        *self.bytes_by_object.entry(object).or_insert(0) += bytes as u64;
        *self.msgs_by_object.entry(object).or_insert(0) += 1;
    }

    /// Bumps a named protocol counter (the runtimes route
    /// [`crate::Context::record_counter`] effects here).
    pub fn record_counter(&mut self, key: &'static str, add: u64) {
        *self.counters.entry(key).or_insert(0) += add;
    }

    /// Records one observation into a named histogram (the runtimes route
    /// [`crate::Context::record_sample`] effects here).
    pub fn record_sample(&mut self, key: &'static str, value: u64) {
        *self
            .samples
            .entry(key)
            .or_default()
            .entry(value)
            .or_insert(0) += 1;
    }

    /// The value of a named protocol counter (0 if never bumped).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The histogram recorded under `key` (`value → occurrences`), if any
    /// sample landed.
    pub fn sample_hist(&self, key: &str) -> Option<&BTreeMap<u64, u64>> {
        self.samples.get(key)
    }

    /// Total observations recorded under `key`.
    pub fn sample_count(&self, key: &str) -> u64 {
        self.samples.get(key).map(|h| h.values().sum()).unwrap_or(0)
    }

    /// Mean of the observations recorded under `key` (0 if none).
    pub fn sample_mean(&self, key: &str) -> f64 {
        let Some(h) = self.samples.get(key) else {
            return 0.0;
        };
        let n: u64 = h.values().sum();
        if n == 0 {
            return 0.0;
        }
        let sum: u128 = h.iter().map(|(v, c)| *v as u128 * *c as u128).sum();
        sum as f64 / n as f64
    }

    /// Bytes attributed to an object key.
    pub fn bytes_of_object(&self, object: u64) -> u64 {
        self.bytes_by_object.get(&object).copied().unwrap_or(0)
    }

    /// Messages attributed to an object key.
    pub fn msgs_of_object(&self, object: u64) -> u64 {
        self.msgs_by_object.get(&object).copied().unwrap_or(0)
    }

    /// Mean bytes per attributed message of an object key (0 if none).
    pub fn mean_bytes_of_object(&self, object: u64) -> f64 {
        let n = self.msgs_of_object(object);
        if n == 0 {
            0.0
        } else {
            self.bytes_of_object(object) as f64 / n as f64
        }
    }

    /// Messages sent with a specific kind label.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.sent_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Bytes sent with a specific kind label.
    pub fn bytes_of_kind(&self, kind: &str) -> u64 {
        self.bytes_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Mean bytes per sent message of a specific kind (0 if none sent).
    pub fn mean_bytes_of_kind(&self, kind: &str) -> f64 {
        let n = self.sent_of_kind(kind);
        if n == 0 {
            0.0
        } else {
            self.bytes_of_kind(kind) as f64 / n as f64
        }
    }

    /// Bytes sent on the directed link `from → to`.
    pub fn bytes_on_link(&self, from: ActorId, to: ActorId) -> u64 {
        self.bytes_by_link.get(&(from, to)).copied().unwrap_or(0)
    }

    /// The directed link that carried the most bytes, if any traffic flowed.
    pub fn busiest_link(&self) -> Option<((ActorId, ActorId), u64)> {
        self.bytes_by_link
            .iter()
            .max_by_key(|(link, bytes)| (**bytes, std::cmp::Reverse(**link)))
            .map(|(l, b)| (*l, *b))
    }

    /// Fraction of the run the `from → to` link spent transmitting
    /// (`link_busy / last_time`; 0 before any time has passed). Under
    /// pure-propagation models this is always 0 — utilization only becomes
    /// meaningful once a bandwidth-aware [`crate::NetworkModel`] charges
    /// transmission time.
    pub fn link_utilization(&self, from: ActorId, to: ActorId) -> f64 {
        let elapsed = self.last_time.nanos();
        if elapsed == 0 {
            return 0.0;
        }
        let busy = self.link_busy.get(&(from, to)).copied().unwrap_or(0);
        busy as f64 / elapsed as f64
    }

    /// The highest per-link utilization across all links (0 if no
    /// transmission time was charged).
    pub fn max_link_utilization(&self) -> f64 {
        self.link_busy
            .keys()
            .map(|&(f, t)| self.link_utilization(f, t))
            .fold(0.0, f64::max)
    }

    /// Fraction of the run actor `from`'s *uplink* spent transmitting:
    /// busy time summed over every outgoing link. This is the right
    /// saturation measure under [`crate::LinkDiscipline::SharedUplink`],
    /// where all outgoing transmissions serialize on one pipe —
    /// per-(from, to) utilization splits that pipe's busy time across
    /// destinations and understates it. Transmission time is charged at
    /// send, so a saturated uplink with messages still queued when the
    /// run ends can report slightly above 1.0.
    pub fn uplink_utilization(&self, from: ActorId) -> f64 {
        let elapsed = self.last_time.nanos();
        if elapsed == 0 {
            return 0.0;
        }
        let busy: u128 = self
            .link_busy
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(_, &b)| b as u128)
            .sum();
        busy as f64 / elapsed as f64
    }

    /// The highest uplink utilization across all senders.
    pub fn max_uplink_utilization(&self) -> f64 {
        self.link_busy
            .keys()
            .map(|&(f, _)| self.uplink_utilization(f))
            .fold(0.0, f64::max)
    }

    /// The full `n × n` byte matrix (`matrix[i][j]` = bytes `a_i → a_j`),
    /// for reporting.
    pub fn link_byte_matrix(&self, n: usize) -> Vec<Vec<u64>> {
        let mut m = vec![vec![0u64; n]; n];
        for (&(from, to), &bytes) in &self.bytes_by_link {
            if from.index() < n && to.index() < n {
                m[from.index()][to.index()] = bytes;
            }
        }
        m
    }

    /// Delay accounting of the directed link `from → to`, if any message
    /// was sent on it.
    pub fn link_delay(&self, from: ActorId, to: ActorId) -> Option<&LinkDelayStat> {
        self.delay_by_link.get(&(from, to))
    }

    /// Mean observed *propagation* delay on `from → to`, nanoseconds —
    /// the topology signal, free of contention.
    pub fn mean_link_propagation(&self, from: ActorId, to: ActorId) -> Option<f64> {
        self.link_delay(from, to).and_then(|s| s.mean_propagation())
    }

    /// Mean observed *queueing* delay on `from → to`, nanoseconds — the
    /// contention signal (cross traffic or protocol bursts holding the
    /// link).
    pub fn mean_link_queueing(&self, from: ActorId, to: ActorId) -> Option<f64> {
        self.link_delay(from, to).and_then(|s| s.mean_queued())
    }

    /// Mean observed round-trip propagation between two actors: mean
    /// one-way `a → b` plus mean one-way `b → a`. `None` until both
    /// directions carried traffic.
    pub fn mean_link_rtt(&self, a: ActorId, b: ActorId) -> Option<f64> {
        Some(self.mean_link_propagation(a, b)? + self.mean_link_propagation(b, a)?)
    }

    /// Messages sent on the directed link `from → to`.
    pub fn msgs_on_link(&self, from: ActorId, to: ActorId) -> u64 {
        self.msgs_by_link.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Bytes sent on links touching `a` (either direction) — the
    /// traffic-share signal placement policies fall back to where no
    /// transmission time is charged (pure-propagation models, threaded
    /// runtime).
    pub fn incident_bytes(&self, a: ActorId) -> u64 {
        self.bytes_by_link
            .iter()
            .filter(|((f, t), _)| *f == a || *t == a)
            .map(|(_, &b)| b)
            .sum()
    }

    /// The counters accumulated *since* `baseline` was snapshotted: every
    /// total, per-kind, per-link, per-object, and delay tally is the
    /// component-wise difference, and `last_time` becomes the window
    /// *length* — so ratio queries ([`Metrics::link_utilization`],
    /// [`Metrics::uplink_utilization`]) read as utilization over the
    /// window, not over the whole run.
    ///
    /// This is what lets an observe→decide loop re-decide mid-run on fresh
    /// evidence: a regime shift is invisible in cumulative means (the old
    /// regime's samples dilute the new ones) but obvious in a window.
    /// `baseline` must be an earlier snapshot of the same run; counters
    /// saturate at zero rather than underflow.
    pub fn since(&self, baseline: &Metrics) -> Metrics {
        fn sub_map<K: Ord + Copy>(
            new: &BTreeMap<K, u64>,
            old: &BTreeMap<K, u64>,
        ) -> BTreeMap<K, u64> {
            new.iter()
                .map(|(k, v)| (*k, v.saturating_sub(old.get(k).copied().unwrap_or(0))))
                .collect()
        }
        let samples = self
            .samples
            .iter()
            .map(|(k, h)| {
                let empty = BTreeMap::new();
                let old = baseline.samples.get(k).unwrap_or(&empty);
                (*k, sub_map(h, old))
            })
            .collect();
        let delay_by_link = self
            .delay_by_link
            .iter()
            .map(|(k, s)| {
                let o = baseline.delay_by_link.get(k).copied().unwrap_or_default();
                (
                    *k,
                    LinkDelayStat {
                        count: s.count.saturating_sub(o.count),
                        queued: s.queued.saturating_sub(o.queued),
                        transmission: s.transmission.saturating_sub(o.transmission),
                        propagation: s.propagation.saturating_sub(o.propagation),
                    },
                )
            })
            .collect();
        Metrics {
            events_processed: self
                .events_processed
                .saturating_sub(baseline.events_processed),
            messages_sent: self.messages_sent.saturating_sub(baseline.messages_sent),
            bytes_sent: self.bytes_sent.saturating_sub(baseline.bytes_sent),
            messages_delivered: self
                .messages_delivered
                .saturating_sub(baseline.messages_delivered),
            messages_dropped_crashed: self
                .messages_dropped_crashed
                .saturating_sub(baseline.messages_dropped_crashed),
            restarts: self.restarts.saturating_sub(baseline.restarts),
            timers_fired: self.timers_fired.saturating_sub(baseline.timers_fired),
            sent_by_kind: sub_map(&self.sent_by_kind, &baseline.sent_by_kind),
            bytes_by_kind: sub_map(&self.bytes_by_kind, &baseline.bytes_by_kind),
            bytes_by_object: sub_map(&self.bytes_by_object, &baseline.bytes_by_object),
            msgs_by_object: sub_map(&self.msgs_by_object, &baseline.msgs_by_object),
            bytes_by_link: sub_map(&self.bytes_by_link, &baseline.bytes_by_link),
            link_busy: sub_map(&self.link_busy, &baseline.link_busy),
            msgs_by_link: sub_map(&self.msgs_by_link, &baseline.msgs_by_link),
            counters: sub_map(&self.counters, &baseline.counters),
            samples,
            delay_by_link,
            last_time: Time(
                self.last_time
                    .nanos()
                    .saturating_sub(baseline.last_time.nanos()),
            ),
        }
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "events={} sent={} bytes={} delivered={} dropped={} timers={} t_end={}",
            self.events_processed,
            self.messages_sent,
            self.bytes_sent,
            self.messages_delivered,
            self.messages_dropped_crashed,
            self.timers_fired,
            self.last_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> ActorId {
        ActorId(i)
    }

    /// A delivery that only charges transmission time (the legacy shape of
    /// the accounting tests).
    fn tx(transmission: Nanos) -> Delivery {
        Delivery {
            queued: 0,
            transmission,
            propagation: 0,
        }
    }

    #[test]
    fn record_and_query() {
        let mut m = Metrics::default();
        m.record_send("RC", 24, a(0), a(1), tx(0));
        m.record_send("RC", 36, a(0), a(2), tx(0));
        m.record_send("T", 100, a(1), a(0), tx(0));
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.bytes_sent, 160);
        assert_eq!(m.sent_of_kind("RC"), 2);
        assert_eq!(m.bytes_of_kind("RC"), 60);
        assert_eq!(m.mean_bytes_of_kind("RC"), 30.0);
        assert_eq!(m.sent_of_kind("T"), 1);
        assert_eq!(m.sent_of_kind("nope"), 0);
        assert_eq!(m.bytes_of_kind("nope"), 0);
        assert_eq!(m.mean_bytes_of_kind("nope"), 0.0);
        assert!(m.summary().contains("sent=3"));
        assert!(m.summary().contains("bytes=160"));
    }

    #[test]
    fn per_object_accounting() {
        let mut m = Metrics::default();
        m.record_object(0, 100);
        m.record_object(0, 50);
        m.record_object(7, 20);
        assert_eq!(m.bytes_of_object(0), 150);
        assert_eq!(m.msgs_of_object(0), 2);
        assert_eq!(m.mean_bytes_of_object(0), 75.0);
        assert_eq!(m.bytes_of_object(7), 20);
        assert_eq!(m.bytes_of_object(99), 0);
        assert_eq!(m.mean_bytes_of_object(99), 0.0);
    }

    #[test]
    fn per_link_accounting() {
        let mut m = Metrics::default();
        m.record_send("R", 1_000, a(0), a(1), tx(100));
        m.record_send("R", 3_000, a(0), a(1), tx(300));
        m.record_send("W", 500, a(1), a(0), tx(50));
        assert_eq!(m.bytes_on_link(a(0), a(1)), 4_000);
        assert_eq!(m.bytes_on_link(a(1), a(0)), 500);
        assert_eq!(m.bytes_on_link(a(0), a(2)), 0);
        assert_eq!(m.busiest_link(), Some(((a(0), a(1)), 4_000)));
        let mat = m.link_byte_matrix(2);
        assert_eq!(mat, vec![vec![0, 4_000], vec![500, 0]]);
        // Utilization: 400 ns busy over a 1000 ns run.
        m.last_time = Time(1_000);
        assert_eq!(m.link_utilization(a(0), a(1)), 0.4);
        assert_eq!(m.link_utilization(a(2), a(0)), 0.0);
        assert_eq!(m.max_link_utilization(), 0.4);
        // A shared uplink's saturation is the *sum* over destinations.
        m.record_send("R", 1_000, a(0), a(2), tx(500));
        assert_eq!(m.link_utilization(a(0), a(2)), 0.5);
        assert_eq!(m.uplink_utilization(a(0)), 0.9);
        assert_eq!(m.uplink_utilization(a(2)), 0.0);
        assert_eq!(m.max_uplink_utilization(), 0.9);
    }

    #[test]
    fn since_windows_the_counters() {
        let mut m = Metrics::default();
        m.record_send("R", 1_000, a(0), a(1), tx(100));
        m.record_object(3, 1_000);
        m.last_time = Time(1_000);
        let snapshot = m.clone();
        m.record_send("R", 3_000, a(0), a(1), tx(300));
        m.record_send("W", 500, a(1), a(0), tx(50));
        m.record_object(3, 3_000);
        m.last_time = Time(2_000);
        let w = m.since(&snapshot);
        assert_eq!(w.messages_sent, 2);
        assert_eq!(w.bytes_sent, 3_500);
        assert_eq!(w.sent_of_kind("R"), 1);
        assert_eq!(w.bytes_of_kind("R"), 3_000);
        assert_eq!(w.bytes_on_link(a(0), a(1)), 3_000);
        assert_eq!(w.bytes_of_object(3), 3_000);
        assert_eq!(w.last_time, Time(1_000));
        // Utilization reads over the window: 300 ns busy / 1000 ns window.
        assert_eq!(w.link_utilization(a(0), a(1)), 0.3);
        let d = w.link_delay(a(0), a(1)).unwrap();
        assert_eq!(d.count, 1);
        assert_eq!(d.transmission, 300);
        // A zero-width window is all zeros.
        let z = m.since(&m.clone());
        assert_eq!(z.messages_sent, 0);
        assert_eq!(z.max_link_utilization(), 0.0);
    }

    #[test]
    fn counters_and_samples() {
        let mut m = Metrics::default();
        m.record_counter("hit", 1);
        m.record_counter("hit", 2);
        m.record_sample("fanout", 2);
        m.record_sample("fanout", 2);
        m.record_sample("fanout", 5);
        assert_eq!(m.counter("hit"), 3);
        assert_eq!(m.counter("miss"), 0);
        assert_eq!(m.sample_count("fanout"), 3);
        assert_eq!(m.sample_mean("fanout"), 3.0);
        assert_eq!(m.sample_hist("fanout").unwrap()[&2], 2);
        assert_eq!(m.sample_mean("absent"), 0.0);
        let snap = m.clone();
        m.record_counter("hit", 1);
        m.record_sample("fanout", 5);
        let w = m.since(&snap);
        assert_eq!(w.counter("hit"), 1);
        assert_eq!(w.sample_count("fanout"), 1);
        assert_eq!(w.sample_hist("fanout").unwrap()[&5], 1);
    }

    #[test]
    fn utilization_zero_without_time_or_transmission() {
        let mut m = Metrics::default();
        assert_eq!(m.link_utilization(a(0), a(1)), 0.0);
        m.record_send("R", 100, a(0), a(1), tx(0));
        m.last_time = Time(1_000);
        assert_eq!(m.max_link_utilization(), 0.0, "no transmission charged");
    }

    #[test]
    fn delay_components_split_and_average() {
        let mut m = Metrics::default();
        m.record_send(
            "R",
            100,
            a(0),
            a(1),
            Delivery {
                queued: 300,
                transmission: 100,
                propagation: 1_000,
            },
        );
        m.record_send(
            "R",
            100,
            a(0),
            a(1),
            Delivery {
                queued: 100,
                transmission: 100,
                propagation: 3_000,
            },
        );
        m.record_send("W", 50, a(1), a(0), tx(0));
        let s = m.link_delay(a(0), a(1)).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(m.mean_link_propagation(a(0), a(1)), Some(2_000.0));
        assert_eq!(m.mean_link_queueing(a(0), a(1)), Some(200.0));
        assert_eq!(s.mean_total(), Some(2_300.0));
        // RTT needs both directions; the reverse has zero propagation here.
        assert_eq!(m.mean_link_rtt(a(0), a(1)), Some(2_000.0));
        assert_eq!(m.mean_link_rtt(a(0), a(2)), None);
        // Counts and traffic shares.
        assert_eq!(m.msgs_on_link(a(0), a(1)), 2);
        assert_eq!(m.msgs_on_link(a(2), a(0)), 0);
        assert_eq!(m.incident_bytes(a(0)), 250);
        assert_eq!(m.incident_bytes(a(1)), 250);
        assert_eq!(m.incident_bytes(a(2)), 0);
    }
}
