//! Fault plans: declarative crash/restart schedules for a run.
//!
//! The paper's system model (§II) allows up to `f` servers to crash; the
//! simulator has always been able to *kill* an actor
//! ([`crate::World::crash_now`]), but a killed actor stayed dead. A
//! [`FaultPlan`] describes a whole campaign of kills — scheduled, random
//! at a rate, or aimed at reassignment instants — each optionally followed
//! by a restart, and [`apply_fault_plan`](FaultPlan::apply) installs it
//! into a [`World`] with a caller-supplied rebuild function (typically one
//! that recovers the actor from a durable store it shares with the dead
//! incarnation).
//!
//! Plans are plain data built from a seed, so the same plan replays
//! identically run after run — crash schedules are part of the
//! deterministic schedule, not an extra source of nondeterminism.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::{Actor, ActorId, Message};
use crate::time::{Nanos, Time};
use crate::world::World;

/// One injected fault: kill `actor` at `at` and, if `down_for` is set,
/// rebuild and reboot it that many nanoseconds later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// When the kill fires.
    pub at: Time,
    /// The actor to kill.
    pub actor: ActorId,
    /// Downtime before the restart (`None` = stays dead, the classic
    /// crash-stop fault).
    pub down_for: Option<Nanos>,
}

impl Fault {
    /// A kill at `at` followed by a restart `down_for` nanoseconds later.
    pub fn kill_restart(actor: ActorId, at: Time, down_for: Nanos) -> Fault {
        Fault {
            at,
            actor,
            down_for: Some(down_for),
        }
    }

    /// A permanent kill at `at` (crash-stop).
    pub fn kill(actor: ActorId, at: Time) -> Fault {
        Fault {
            at,
            actor,
            down_for: None,
        }
    }

    /// When the restart fires, if one is scheduled.
    pub fn restart_at(&self) -> Option<Time> {
        self.down_for.map(|d| self.at + d)
    }
}

/// A deterministic schedule of kill/restart events for one run.
///
/// # Examples
///
/// ```
/// use awr_sim::{ActorId, Fault, FaultPlan, Time};
///
/// // Two scheduled kills; the second one is permanent.
/// let plan = FaultPlan::scheduled([
///     Fault::kill_restart(ActorId(1), Time(5_000_000), 2_000_000),
///     Fault::kill(ActorId(2), Time(9_000_000)),
/// ]);
/// assert_eq!(plan.len(), 2);
/// assert!(plan.max_concurrently_down() >= 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, sorted by kill time.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan from explicit faults (sorted by kill time for determinism).
    pub fn scheduled(faults: impl IntoIterator<Item = Fault>) -> FaultPlan {
        let mut faults: Vec<Fault> = faults.into_iter().collect();
        faults.sort_by_key(|f| (f.at, f.actor));
        FaultPlan { faults }
    }

    /// Random kills at a rate: over `(0, horizon]`, successive kills are
    /// separated by a uniformly random gap in `[mean_interval / 2,
    /// 3 · mean_interval / 2]`, each targeting a uniformly random actor
    /// from `targets` and restarting after `down_for`. Deterministic per
    /// `seed`.
    pub fn random(
        seed: u64,
        targets: &[ActorId],
        horizon: Time,
        mean_interval: Nanos,
        down_for: Nanos,
    ) -> FaultPlan {
        assert!(!targets.is_empty(), "random fault plan needs targets");
        assert!(mean_interval > 0, "mean_interval must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        let mut t = Time::ZERO;
        loop {
            let lo = mean_interval.div_ceil(2).max(1);
            let hi = (mean_interval.saturating_mul(3) / 2).max(lo);
            t += rng.random_range(lo..=hi);
            if t > horizon {
                break;
            }
            let actor = targets[rng.random_range(0..targets.len())];
            faults.push(Fault::kill_restart(actor, t, down_for));
        }
        FaultPlan { faults }
    }

    /// Kill-during-reassignment: for each reassignment instant, with
    /// probability `prob_pct`/100 kill a uniformly random actor from
    /// `targets` a small random beat (`0..=skew` ns) after the instant,
    /// restarting after `down_for`. Deterministic per `seed`.
    pub fn at_reassignments(
        seed: u64,
        reassignment_times: &[Time],
        targets: &[ActorId],
        prob_pct: u32,
        skew: Nanos,
        down_for: Nanos,
    ) -> FaultPlan {
        assert!(!targets.is_empty(), "reassignment fault plan needs targets");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        for &at in reassignment_times {
            if rng.random_range(0..100) >= prob_pct {
                continue;
            }
            let actor = targets[rng.random_range(0..targets.len())];
            let beat = if skew == 0 {
                0
            } else {
                rng.random_range(0..=skew)
            };
            faults.push(Fault::kill_restart(actor, at + beat, down_for));
        }
        FaultPlan::scheduled(faults)
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The largest number of plan targets simultaneously down at any
    /// instant — what a harness compares against the system's fault
    /// threshold `f` before trusting liveness under the plan.
    pub fn max_concurrently_down(&self) -> usize {
        let mut edges: Vec<(Time, i32)> = Vec::new();
        for f in &self.faults {
            edges.push((f.at, 1));
            if let Some(up) = f.restart_at() {
                edges.push((up, -1));
            }
        }
        // Restarts at the same instant as a kill resolve first, matching
        // the event queue only when they were scheduled first; counting
        // the kill first is the conservative reading.
        edges.sort_by_key(|&(t, d)| (t, -d));
        let (mut down, mut max) = (0i32, 0i32);
        for (_, d) in edges {
            down += d;
            max = max.max(down);
        }
        max as usize
    }

    /// Installs the plan into `world`: every kill becomes a scheduled
    /// crash, and every restart rebuilds the actor via `rebuild` (called
    /// at the restart instant with the actor's id). The rebuild function
    /// typically recovers state from a durable store shared with the dead
    /// incarnation.
    pub fn apply<M, F>(&self, world: &mut World<M>, rebuild: F)
    where
        M: Message,
        F: FnMut(ActorId) -> Box<dyn Actor<Msg = M>> + 'static,
    {
        let rebuild = Rc::new(RefCell::new(rebuild));
        for f in &self.faults {
            world.schedule_crash(f.actor, f.at);
            if let Some(up) = f.restart_at() {
                let r = Rc::clone(&rebuild);
                let actor = f.actor;
                world.schedule_restart(actor, up, move || (r.borrow_mut())(actor));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> ActorId {
        ActorId(i)
    }

    #[test]
    fn scheduled_sorts_by_time() {
        let plan = FaultPlan::scheduled([
            Fault::kill(a(2), Time(300)),
            Fault::kill_restart(a(1), Time(100), 50),
        ]);
        assert_eq!(plan.faults[0].actor, a(1));
        assert_eq!(plan.faults[1].actor, a(2));
        assert_eq!(plan.faults[0].restart_at(), Some(Time(150)));
        assert_eq!(plan.faults[1].restart_at(), None);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let targets = [a(0), a(1), a(2)];
        let p1 = FaultPlan::random(9, &targets, Time(10_000_000), 1_000_000, 100_000);
        let p2 = FaultPlan::random(9, &targets, Time(10_000_000), 1_000_000, 100_000);
        assert_eq!(p1, p2, "same seed must replay the same plan");
        assert!(!p1.is_empty());
        assert!(p1.faults.iter().all(|f| f.at <= Time(10_000_000)));
        assert!(p1.faults.iter().all(|f| targets.contains(&f.actor)));
        // Mean gap ~1ms over a 10ms horizon: roughly 7-13 kills.
        assert!(p1.len() >= 5 && p1.len() <= 20, "got {}", p1.len());
        let p3 = FaultPlan::random(10, &targets, Time(10_000_000), 1_000_000, 100_000);
        assert_ne!(p1, p3, "different seeds should differ");
    }

    #[test]
    fn at_reassignments_respects_probability() {
        let times: Vec<Time> = (1..=100u64).map(|i| Time(i * 1_000)).collect();
        let all = FaultPlan::at_reassignments(4, &times, &[a(0)], 100, 0, 10);
        assert_eq!(all.len(), 100);
        assert!(all
            .faults
            .iter()
            .zip(&times)
            .all(|(f, &t)| f.at == t && f.actor == a(0)));
        let none = FaultPlan::at_reassignments(4, &times, &[a(0)], 0, 0, 10);
        assert!(none.is_empty());
        let some = FaultPlan::at_reassignments(4, &times, &[a(0)], 30, 500, 10);
        assert!(some.len() > 10 && some.len() < 60, "got {}", some.len());
    }

    #[test]
    fn max_concurrently_down_overlap() {
        // Two overlapping downtimes plus one disjoint.
        let plan = FaultPlan::scheduled([
            Fault::kill_restart(a(0), Time(100), 100), // down 100..200
            Fault::kill_restart(a(1), Time(150), 100), // down 150..250
            Fault::kill_restart(a(2), Time(300), 10),  // down 300..310
        ]);
        assert_eq!(plan.max_concurrently_down(), 2);
        // A permanent kill never comes back up.
        let plan = FaultPlan::scheduled([
            Fault::kill(a(0), Time(0)),
            Fault::kill_restart(a(1), Time(1_000), 1),
        ]);
        assert_eq!(plan.max_concurrently_down(), 2);
        assert_eq!(FaultPlan::default().max_concurrently_down(), 0);
    }
}
