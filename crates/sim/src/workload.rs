//! Cross-traffic generators: competing flows that occupy link capacity.
//!
//! Quorum systems adapt their weights to network conditions, and network
//! conditions are mostly *other people's traffic*. This module makes that
//! contention simulable: a [`TrafficGen`] describes how many bytes a
//! background flow emits over any virtual-time window, a [`Flow`] binds a
//! generator to a directed actor pair, and [`CrossTraffic`] wraps a
//! [`BandwidthLinks`] network so those bytes occupy real link capacity —
//! protocol messages queue behind them (via [`BandwidthLinks::occupy`]),
//! exactly as they would behind a bulk transfer sharing the uplink.
//!
//! Three generator shapes cover the regimes the placement benchmarks need:
//!
//! * [`ConstantBitrate`] — steady background load (replication streams,
//!   telemetry);
//! * [`BurstyOnOff`] — an on/off square wave whose on-rate exceeds the
//!   link, the classic elephant-flow pattern that produces periodic queues;
//! * [`ReassignmentBurst`] — periodic fixed-size dumps, modelling another
//!   tenant's weight-reassignment waves (a full change set plus its relay
//!   traffic hitting the wire at once).
//!
//! Generators are pure functions of virtual time — they draw no randomness
//! from the world's RNG — so wrapping a network in [`CrossTraffic`] with an
//! empty flow list reproduces the unwrapped schedule *exactly* (pinned by
//! `tests/placement.rs`), and any flow set perturbs only link occupancy,
//! never the propagation sampling sequence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;

use crate::actor::ActorId;
use crate::network::{BandwidthLinks, Delivery, NetworkModel};
use crate::time::{Nanos, Time, SECOND};

/// A deterministic byte-emission schedule: how many bytes the flow puts on
/// the wire during `[t0, t1)`. Implementations accumulate sub-byte
/// remainders so that splitting a window never loses bytes.
pub trait TrafficGen: Send {
    /// Bytes emitted during the half-open window `[t0, t1)`.
    fn bytes_between(&mut self, t0: Time, t1: Time) -> u64;
}

/// A constant-bitrate flow: `rate` bytes/second, continuously.
///
/// # Examples
///
/// ```
/// use awr_sim::{ConstantBitrate, Time, TrafficGen, MILLI};
///
/// let mut cbr = ConstantBitrate::new(1_000_000); // 1 MB/s
/// assert_eq!(cbr.bytes_between(Time::ZERO, Time(10 * MILLI)), 10_000);
/// ```
#[derive(Debug)]
pub struct ConstantBitrate {
    rate: u64,
    /// Sub-byte remainder carried across windows (units of byte·ns).
    carry: u128,
}

impl ConstantBitrate {
    /// A flow emitting `bytes_per_sec` continuously.
    pub fn new(bytes_per_sec: u64) -> ConstantBitrate {
        ConstantBitrate {
            rate: bytes_per_sec,
            carry: 0,
        }
    }
}

impl TrafficGen for ConstantBitrate {
    fn bytes_between(&mut self, t0: Time, t1: Time) -> u64 {
        let elapsed = (t1 - t0) as u128;
        let units = self.rate as u128 * elapsed + self.carry;
        self.carry = units % SECOND as u128;
        (units / SECOND as u128) as u64
    }
}

/// An on/off square-wave flow: `on_rate` bytes/second for `on_ns`, silence
/// for `off_ns`, repeating from `t = 0`. With an on-rate above the link
/// bandwidth this is the canonical congestion generator: each on-phase
/// builds a queue that drains during the off-phase, so protocol messages
/// see periodic (bounded) queueing rather than an ever-growing backlog.
#[derive(Debug)]
pub struct BurstyOnOff {
    on_ns: Nanos,
    off_ns: Nanos,
    on_rate: u64,
    carry: u128,
}

impl BurstyOnOff {
    /// A square wave: `on_rate` bytes/second during each `on_ns` phase,
    /// nothing during each `off_ns` phase.
    ///
    /// # Panics
    ///
    /// Panics if `on_ns` is zero (the wave would never emit).
    pub fn new(on_ns: Nanos, off_ns: Nanos, on_rate: u64) -> BurstyOnOff {
        assert!(on_ns > 0, "on phase must be non-empty");
        BurstyOnOff {
            on_ns,
            off_ns,
            on_rate,
            carry: 0,
        }
    }

    /// Cumulative on-phase nanoseconds in `[0, t)`.
    fn on_time(&self, t: Nanos) -> u128 {
        let period = (self.on_ns + self.off_ns) as u128;
        let t = t as u128;
        let full = t / period;
        let rem = t % period;
        full * self.on_ns as u128 + rem.min(self.on_ns as u128)
    }
}

impl TrafficGen for BurstyOnOff {
    fn bytes_between(&mut self, t0: Time, t1: Time) -> u64 {
        let on = self
            .on_time(t1.nanos())
            .saturating_sub(self.on_time(t0.nanos()));
        let units = self.on_rate as u128 * on + self.carry;
        self.carry = units % SECOND as u128;
        (units / SECOND as u128) as u64
    }
}

/// Periodic fixed-size dumps: `bytes_per_burst` hit the wire instantaneously
/// at `offset_ns`, `offset_ns + period_ns`, … — the shape of a competing
/// reassignment wave (a full change set and its reliable-broadcast relays
/// leaving one server at once).
#[derive(Debug)]
pub struct ReassignmentBurst {
    period_ns: Nanos,
    bytes_per_burst: u64,
    offset_ns: Nanos,
}

impl ReassignmentBurst {
    /// Bursts of `bytes_per_burst` every `period_ns`, the first at
    /// `offset_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `period_ns` is zero.
    pub fn new(period_ns: Nanos, bytes_per_burst: u64, offset_ns: Nanos) -> ReassignmentBurst {
        assert!(period_ns > 0, "burst period must be positive");
        ReassignmentBurst {
            period_ns,
            bytes_per_burst,
            offset_ns,
        }
    }

    /// Number of bursts strictly before `t`.
    fn bursts_before(&self, t: Nanos) -> u64 {
        if t <= self.offset_ns {
            0
        } else {
            1 + (t - 1 - self.offset_ns) / self.period_ns
        }
    }
}

impl TrafficGen for ReassignmentBurst {
    fn bytes_between(&mut self, t0: Time, t1: Time) -> u64 {
        let n = self
            .bursts_before(t1.nanos())
            .saturating_sub(self.bursts_before(t0.nanos()));
        n * self.bytes_per_burst
    }
}

/// A regime shift: one generator before `switch_at`, another after — the
/// composable way to model network conditions that *change mid-run*
/// (a congested corridor clearing while another saturates). Like every
/// generator it is a pure function of virtual time, so wrapping flows in
/// shifts perturbs only link occupancy, never the propagation sampling.
///
/// # Examples
///
/// ```
/// use awr_sim::{ConstantBitrate, RegimeShift, Time, TrafficGen, SECOND};
///
/// // Silent for 2 s, then a 1 MB/s stream.
/// let mut g = RegimeShift::new(
///     Time(2 * SECOND),
///     ConstantBitrate::new(0),
///     ConstantBitrate::new(1_000_000),
/// );
/// assert_eq!(g.bytes_between(Time::ZERO, Time(2 * SECOND)), 0);
/// assert_eq!(g.bytes_between(Time(2 * SECOND), Time(3 * SECOND)), 1_000_000);
/// ```
pub struct RegimeShift<A, B> {
    switch_at: Time,
    before: A,
    after: B,
}

impl<A: TrafficGen, B: TrafficGen> RegimeShift<A, B> {
    /// Emits per `before` strictly before `switch_at`, per `after` from
    /// `switch_at` on. The `after` generator's own clock still starts at
    /// `t = 0` of the run (generators are functions of absolute virtual
    /// time), which keeps burst phases predictable across arms.
    pub fn new(switch_at: Time, before: A, after: B) -> RegimeShift<A, B> {
        RegimeShift {
            switch_at,
            before,
            after,
        }
    }
}

impl<A: TrafficGen, B: TrafficGen> TrafficGen for RegimeShift<A, B> {
    fn bytes_between(&mut self, t0: Time, t1: Time) -> u64 {
        let mut total = 0;
        if t0 < self.switch_at {
            total += self.before.bytes_between(t0, t1.min(self.switch_at));
        }
        if t1 > self.switch_at {
            total += self.after.bytes_between(t0.max(self.switch_at), t1);
        }
        total
    }
}

/// A background flow: a generator bound to a directed actor pair.
pub struct Flow {
    /// Sending endpoint (whose link/uplink the bytes occupy).
    pub from: ActorId,
    /// Receiving endpoint.
    pub to: ActorId,
    gen: Box<dyn TrafficGen>,
    /// How far this flow's emissions have been charged.
    cursor: Time,
}

impl Flow {
    /// Binds `gen` to the directed pair `from → to`.
    pub fn new(from: ActorId, to: ActorId, gen: impl TrafficGen + 'static) -> Flow {
        Flow {
            from,
            to,
            gen: Box::new(gen),
            cursor: Time::ZERO,
        }
    }
}

/// A cloneable handle onto the bytes each flow has injected so far
/// (readable after the network has been moved into a `World`).
#[derive(Clone)]
pub struct CrossTrafficStats {
    injected: Arc<Vec<AtomicU64>>,
}

impl CrossTrafficStats {
    /// Bytes flow `i` has injected so far.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn injected_bytes(&self, i: usize) -> u64 {
        self.injected[i].load(Ordering::Relaxed)
    }

    /// Total bytes injected across all flows.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of flows.
    pub fn n_flows(&self) -> usize {
        self.injected.len()
    }
}

/// A [`NetworkModel`] decorator injecting competing traffic: before every
/// protocol delivery is scheduled, each flow's emissions since its last
/// charge are pushed onto the wrapped [`BandwidthLinks`] (via
/// [`BandwidthLinks::occupy`]), so the delivery — and everything after it —
/// queues behind the cross traffic.
///
/// The charging is lazy (flows advance at delivery decisions, the only
/// instants queueing is observable) and exact (generators carry sub-byte
/// remainders), and it consults no randomness: with an empty flow list the
/// wrapped network's schedule is reproduced bit-for-bit.
///
/// # Examples
///
/// ```
/// use awr_sim::{geo_network, ActorId, BurstyOnOff, CrossTraffic, Flow, Region, MILLI};
///
/// let placement = [Region::Virginia, Region::Ireland, Region::Virginia];
/// let net = CrossTraffic::new(
///     geo_network(&placement, 0.0),
///     vec![Flow::new(
///         ActorId(1),
///         ActorId(2),
///         BurstyOnOff::new(40 * MILLI, 160 * MILLI, 500_000_000),
///     )],
/// );
/// let stats = net.stats();
/// // give `net` to World::new(..); after the run:
/// // stats.total_injected() reports the competing bytes.
/// # drop((net, stats));
/// ```
pub struct CrossTraffic<N> {
    links: BandwidthLinks<N>,
    flows: Vec<Flow>,
    injected: Arc<Vec<AtomicU64>>,
}

impl<N: NetworkModel> CrossTraffic<N> {
    /// Wraps `links` with the given background flows.
    pub fn new(links: BandwidthLinks<N>, flows: Vec<Flow>) -> CrossTraffic<N> {
        let injected = Arc::new((0..flows.len()).map(|_| AtomicU64::new(0)).collect());
        CrossTraffic {
            links,
            flows,
            injected,
        }
    }

    /// A handle onto per-flow injection counters, usable after `self` has
    /// been moved into a world.
    pub fn stats(&self) -> CrossTrafficStats {
        CrossTrafficStats {
            injected: Arc::clone(&self.injected),
        }
    }

    /// Charges every flow's emissions in `[cursor, now)` onto the links.
    ///
    /// Long windows (sparse protocol traffic) are subdivided at
    /// [`CHARGE_RESOLUTION`] so a burst's bytes hit the link close to
    /// when the generator emitted them, not lumped at the window start —
    /// otherwise the observed queueing would depend on how often the
    /// protocol happens to send, not on the flow schedule.
    fn advance_flows(&mut self, now: Time) {
        for (i, f) in self.flows.iter_mut().enumerate() {
            while f.cursor < now {
                let chunk_end = (f.cursor + CHARGE_RESOLUTION).min(now);
                let bytes = f.gen.bytes_between(f.cursor, chunk_end);
                let chunk_start = f.cursor;
                f.cursor = chunk_end;
                if bytes > 0 {
                    self.links.occupy(f.from, f.to, bytes as usize, chunk_start);
                    self.injected[i].fetch_add(bytes, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Granularity at which flow emissions are charged onto links: the
/// timing error of any cross-traffic byte is bounded by this, however
/// sparse the protocol traffic is.
const CHARGE_RESOLUTION: Nanos = 5 * crate::time::MILLI;

impl<N: NetworkModel> NetworkModel for CrossTraffic<N> {
    fn delivery(
        &mut self,
        from: ActorId,
        to: ActorId,
        now: Time,
        bytes: usize,
        rng: &mut StdRng,
    ) -> Delivery {
        self.advance_flows(now);
        self.links.delivery(from, to, now, bytes, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{BandwidthMatrix, ConstantLatency};
    use crate::time::MILLI;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn a(i: usize) -> ActorId {
        ActorId(i)
    }

    #[test]
    fn cbr_is_exact_across_window_splits() {
        let mut one = ConstantBitrate::new(333);
        let whole = one.bytes_between(Time::ZERO, Time(10 * SECOND));
        let mut two = ConstantBitrate::new(333);
        let mut split = 0;
        for k in 0..100 {
            split += two.bytes_between(Time(k * SECOND / 10), Time((k + 1) * SECOND / 10));
        }
        assert_eq!(whole, 3330);
        assert_eq!(split, whole, "window splitting must not lose bytes");
    }

    #[test]
    fn bursty_emits_only_during_on_phases() {
        // 10 ms on at 1 MB/s, 90 ms off.
        let mut g = BurstyOnOff::new(10 * MILLI, 90 * MILLI, 1_000_000);
        assert_eq!(g.bytes_between(Time::ZERO, Time(10 * MILLI)), 10_000);
        assert_eq!(g.bytes_between(Time(10 * MILLI), Time(100 * MILLI)), 0);
        // A full period from an arbitrary origin still carries one on-phase.
        assert_eq!(
            g.bytes_between(Time(105 * MILLI), Time(205 * MILLI)),
            10_000
        );
    }

    #[test]
    fn reassignment_bursts_count_boundaries_once() {
        let mut g = ReassignmentBurst::new(50 * MILLI, 1_000, 0);
        // Bursts at t = 0, 50 ms, 100 ms, ...
        assert_eq!(g.bytes_between(Time::ZERO, Time(1)), 1_000);
        assert_eq!(g.bytes_between(Time(1), Time(50 * MILLI)), 0);
        assert_eq!(
            g.bytes_between(Time(50 * MILLI), Time(50 * MILLI + 1)),
            1_000
        );
        let mut h = ReassignmentBurst::new(50 * MILLI, 1_000, 10 * MILLI);
        assert_eq!(h.bytes_between(Time::ZERO, Time(10 * MILLI)), 0);
        assert_eq!(h.bytes_between(Time(10 * MILLI), Time(11 * MILLI)), 1_000);
    }

    #[test]
    fn regime_shift_switches_generators_and_loses_no_bytes() {
        let mut g = RegimeShift::new(
            Time(SECOND),
            ConstantBitrate::new(1_000),
            ConstantBitrate::new(9_000),
        );
        // Window spanning the switch: 0.5 s of each regime.
        assert_eq!(
            g.bytes_between(Time(SECOND / 2), Time(3 * SECOND / 2)),
            500 + 4_500
        );
        // Fully before / fully after.
        let mut h = RegimeShift::new(
            Time(SECOND),
            ConstantBitrate::new(1_000),
            ConstantBitrate::new(9_000),
        );
        assert_eq!(h.bytes_between(Time::ZERO, Time(SECOND)), 1_000);
        assert_eq!(h.bytes_between(Time(SECOND), Time(2 * SECOND)), 9_000);
        // Splitting windows across the switch never loses bytes.
        let mut whole = RegimeShift::new(
            Time(SECOND),
            ConstantBitrate::new(333),
            ConstantBitrate::new(777),
        );
        let total = whole.bytes_between(Time::ZERO, Time(2 * SECOND));
        let mut split = RegimeShift::new(
            Time(SECOND),
            ConstantBitrate::new(333),
            ConstantBitrate::new(777),
        );
        let mut sum = 0;
        for k in 0..20 {
            sum += split.bytes_between(Time(k * SECOND / 10), Time((k + 1) * SECOND / 10));
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn empty_flow_list_is_transparent() {
        let mk = || {
            BandwidthLinks::new(
                ConstantLatency(MILLI),
                BandwidthMatrix::uniform(3, 1_000_000),
            )
        };
        let mut plain = mk();
        let mut wrapped = CrossTraffic::new(mk(), vec![]);
        let (mut r1, mut r2) = (rng(), rng());
        for k in 0..50u64 {
            let p = plain.delivery(a(0), a(1), Time(k * 1_000), 2_000, &mut r1);
            let w = wrapped.delivery(a(0), a(1), Time(k * 1_000), 2_000, &mut r2);
            assert_eq!(p, w, "no flows must mean no perturbation (k={k})");
        }
        assert_eq!(wrapped.stats().total_injected(), 0);
        assert_eq!(wrapped.stats().n_flows(), 0);
    }

    #[test]
    fn cross_traffic_queues_protocol_messages() {
        // 1 MB/s link; a CBR flow at 1 MB/s occupies it fully, so a
        // protocol message sent after the flow has been charged waits.
        let links = BandwidthLinks::new(ConstantLatency(0), BandwidthMatrix::uniform(3, 1_000_000));
        let mut net = CrossTraffic::new(
            links,
            vec![Flow::new(a(0), a(1), ConstantBitrate::new(1_000_000))],
        );
        let stats = net.stats();
        // At t = 100 ms the flow has emitted 100 KB → the link is busy
        // until exactly t = 100 ms; a same-link message queues 0 but the
        // *next* burst shows up. Jump to 200 ms with a dead window first.
        let d = net.delivery(a(0), a(1), Time(100 * MILLI), 1_000, &mut rng());
        assert_eq!(stats.injected_bytes(0), 100_000);
        // Flow bytes charged from window start occupy [0, 100 ms]; the
        // message starts right at the horizon: zero queue, 1 ms tx.
        assert_eq!(d.queued, 0);
        assert_eq!(d.transmission, MILLI);
        // A message 1 ms later on the same link queues behind both the
        // first message and the flow's last-millisecond emission.
        let d2 = net.delivery(a(0), a(1), Time(101 * MILLI), 1_000, &mut rng());
        assert!(d2.queued > 0, "expected queueing, got {d2:?}");
        // Unrelated links stay clean.
        let d3 = net.delivery(a(2), a(1), Time(101 * MILLI), 1_000, &mut rng());
        assert_eq!(d3.queued, 0);
    }

    #[test]
    fn bursty_flow_creates_periodic_congestion() {
        // 1 MB/s link; 10 ms bursts at 10 MB/s every 100 ms → each burst
        // dumps 100 KB = 100 ms of link time.
        let links = BandwidthLinks::new(ConstantLatency(0), BandwidthMatrix::uniform(2, 1_000_000));
        let mut net = CrossTraffic::new(
            links,
            vec![Flow::new(
                a(0),
                a(1),
                BurstyOnOff::new(10 * MILLI, 90 * MILLI, 10_000_000),
            )],
        );
        // Right after the first burst: ~90 ms of backlog ahead of us.
        let d = net.delivery(a(0), a(1), Time(10 * MILLI), 100, &mut rng());
        assert!(
            d.queued >= 80 * MILLI,
            "burst should back the link up, got {d:?}"
        );
    }
}
