//! Topology presets: propagation matrices and full bandwidth-aware
//! networks.
//!
//! The paper motivates weighted quorums with geo-replication (WHEAT [20],
//! AWARE [10]): replicas in different regions see very different quorum
//! latencies. These presets encode a five-region planet-scale matrix with
//! one-way delays in the ballpark of public-cloud inter-region RTTs, which
//! is all the experiments need — only the *shape* (heterogeneity) matters.
//!
//! The `*_network` presets pair propagation with a [`BandwidthMatrix`] so
//! wire bytes shape schedules: [`lan_network`] (fast links, tiny delays),
//! [`wan_network`]/[`geo_network`] (five regions, bandwidth falling with
//! distance), and [`constrained_uplink`] (every sender's outgoing traffic
//! serializes on one modest uplink — the regime where full-change-set
//! wires hurt most).

use crate::network::{BandwidthLinks, BandwidthMatrix, LinkDiscipline, UniformLatency, WanMatrix};
use crate::time::{Nanos, MICRO, MILLI};

/// A named region of the five-region preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// North America (east).
    Virginia,
    /// Europe (west).
    Ireland,
    /// South America (east).
    SaoPaulo,
    /// Asia-Pacific (north-east).
    Tokyo,
    /// Asia-Pacific (south-east).
    Sydney,
}

impl Region {
    /// All regions, index-aligned with [`five_region_matrix`].
    pub const ALL: [Region; 5] = [
        Region::Virginia,
        Region::Ireland,
        Region::SaoPaulo,
        Region::Tokyo,
        Region::Sydney,
    ];

    /// The row/column index of this region in [`five_region_matrix`].
    pub fn index(&self) -> usize {
        Region::ALL.iter().position(|r| r == self).unwrap()
    }

    /// A short human-readable name, for benchmark reports.
    pub fn name(&self) -> &'static str {
        match self {
            Region::Virginia => "virginia",
            Region::Ireland => "ireland",
            Region::SaoPaulo => "sao-paulo",
            Region::Tokyo => "tokyo",
            Region::Sydney => "sydney",
        }
    }
}

/// One-way delay matrix (nanoseconds) between the five preset regions.
/// Derived from typical public-cloud RTT/2 figures; symmetric.
pub fn five_region_matrix() -> Vec<Vec<Nanos>> {
    // ms one-way:         VA    IE    SP    TK    SY
    let ms: [[u64; 5]; 5] = [
        [1, 38, 60, 73, 98],   // Virginia
        [38, 1, 92, 106, 132], // Ireland
        [60, 92, 1, 128, 160], // São Paulo
        [73, 106, 128, 1, 52], // Tokyo
        [98, 132, 160, 52, 1], // Sydney
    ];
    ms.iter()
        .map(|row| row.iter().map(|&m| m * MILLI).collect())
        .collect()
}

/// A WAN model placing `n` actors round-robin across the five regions with
/// the given jitter fraction. Actor `i` goes to region `i % 5`.
pub fn five_region_wan(n: usize, jitter: f64) -> WanMatrix {
    let region_of = (0..n).map(|i| i % 5).collect();
    WanMatrix::new(five_region_matrix(), region_of, jitter)
}

/// A WAN model with an explicit actor→region placement.
pub fn five_region_wan_with_placement(placement: &[Region], jitter: f64) -> WanMatrix {
    let region_of = placement.iter().map(|r| r.index()).collect();
    WanMatrix::new(five_region_matrix(), region_of, jitter)
}

/// Per-actor mean one-way delay to every other actor — the "how slow does
/// this replica look" score a monitoring system would estimate.
pub fn mean_delay_profile(wan: &WanMatrix, n: usize) -> Vec<f64> {
    use crate::actor::ActorId;
    (0..n)
        .map(|i| {
            let me = ActorId(i);
            let total: u128 = (0..n)
                .filter(|&j| j != i)
                .map(|j| wan.base_delay(me, ActorId(j)) as u128)
                .sum();
            total as f64 / (n - 1).max(1) as f64
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Bandwidth-aware network presets.
// ---------------------------------------------------------------------------

/// 10 Gbit/s in bytes/second — the LAN / intra-region link speed.
pub const GBIT10: u64 = 1_250_000_000;

/// Inter-region bandwidth (bytes/second) between the five preset regions:
/// intra-region links run at [`GBIT10`], cross-region capacity falls with
/// distance (same shape as the delay matrix — long-haul links are both
/// slower and thinner).
pub fn five_region_bandwidth() -> Vec<Vec<u64>> {
    const MB: u64 = 1_000_000;
    // bytes/s:                  VA        IE        SP        TK        SY
    [
        [GBIT10, 250 * MB, 150 * MB, 120 * MB, 100 * MB],
        [250 * MB, GBIT10, 100 * MB, 90 * MB, 80 * MB],
        [150 * MB, 100 * MB, GBIT10, 70 * MB, 60 * MB],
        [120 * MB, 90 * MB, 70 * MB, GBIT10, 200 * MB],
        [100 * MB, 80 * MB, 60 * MB, 200 * MB, GBIT10],
    ]
    .iter()
    .map(|row| row.to_vec())
    .collect()
}

/// A LAN: 20–80 µs propagation, [`GBIT10`] full-duplex links, per-link
/// serialization. Messages are effectively free until they reach megabyte
/// scale.
pub fn lan_network(n: usize) -> BandwidthLinks<UniformLatency> {
    BandwidthLinks::new(
        UniformLatency::new(20 * MICRO, 80 * MICRO),
        BandwidthMatrix::uniform(n, GBIT10),
    )
}

/// The five-region WAN with bandwidth falling with distance: actors placed
/// round-robin (actor `i` → region `i % 5`), per-link serialization.
pub fn wan_network(n: usize, jitter: f64) -> BandwidthLinks<WanMatrix> {
    let region_of: Vec<usize> = (0..n).map(|i| i % 5).collect();
    BandwidthLinks::new(
        five_region_wan(n, jitter),
        BandwidthMatrix::new(five_region_bandwidth(), region_of),
    )
}

/// The five-region WAN with an explicit actor→region placement — the
/// geo-replicated deployment the paper's motivating systems (WHEAT, AWARE)
/// run in.
pub fn geo_network(placement: &[Region], jitter: f64) -> BandwidthLinks<WanMatrix> {
    let region_of: Vec<usize> = placement.iter().map(|r| r.index()).collect();
    BandwidthLinks::new(
        five_region_wan_with_placement(placement, jitter),
        BandwidthMatrix::new(five_region_bandwidth(), region_of),
    )
}

/// A constrained-uplink topology: modest propagation (0.2–1 ms) and one
/// shared uplink of `bytes_per_sec` per sender, so a broadcast's messages
/// serialize behind each other. Pass [`crate::UNLIMITED_BANDWIDTH`] to
/// recover the pure-propagation schedule (useful for A/B comparisons).
pub fn constrained_uplink(n: usize, bytes_per_sec: u64) -> BandwidthLinks<UniformLatency> {
    BandwidthLinks::with_discipline(
        UniformLatency::new(200 * MICRO, MILLI),
        BandwidthMatrix::uniform(n, bytes_per_sec),
        LinkDiscipline::SharedUplink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::ActorId;

    #[test]
    fn matrix_is_square_and_symmetric() {
        let m = five_region_matrix();
        assert_eq!(m.len(), 5);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row.len(), 5);
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, m[j][i], "asymmetric at {i},{j}");
            }
        }
    }

    #[test]
    fn region_indices() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn round_robin_placement() {
        let wan = five_region_wan(7, 0.0);
        // Actors 0 and 5 share region Virginia → near-local delay.
        assert!(wan.base_delay(ActorId(0), ActorId(5)) < 5 * MILLI);
        // Actor 0 (VA) to actor 4 (Sydney) is the long haul.
        assert_eq!(wan.base_delay(ActorId(0), ActorId(4)), 98 * MILLI);
    }

    #[test]
    fn explicit_placement() {
        let wan = five_region_wan_with_placement(&[Region::Tokyo, Region::Sydney], 0.0);
        assert_eq!(wan.base_delay(ActorId(0), ActorId(1)), 52 * MILLI);
    }

    #[test]
    fn bandwidth_presets_have_expected_shape() {
        use crate::network::NetworkModel;
        use rand::SeedableRng;

        let bw = five_region_bandwidth();
        assert_eq!(bw.len(), 5);
        for (i, row) in bw.iter().enumerate() {
            assert_eq!(row.len(), 5);
            assert_eq!(row[i], GBIT10, "intra-region must be LAN speed");
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, bw[j][i], "asymmetric at {i},{j}");
                assert!(cell > 0);
            }
        }
        // A 1 MB payload crosses VA→SP slower than VA→IE (thinner pipe).
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut net = wan_network(5, 0.0);
        let to_ie = net.delivery(
            ActorId(0),
            ActorId(1),
            crate::time::Time::ZERO,
            1 << 20,
            &mut rng,
        );
        let mut net = wan_network(5, 0.0);
        let to_sp = net.delivery(
            ActorId(0),
            ActorId(2),
            crate::time::Time::ZERO,
            1 << 20,
            &mut rng,
        );
        assert!(to_sp.transmission > to_ie.transmission);

        // The constrained uplink serializes a fan-out; the LAN does not
        // (same 100 KB payload, wildly different transmission).
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut con = constrained_uplink(4, 1_000_000);
        let first = con.delivery(
            ActorId(0),
            ActorId(1),
            crate::time::Time::ZERO,
            100_000,
            &mut rng,
        );
        let second = con.delivery(
            ActorId(0),
            ActorId(2),
            crate::time::Time::ZERO,
            100_000,
            &mut rng,
        );
        assert_eq!(first.transmission, 100 * MILLI);
        assert_eq!(second.queued, 100 * MILLI, "uplink shared across targets");
        let mut lan = lan_network(4);
        let d = lan.delivery(
            ActorId(0),
            ActorId(1),
            crate::time::Time::ZERO,
            100_000,
            &mut rng,
        );
        assert!(d.transmission < MILLI / 10);

        // Geo placement honours the explicit region list.
        let mut geo = geo_network(&[Region::Tokyo, Region::Sydney], 0.0);
        let d = geo.delivery(
            ActorId(0),
            ActorId(1),
            crate::time::Time::ZERO,
            1 << 20,
            &mut rng,
        );
        assert!(d.propagation >= 52 * MILLI);
    }

    #[test]
    fn delay_profile_orders_regions() {
        // With one actor per region, São Paulo and Sydney are the loneliest.
        let wan = five_region_wan(5, 0.0);
        let prof = mean_delay_profile(&wan, 5);
        assert_eq!(prof.len(), 5);
        let va = prof[0];
        let sp = prof[2];
        let sy = prof[4];
        assert!(
            va < sp,
            "Virginia should be better connected than São Paulo"
        );
        assert!(va < sy);
    }
}
