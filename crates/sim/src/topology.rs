//! Wide-area topology presets.
//!
//! The paper motivates weighted quorums with geo-replication (WHEAT [20],
//! AWARE [10]): replicas in different regions see very different quorum
//! latencies. These presets encode a five-region planet-scale matrix with
//! one-way delays in the ballpark of public-cloud inter-region RTTs, which
//! is all the experiments need — only the *shape* (heterogeneity) matters.

use crate::network::WanMatrix;
use crate::time::{Nanos, MILLI};

/// A named region of the five-region preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// North America (east).
    Virginia,
    /// Europe (west).
    Ireland,
    /// South America (east).
    SaoPaulo,
    /// Asia-Pacific (north-east).
    Tokyo,
    /// Asia-Pacific (south-east).
    Sydney,
}

impl Region {
    /// All regions, index-aligned with [`five_region_matrix`].
    pub const ALL: [Region; 5] = [
        Region::Virginia,
        Region::Ireland,
        Region::SaoPaulo,
        Region::Tokyo,
        Region::Sydney,
    ];

    /// The row/column index of this region in [`five_region_matrix`].
    pub fn index(&self) -> usize {
        Region::ALL.iter().position(|r| r == self).unwrap()
    }
}

/// One-way delay matrix (nanoseconds) between the five preset regions.
/// Derived from typical public-cloud RTT/2 figures; symmetric.
pub fn five_region_matrix() -> Vec<Vec<Nanos>> {
    // ms one-way:         VA    IE    SP    TK    SY
    let ms: [[u64; 5]; 5] = [
        [1, 38, 60, 73, 98],   // Virginia
        [38, 1, 92, 106, 132], // Ireland
        [60, 92, 1, 128, 160], // São Paulo
        [73, 106, 128, 1, 52], // Tokyo
        [98, 132, 160, 52, 1], // Sydney
    ];
    ms.iter()
        .map(|row| row.iter().map(|&m| m * MILLI).collect())
        .collect()
}

/// A WAN model placing `n` actors round-robin across the five regions with
/// the given jitter fraction. Actor `i` goes to region `i % 5`.
pub fn five_region_wan(n: usize, jitter: f64) -> WanMatrix {
    let region_of = (0..n).map(|i| i % 5).collect();
    WanMatrix::new(five_region_matrix(), region_of, jitter)
}

/// A WAN model with an explicit actor→region placement.
pub fn five_region_wan_with_placement(placement: &[Region], jitter: f64) -> WanMatrix {
    let region_of = placement.iter().map(|r| r.index()).collect();
    WanMatrix::new(five_region_matrix(), region_of, jitter)
}

/// Per-actor mean one-way delay to every other actor — the "how slow does
/// this replica look" score a monitoring system would estimate.
pub fn mean_delay_profile(wan: &WanMatrix, n: usize) -> Vec<f64> {
    use crate::actor::ActorId;
    (0..n)
        .map(|i| {
            let me = ActorId(i);
            let total: u128 = (0..n)
                .filter(|&j| j != i)
                .map(|j| wan.base_delay(me, ActorId(j)) as u128)
                .sum();
            total as f64 / (n - 1).max(1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::ActorId;

    #[test]
    fn matrix_is_square_and_symmetric() {
        let m = five_region_matrix();
        assert_eq!(m.len(), 5);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row.len(), 5);
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, m[j][i], "asymmetric at {i},{j}");
            }
        }
    }

    #[test]
    fn region_indices() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn round_robin_placement() {
        let wan = five_region_wan(7, 0.0);
        // Actors 0 and 5 share region Virginia → near-local delay.
        assert!(wan.base_delay(ActorId(0), ActorId(5)) < 5 * MILLI);
        // Actor 0 (VA) to actor 4 (Sydney) is the long haul.
        assert_eq!(wan.base_delay(ActorId(0), ActorId(4)), 98 * MILLI);
    }

    #[test]
    fn explicit_placement() {
        let wan = five_region_wan_with_placement(&[Region::Tokyo, Region::Sydney], 0.0);
        assert_eq!(wan.base_delay(ActorId(0), ActorId(1)), 52 * MILLI);
    }

    #[test]
    fn delay_profile_orders_regions() {
        // With one actor per region, São Paulo and Sydney are the loneliest.
        let wan = five_region_wan(5, 0.0);
        let prof = mean_delay_profile(&wan, 5);
        assert_eq!(prof.len(), 5);
        let va = prof[0];
        let sp = prof[2];
        let sy = prof[4];
        assert!(
            va < sp,
            "Virginia should be better connected than São Paulo"
        );
        assert!(va < sy);
    }
}
