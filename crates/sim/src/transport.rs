//! The runtime seam: hosting an [`Actor`] over a pluggable message fabric.
//!
//! The workspace runs the same protocol state machines in three runtimes:
//!
//! 1. the discrete-event [`crate::World`] (deterministic, adversarial —
//!    the reference semantics);
//! 2. the in-process [`crate::ThreadedSystem`] (real threads, channel
//!    fabric, wall-clock benchmarks);
//! 3. the real-socket runtime of the `awr_net` crate (one OS process per
//!    actor, TCP between them).
//!
//! The first two drive actors directly. This module is the seam that
//! admits the third — and any future fourth — without touching protocol
//! code: a [`Transport`] abstracts "send a message / receive a message"
//! for **one** node, and a [`NodeHost`] pumps any [`Actor`] over any
//! [`Transport`], reproducing the callback-and-effects contract the actors
//! were written against. A runtime is therefore just a `Transport`
//! implementation plus whatever process/thread scaffolding it needs;
//! [`ChannelTransport`] is the minimal in-process example (and the test
//! double for transport-generic code).
//!
//! # Semantics a `Transport` must provide
//!
//! The paper's system model (§II) asks for reliable, FIFO-per-link,
//! asynchronous point-to-point channels between non-Byzantine processes.
//! Concretely:
//!
//! * **Best-effort send, crash-model drops.** `send` may not fail loudly:
//!   a peer that cannot be reached is indistinguishable from a crashed
//!   peer, and the protocols already tolerate crashed peers. A transport
//!   reports delivery trouble by *dropping*, never by duplicating or
//!   reordering within a link.
//! * **FIFO per directed link.** Two messages from `a` to `b` arrive in
//!   send order (the RB engine and the phase drivers rely on this only
//!   weakly, but the DES provides it and equivalence arguments assume it).
//! * **No timers, no clock.** Like [`crate::ThreadedSystem`], a hosted
//!   actor's `SetTimer`/`CancelTimer` effects are ignored; none of the
//!   default-configured protocols set timers ([`crate::World`] remains the
//!   runtime for timer-dependent options such as client retry policies).
//!
//! # Persist-before-send
//!
//! Durable servers (`awr_storage`) append to their WAL *inside* the
//! callback, while sends are buffered [`crate::Context`] effects applied
//! only after the callback returns. [`NodeHost`] preserves exactly that
//! ordering — effects are flushed to the transport strictly after the
//! callback completes — so the persist-before-send invariant holds on
//! every runtime built through this seam, not just the DES.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::{Actor, ActorId, Context, Effect, Message};
use crate::metrics::Metrics;
use crate::time::Time;

/// One node's view of the message fabric: identity, mesh size, best-effort
/// sends, and blocking-with-deadline receives.
///
/// Implementations exist for in-process channels ([`ChannelTransport`])
/// and real TCP sockets (`awr_net::TcpTransport`); the contract each must
/// honour is spelled out in the [module docs](self).
///
/// # Examples
///
/// Two nodes ping-pong over the in-process implementation:
///
/// ```
/// use std::time::Duration;
/// use awr_sim::{ActorId, ChannelTransport, Transport};
///
/// let mut mesh = ChannelTransport::<u32>::mesh(2);
/// let mut b = mesh.pop().unwrap();
/// let mut a = mesh.pop().unwrap();
/// assert_eq!((a.local_id(), b.local_id()), (ActorId(0), ActorId(1)));
///
/// a.send(ActorId(1), 7);
/// let (from, msg) = b.recv_timeout(Duration::from_secs(1)).unwrap();
/// assert_eq!((from, msg), (ActorId(0), 7));
/// b.send(from, msg + 1);
/// assert_eq!(a.recv_timeout(Duration::from_secs(1)), Some((ActorId(1), 8)));
/// ```
pub trait Transport<M> {
    /// The actor id this transport speaks for.
    fn local_id(&self) -> ActorId;

    /// Total number of actors in the mesh (dense ids `0..n_actors`).
    fn n_actors(&self) -> usize;

    /// Sends `msg` to `to`, best-effort: an unreachable peer means the
    /// message is dropped, exactly as the crash model drops traffic to a
    /// dead process. Must preserve FIFO order per directed link.
    fn send(&mut self, to: ActorId, msg: M);

    /// Receives the next `(sender, message)` pair, waiting at most
    /// `timeout`. `None` means the deadline passed with nothing to
    /// deliver (not an error — an asynchronous network is allowed to be
    /// arbitrarily quiet).
    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ActorId, M)>;
}

/// What one [`NodeHost::step`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// A message was received and dispatched to the actor.
    Delivered,
    /// The receive deadline passed with no traffic.
    Idle,
    /// The actor has crashed itself; no further callbacks will run.
    Stopped,
}

/// Hosts one [`Actor`] over one [`Transport`]: the event loop of the
/// real-transport runtimes.
///
/// The host reproduces the runtime contract actors are written against —
/// callbacks receive a [`Context`], effects are buffered during the
/// callback and applied after it returns (sends go to the transport,
/// timers are ignored, `CrashSelf` stops the host) — and meters every send
/// through [`Message::wire_size`] into a [`Metrics`], so byte accounting
/// is comparable across all runtimes.
///
/// Driving is explicit and single-threaded: call [`NodeHost::step`] in a
/// loop (servers), or interleave [`NodeHost::with_actor`] invocations with
/// steps (clients starting operations). This mirrors how the DES harness
/// drives `World` and keeps the host free of locks.
pub struct NodeHost<A: Actor, T: Transport<A::Msg>> {
    actor: A,
    transport: T,
    rng: StdRng,
    next_timer: u64,
    metrics: Metrics,
    running: bool,
}

impl<A: Actor, T: Transport<A::Msg>> NodeHost<A, T> {
    /// Builds the host and runs the actor's `on_start` (flushing its
    /// effects), exactly as both in-process runtimes do before any
    /// delivery. `seed` feeds the actor's [`Context::rng`]; hosts derive
    /// per-node streams the same way [`crate::ThreadedSystem`] does.
    pub fn start(actor: A, transport: T, seed: u64) -> NodeHost<A, T> {
        let id = transport.local_id();
        let rng = StdRng::seed_from_u64(seed ^ (id.index() as u64).wrapping_mul(0x9E37_79B9));
        let mut host = NodeHost {
            actor,
            transport,
            rng,
            next_timer: 0,
            metrics: Metrics::default(),
            running: true,
        };
        host.callback(|a, ctx| a.on_start(ctx));
        host
    }

    /// Runs one callback with a fresh [`Context`] and flushes the
    /// resulting effects (the send-after-return discipline that makes
    /// persist-before-send hold; see the module docs).
    fn callback<R>(&mut self, f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>) -> R) -> R {
        let mut effects: Vec<Effect<A::Msg>> = Vec::new();
        let self_id = self.transport.local_id();
        let n_actors = self.transport.n_actors();
        let out = {
            let mut ctx = Context {
                now: Time::ZERO,
                self_id,
                n_actors,
                rng: &mut self.rng,
                effects: &mut effects,
                next_timer: &mut self.next_timer,
            };
            f(&mut self.actor, &mut ctx)
        };
        for e in effects {
            match e {
                Effect::Send { to, msg } => {
                    self.record_send(self_id, to, &msg);
                    self.transport.send(to, msg);
                }
                Effect::SetTimer { .. } | Effect::CancelTimer { .. } => {
                    // Timers are a DES-only facility (module docs).
                }
                Effect::CrashSelf => self.running = false,
                Effect::Counter { key, add } => self.metrics.record_counter(key, add),
                Effect::Sample { key, value } => self.metrics.record_sample(key, value),
            }
        }
        out
    }

    fn record_send(&mut self, from: ActorId, to: ActorId, msg: &A::Msg) {
        let bytes = msg.wire_size() as u64;
        self.metrics.messages_sent += 1;
        self.metrics.bytes_sent += bytes;
        *self.metrics.sent_by_kind.entry(msg.kind()).or_default() += 1;
        *self.metrics.bytes_by_kind.entry(msg.kind()).or_default() += bytes;
        *self.metrics.msgs_by_link.entry((from, to)).or_default() += 1;
        *self.metrics.bytes_by_link.entry((from, to)).or_default() += bytes;
        if let Some(o) = msg.object_key() {
            *self.metrics.msgs_by_object.entry(o).or_default() += 1;
            *self.metrics.bytes_by_object.entry(o).or_default() += bytes;
        }
    }

    /// Waits up to `timeout` for one message and dispatches it. Returns
    /// what happened; once [`Step::Stopped`] has been returned the host
    /// delivers nothing further (the crash model: a dead process's inbound
    /// traffic is dropped).
    pub fn step(&mut self, timeout: Duration) -> Step {
        if !self.running {
            return Step::Stopped;
        }
        match self.transport.recv_timeout(timeout) {
            Some((from, msg)) => {
                self.callback(|a, ctx| a.on_message(from, msg, ctx));
                if self.running {
                    Step::Delivered
                } else {
                    Step::Stopped
                }
            }
            None => Step::Idle,
        }
    }

    /// Keeps stepping until the fabric has been quiet for `idle` (or the
    /// actor stopped). The localhost analogue of the DES's
    /// run-to-quiescence, useful for draining stray acks before a
    /// measurement boundary.
    pub fn run_until_idle(&mut self, idle: Duration) {
        while self.step(idle) == Step::Delivered {}
    }

    /// Runs `f` against the actor with a live [`Context`] (for starting
    /// client operations, invoking transfers, …) and flushes the effects
    /// it requested. The transport-runtime counterpart of
    /// `World::with_actor_ctx`.
    pub fn with_actor<R>(&mut self, f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>) -> R) -> R {
        self.callback(f)
    }

    /// The hosted actor (read-only; mutate through
    /// [`NodeHost::with_actor`] so effects are flushed).
    pub fn actor(&self) -> &A {
        &self.actor
    }

    /// Send-side accounting, metered through [`Message::wire_size`] — the
    /// same quantity the DES and threaded runtimes record, which is what
    /// makes cross-runtime byte comparisons meaningful.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Whether the actor is still live (has not crashed itself).
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Tears the host apart, returning the actor and transport (final
    /// inspection, transport-level metric harvesting).
    pub fn into_parts(self) -> (A, T) {
        (self.actor, self.transport)
    }
}

/// In-process [`Transport`] over `std::sync::mpsc` channels: the minimal
/// implementation of the seam, used as the reference double in
/// transport-generic tests and doc examples. One mesh = `n` transports,
/// each owning its receiver and a sender to every peer.
///
/// Messages never drop (no process can die), so this models the crash-free
/// asynchronous network; FIFO per link follows from channel FIFO.
pub struct ChannelTransport<M> {
    me: ActorId,
    n: usize,
    peers: Vec<mpsc::Sender<(ActorId, M)>>,
    rx: mpsc::Receiver<(ActorId, M)>,
}

impl<M: Send> ChannelTransport<M> {
    /// Builds a fully connected mesh of `n` transports; element `i` speaks
    /// for [`ActorId`]`(i)`.
    pub fn mesh(n: usize) -> Vec<ChannelTransport<M>> {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| mpsc::channel()).unzip();
        rxs.into_iter()
            .enumerate()
            .map(|(i, rx)| ChannelTransport {
                me: ActorId(i),
                n,
                peers: txs.clone(),
                rx,
            })
            .collect()
    }
}

impl<M: Send> Transport<M> for ChannelTransport<M> {
    fn local_id(&self) -> ActorId {
        self.me
    }

    fn n_actors(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: ActorId, msg: M) {
        // A closed receiver is a dead peer: the message is dropped, per
        // the crash model.
        let _ = self.peers[to.index()].send((self.me, msg));
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(ActorId, M)> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Per-kind tallies of a transport run, serializable shape shared by the
/// demo processes when they report metrics across the process boundary.
/// (The in-memory [`Metrics`] uses `&'static str` kind keys, which cannot
/// cross a serialization boundary; this owns its strings.)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Messages sent, per message kind.
    pub msgs: BTreeMap<String, u64>,
    /// [`Message::wire_size`]-accounted bytes, per message kind.
    pub wire_bytes: BTreeMap<String, u64>,
}

impl KindStats {
    /// Extracts the owned per-kind view of `m`.
    pub fn of(m: &Metrics) -> KindStats {
        KindStats {
            msgs: m
                .sent_by_kind
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            wire_bytes: m
                .bytes_by_kind
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }

    /// Adds `other` into `self` (aggregating several processes' reports).
    pub fn absorb(&mut self, other: &KindStats) {
        for (k, v) in &other.msgs {
            *self.msgs.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.wire_bytes {
            *self.wire_bytes.entry(k.clone()).or_default() += v;
        }
    }

    /// Total wire-accounted bytes across kinds.
    pub fn total_wire_bytes(&self) -> u64 {
        self.wire_bytes.values().sum()
    }

    /// Total messages across kinds.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.values().sum()
    }
}

// Manual serde impls: the vendored serde stand-in has no generic
// `BTreeMap` Deserialize, so maps travel as sequences of `[key, value]`
// pairs (the same idiom awr_storage's durable records use).
impl serde::Serialize for KindStats {
    fn to_value(&self) -> serde::Value {
        fn pairs(m: &BTreeMap<String, u64>) -> serde::Value {
            serde::Value::Seq(m.iter().map(|(k, v)| (k.clone(), *v).to_value()).collect())
        }
        serde::Value::Map(vec![
            ("msgs".to_string(), pairs(&self.msgs)),
            ("wire_bytes".to_string(), pairs(&self.wire_bytes)),
        ])
    }
}

impl<'de> serde::Deserialize<'de> for KindStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("KindStats: expected map"))?;
        fn unpairs(v: &serde::Value) -> Result<BTreeMap<String, u64>, serde::Error> {
            let pairs: Vec<(String, u64)> = serde::Deserialize::from_value(v)?;
            Ok(pairs.into_iter().collect())
        }
        Ok(KindStats {
            msgs: unpairs(serde::map_get(m, "msgs")?)?,
            wire_bytes: unpairs(serde::map_get(m, "wire_bytes")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Clone, Debug)]
    enum Ping {
        Hit,
        Report,
        Count(u64),
    }
    impl Message for Ping {}

    struct Counter {
        hits: u64,
        reported: Option<u64>,
    }

    impl Actor for Counter {
        type Msg = Ping;
        fn on_message(&mut self, from: ActorId, msg: Ping, ctx: &mut Context<'_, Ping>) {
            match msg {
                Ping::Hit => self.hits += 1,
                Ping::Report => ctx.send(from, Ping::Count(self.hits)),
                Ping::Count(c) => self.reported = Some(c),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn host_pumps_actor_over_channel_mesh() {
        let mut mesh = ChannelTransport::mesh(2);
        let t1 = mesh.pop().unwrap();
        let t0 = mesh.pop().unwrap();
        let mut h0 = NodeHost::start(
            Counter {
                hits: 0,
                reported: None,
            },
            t0,
            1,
        );
        let mut h1 = NodeHost::start(
            Counter {
                hits: 0,
                reported: None,
            },
            t1,
            1,
        );
        h1.with_actor(|_, ctx| {
            for _ in 0..10 {
                ctx.send(ActorId(0), Ping::Hit);
            }
            ctx.send(ActorId(0), Ping::Report);
        });
        for _ in 0..11 {
            assert_eq!(h0.step(Duration::from_secs(1)), Step::Delivered);
        }
        assert_eq!(h1.step(Duration::from_secs(1)), Step::Delivered);
        assert_eq!(h1.actor().reported, Some(10));
        // Sends are wire_size-metered, same as the other runtimes.
        assert_eq!(h1.metrics().messages_sent, 11);
        assert_eq!(h0.metrics().sent_of_kind("msg"), 1);
    }

    #[test]
    fn crash_self_stops_the_host() {
        struct Quitter;
        impl Actor for Quitter {
            type Msg = Ping;
            fn on_message(&mut self, _f: ActorId, _m: Ping, ctx: &mut Context<'_, Ping>) {
                ctx.crash_self();
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut mesh = ChannelTransport::mesh(1);
        let t = mesh.pop().unwrap();
        let mut h = NodeHost::start(Quitter, t, 3);
        h.with_actor(|_, ctx| ctx.send(ActorId(0), Ping::Hit));
        assert!(h.is_running());
        assert_eq!(h.step(Duration::from_secs(1)), Step::Stopped);
        assert_eq!(h.step(Duration::from_millis(1)), Step::Stopped);
        assert!(!h.is_running());
    }

    #[test]
    fn idle_when_quiet() {
        let mut mesh = ChannelTransport::<Ping>::mesh(1);
        let t = mesh.pop().unwrap();
        let mut h = NodeHost::start(
            Counter {
                hits: 0,
                reported: None,
            },
            t,
            0,
        );
        assert_eq!(h.step(Duration::from_millis(5)), Step::Idle);
    }

    #[test]
    fn kind_stats_roundtrip_and_absorb() {
        let mut m = Metrics::default();
        *m.sent_by_kind.entry("R").or_default() += 3;
        *m.bytes_by_kind.entry("R").or_default() += 300;
        let mut a = KindStats::of(&m);
        let b = a.clone();
        a.absorb(&b);
        assert_eq!(a.msgs["R"], 6);
        assert_eq!(a.total_wire_bytes(), 600);
        assert_eq!(a.total_msgs(), 6);
    }
}
