//! Pluggable event schedulers for [`crate::World`].
//!
//! The simulator's hot loop is "pop the earliest event, run it". At
//! millions of simulated ops a [`std::collections::BinaryHeap`] pays
//! `O(log n)` comparisons per push *and* pop; a hierarchical timing
//! wheel pays amortized `O(1)` for both. This module puts both behind
//! one small [`Scheduler`] trait so the heap stays available as the
//! reference implementation.
//!
//! # The tie-break contract
//!
//! Every scheduler must pop events in ascending `(at, seq)` order, where
//! `seq` is the world's insertion sequence number (unique per event).
//! That is a *total* order, so any two conforming schedulers replay the
//! same run identically — same trace, same latencies, same bytes. The
//! contract is pinned by `tests/scheduler_equivalence.rs`: the timing
//! wheel must be byte-for-byte indistinguishable from the heap on every
//! pinned scenario, including same-timestamp ties.
//!
//! # Timing-wheel shape
//!
//! [`TimingWheel`] is a classic hierarchical wheel: 6 levels of 64 slots,
//! level 0 slots spanning `2^16` ns (≈ 65.5 µs — protocol-scale delays
//! of 50 µs – 20 ms land at levels 0–1, at most one cascade hop), each
//! higher level spanning 64× more. A `u64` occupancy bitmap per level
//! finds the next non-empty slot in one `trailing_zeros`. Events beyond
//! the top level's horizon (≈ 52 virtual days; in practice only `Time`
//! saturations at `u64::MAX`) park in an overflow heap. Expiring a
//! higher-level slot cascades its events down; expiring a level-0 slot
//! sorts the (tiny) slot by `(at, seq)` to honor the tie-break contract.
//! Slot buffers are recycled across expiries, so the steady state
//! allocates nothing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// The event-queue abstraction [`crate::World`] schedules through.
///
/// Implementations must pop in ascending `(at, seq)` order — see the
/// module docs for why this exact total order is load-bearing.
pub trait Scheduler<T> {
    /// Inserts an event. `seq` is unique and assigned in insertion order
    /// by the caller; `at` never precedes the `at` of the last [`Scheduler::pop`].
    fn push(&mut self, at: Time, seq: u64, item: T);
    /// Removes and returns the minimum event by `(at, seq)`.
    fn pop(&mut self) -> Option<(Time, u64, T)>;
    /// The `(at, seq)` key the next [`Scheduler::pop`] would return.
    /// Takes `&mut self` so implementations may reorganize internally.
    fn next_key(&mut self) -> Option<(Time, u64)>;
    /// Removes the event with sequence number `seq`, wherever it sits in
    /// the time order — the explorer seam behind
    /// [`crate::World::step_seq`]. May be `O(n)`.
    fn take_seq(&mut self, seq: u64) -> Option<(Time, u64, T)>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Visits every pending event in unspecified order (callers that
    /// need an order sort by `(at, seq)` themselves).
    fn for_each(&self, f: &mut dyn FnMut(Time, u64, &T));
}

/// Which [`Scheduler`] a [`crate::World`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hierarchical timing wheel — amortized `O(1)` push/pop (default).
    TimingWheel,
    /// Binary heap — the `O(log n)` reference implementation.
    BinaryHeap,
}

pub(crate) fn build_scheduler<T: 'static>(kind: SchedulerKind) -> Box<dyn Scheduler<T>> {
    match kind {
        SchedulerKind::TimingWheel => Box::new(TimingWheel::new()),
        SchedulerKind::BinaryHeap => Box::new(BinaryHeapScheduler::new()),
    }
}

struct Entry<T> {
    at: Time,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

// ---------------------------------------------------------------------------
// Binary heap reference implementation
// ---------------------------------------------------------------------------

struct HeapEntry<T>(Entry<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Time first, then insertion sequence: a deterministic total order.
        self.0.key().cmp(&other.0.key())
    }
}

/// The pre-existing `BinaryHeap` event queue behind the [`Scheduler`]
/// trait — kept as the reference implementation the timing wheel is
/// pinned against.
pub struct BinaryHeapScheduler<T> {
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
}

impl<T> BinaryHeapScheduler<T> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapScheduler {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T> Default for BinaryHeapScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Scheduler<T> for BinaryHeapScheduler<T> {
    fn push(&mut self, at: Time, seq: u64, item: T) {
        self.heap.push(Reverse(HeapEntry(Entry { at, seq, item })));
    }

    fn pop(&mut self) -> Option<(Time, u64, T)> {
        let Reverse(HeapEntry(e)) = self.heap.pop()?;
        Some((e.at, e.seq, e.item))
    }

    fn next_key(&mut self) -> Option<(Time, u64)> {
        self.heap.peek().map(|Reverse(HeapEntry(e))| e.key())
    }

    fn take_seq(&mut self, seq: u64) -> Option<(Time, u64, T)> {
        if !self.heap.iter().any(|Reverse(HeapEntry(e))| e.seq == seq) {
            return None;
        }
        let mut found = None;
        let mut rest = Vec::with_capacity(self.heap.len());
        for Reverse(HeapEntry(e)) in std::mem::take(&mut self.heap).drain() {
            if e.seq == seq && found.is_none() {
                found = Some(e);
            } else {
                rest.push(Reverse(HeapEntry(e)));
            }
        }
        self.heap = rest.into();
        found.map(|e| (e.at, e.seq, e.item))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(Time, u64, &T)) {
        for Reverse(HeapEntry(e)) in self.heap.iter() {
            f(e.at, e.seq, &e.item);
        }
    }
}

// ---------------------------------------------------------------------------
// Hierarchical timing wheel
// ---------------------------------------------------------------------------

/// Bits per wheel level: 64 slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Wheel levels; ticks beyond `2^(SLOT_BITS * LEVELS)` slots park in the
/// overflow heap.
const LEVELS: usize = 6;
/// Level-0 slot width exponent: slots span `2^GRANULARITY_SHIFT` ns.
/// 65.5 µs batches ~a dozen events per slot under heavy load, so the
/// per-slot machinery (bitmap scan, buffer swap, sort) amortizes over
/// the batch, and protocol-scale delays (50 µs – 20 ms) land at levels
/// 0–1 — at most one cascade hop per event. Measured against finer
/// granularities (2^7, 2^12, 2^14) on the `bench_throughput` top point,
/// this is the knee of the tuning curve; coarser (2^18) loses to the
/// sorted `current` inserts that sub-slot deltas then pay.
const GRANULARITY_SHIFT: u32 = 16;

struct OverflowEntry<T>(Entry<T>);

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for OverflowEntry<T> {}
impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry.
        other.0.key().cmp(&self.0.key())
    }
}

/// A hierarchical timing wheel honoring the `(at, seq)` tie-break
/// contract (see module docs). Amortized `O(1)` push and pop.
///
/// Internal invariants (upheld because [`crate::World`] never schedules
/// into the past):
///
/// * every event in a slot has `tick > cursor`; events with
///   `tick <= cursor` live in the sorted `current` buffer;
/// * the cursor's own slot at every level is empty, so the "next
///   occupied slot strictly after the cursor" bitmap scan never skips
///   an event;
/// * everything in `current` precedes everything in the slots, which
///   precedes everything in the overflow heap.
pub struct TimingWheel<T> {
    /// Level-0 tick (`at >> GRANULARITY_SHIFT`) the wheel has expired up to.
    cursor: u64,
    /// The expired slot being drained: sorted by `(at, seq)` *descending*
    /// so the minimum pops from the back in O(1).
    current: Vec<Entry<T>>,
    /// Slot `s` of level `l` is `slots[l * SLOTS + s]`, unsorted — one
    /// flat allocation so a push touches one cache line of `Vec` headers.
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Events beyond the top level's horizon.
    overflow: BinaryHeap<OverflowEntry<T>>,
    len: usize,
}

impl<T> TimingWheel<T> {
    /// An empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimingWheel {
            cursor: 0,
            current: Vec::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    fn tick_of(at: Time) -> u64 {
        at.0 >> GRANULARITY_SHIFT
    }

    /// Files `e` relative to the current cursor. Does not touch `len`.
    fn place(&mut self, e: Entry<T>) {
        let tick = Self::tick_of(e.at);
        if tick <= self.cursor {
            // Lands in the slot being drained (sub-slot-width delay, or a
            // zero-delay send): sorted insert keeps `current` descending.
            let key = e.key();
            let i = self.current.partition_point(|x| x.key() > key);
            self.current.insert(i, e);
            return;
        }
        let diff = tick ^ self.cursor;
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(OverflowEntry(e));
            return;
        }
        let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + slot].push(e);
        self.occupied[level] |= 1 << slot;
    }

    /// Advances the cursor to the next occupied slot (or overflow batch)
    /// and reloads `current`. Returns `false` iff the wheel is empty.
    /// `current` may still be empty on a `true` return (a higher-level
    /// cascade); callers loop.
    fn advance(&mut self) -> bool {
        for level in 0..LEVELS {
            let idx = ((self.cursor >> (SLOT_BITS * level as u32)) & SLOT_MASK) as u32;
            // Occupied slots strictly after the cursor's position at this
            // level; the cursor's own slot is empty by invariant.
            let mask = if idx >= 63 { 0 } else { u64::MAX << (idx + 1) };
            let avail = self.occupied[level] & mask;
            if avail == 0 {
                continue;
            }
            let slot = avail.trailing_zeros() as usize;
            self.occupied[level] &= !(1u64 << slot);
            // Move the cursor to the base tick of the expiring slot.
            let width = SLOT_BITS * (level as u32 + 1);
            let kept_above = if width >= 64 {
                0
            } else {
                (self.cursor >> width) << width
            };
            self.cursor = kept_above | ((slot as u64) << (SLOT_BITS * level as u32));
            if level == 0 {
                // `current` is empty here (callers only advance when it
                // is), so swapping hands its spent buffer back to the slot
                // for reuse — no allocation on either side of the cycle.
                std::mem::swap(&mut self.current, &mut self.slots[slot]);
                self.current
                    .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            } else {
                // Cascade: relative to the new cursor these all land in
                // strictly lower levels (or `current`), so this terminates
                // and never re-enters the slot being drained — which makes
                // it safe to give the drained buffer back afterwards.
                let mut entries = std::mem::take(&mut self.slots[level * SLOTS + slot]);
                for e in entries.drain(..) {
                    self.place(e);
                }
                self.slots[level * SLOTS + slot] = entries;
            }
            return true;
        }
        // All levels drained: jump to the earliest overflow batch.
        let Some(OverflowEntry(min)) = self.overflow.pop() else {
            return false;
        };
        self.cursor = Self::tick_of(min.at);
        self.place(min);
        while let Some(OverflowEntry(e)) = self.overflow.peek() {
            let within = (Self::tick_of(e.at) ^ self.cursor) >> (SLOT_BITS * LEVELS as u32) == 0;
            if !within {
                break;
            }
            let OverflowEntry(e) = self.overflow.pop().expect("peeked entry");
            self.place(e);
        }
        true
    }
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Scheduler<T> for TimingWheel<T> {
    fn push(&mut self, at: Time, seq: u64, item: T) {
        self.place(Entry { at, seq, item });
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(Time, u64, T)> {
        loop {
            if let Some(e) = self.current.pop() {
                self.len -= 1;
                return Some((e.at, e.seq, e.item));
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn next_key(&mut self) -> Option<(Time, u64)> {
        loop {
            if let Some(e) = self.current.last() {
                return Some(e.key());
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn take_seq(&mut self, seq: u64) -> Option<(Time, u64, T)> {
        if let Some(i) = self.current.iter().position(|e| e.seq == seq) {
            let e = self.current.remove(i);
            self.len -= 1;
            return Some((e.at, e.seq, e.item));
        }
        for level in 0..LEVELS {
            let mut occ = self.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let bucket = &mut self.slots[level * SLOTS + slot];
                if let Some(i) = bucket.iter().position(|e| e.seq == seq) {
                    let e = bucket.swap_remove(i);
                    if bucket.is_empty() {
                        self.occupied[level] &= !(1u64 << slot);
                    }
                    self.len -= 1;
                    return Some((e.at, e.seq, e.item));
                }
            }
        }
        if self.overflow.iter().any(|OverflowEntry(e)| e.seq == seq) {
            let mut found = None;
            let mut rest = Vec::with_capacity(self.overflow.len());
            for OverflowEntry(e) in std::mem::take(&mut self.overflow).drain() {
                if e.seq == seq && found.is_none() {
                    found = Some(e);
                } else {
                    rest.push(OverflowEntry(e));
                }
            }
            self.overflow = rest.into();
            if let Some(e) = found {
                self.len -= 1;
                return Some((e.at, e.seq, e.item));
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }

    fn for_each(&self, f: &mut dyn FnMut(Time, u64, &T)) {
        for e in &self.current {
            f(e.at, e.seq, &e.item);
        }
        for level in 0..LEVELS {
            let mut occ = self.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                for e in &self.slots[level * SLOTS + slot] {
                    f(e.at, e.seq, &e.item);
                }
            }
        }
        for OverflowEntry(e) in self.overflow.iter() {
            f(e.at, e.seq, &e.item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn drain<T>(s: &mut dyn Scheduler<T>) -> Vec<(Time, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = s.pop() {
            out.push((at, seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        for kind in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
            let mut s = build_scheduler::<u32>(kind);
            // Same timestamp, out-of-order seqs; plus earlier and later times.
            s.push(Time(5_000), 0, 0);
            s.push(Time(1_000), 1, 1);
            s.push(Time(5_000), 2, 2);
            s.push(Time(1_000), 3, 3);
            s.push(Time(0), 4, 4);
            let order = drain(s.as_mut());
            assert_eq!(
                order,
                vec![
                    (Time(0), 4),
                    (Time(1_000), 1),
                    (Time(1_000), 3),
                    (Time(5_000), 0),
                    (Time(5_000), 2),
                ],
                "{kind:?}"
            );
        }
    }

    #[test]
    fn wheel_matches_heap_on_random_interleavings() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for round in 0..50 {
            let mut wheel = TimingWheel::<u64>::new();
            let mut heap = BinaryHeapScheduler::<u64>::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..400 {
                if rng.random_bool(0.6) {
                    // Push a batch at/after the current virtual time, with
                    // deliberate timestamp collisions and huge outliers.
                    let n = rng.random_range(1usize..6);
                    for _ in 0..n {
                        let at = match rng.random_range(0u32..10) {
                            0 => now, // exact tie with the clock
                            1..=6 => now + rng.random_range(0u64..50_000),
                            7 | 8 => now + rng.random_range(0u64..10_000_000_000),
                            _ => u64::MAX, // Time saturation → overflow path
                        };
                        wheel.push(Time(at), seq, seq);
                        heap.push(Time(at), seq, seq);
                        seq += 1;
                    }
                } else {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "round {round}");
                    if let Some((at, _, _)) = a {
                        if at.0 != u64::MAX {
                            now = at.0;
                        }
                    }
                }
                assert_eq!(wheel.len(), heap.len());
            }
            // Drain the remainder: orders must agree exactly.
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "round {round} drain");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn take_seq_from_every_region() {
        let mut s = TimingWheel::<&'static str>::new();
        s.push(Time(10), 0, "current-ish");
        s.push(Time(100_000), 1, "low level");
        s.push(Time(3_000_000_000), 2, "high level");
        s.push(Time(u64::MAX), 3, "overflow");
        // Force entry 0 into `current` by peeking.
        assert_eq!(s.next_key(), Some((Time(10), 0)));
        assert_eq!(s.take_seq(3).map(|e| e.1), Some(3));
        assert_eq!(s.take_seq(1).map(|e| e.1), Some(1));
        assert_eq!(s.take_seq(0).map(|e| e.1), Some(0));
        assert_eq!(s.take_seq(0), None);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop().map(|e| e.1), Some(2));
        assert!(s.is_empty());
    }

    #[test]
    fn for_each_visits_everything_once() {
        let mut s = TimingWheel::<u64>::new();
        for i in 0..100u64 {
            s.push(Time(i * 997), i, i);
        }
        // Partially drain so entries spread across current/slots/overflow.
        s.push(Time(u64::MAX), 100, 100);
        for _ in 0..10 {
            s.pop();
        }
        let mut seen = Vec::new();
        s.for_each(&mut |_, seq, _| seen.push(seq));
        seen.sort_unstable();
        let expect: Vec<u64> = (10..=100).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn pop_after_take_seq_keeps_global_order() {
        // take_seq must not disturb ordering among the survivors.
        let mut wheel = TimingWheel::<u64>::new();
        let mut heap = BinaryHeapScheduler::<u64>::new();
        for (i, at) in [700u64, 50, 700, 9_000_000, 128, 50].iter().enumerate() {
            wheel.push(Time(*at), i as u64, i as u64);
            heap.push(Time(*at), i as u64, i as u64);
        }
        assert_eq!(wheel.take_seq(2), heap.take_seq(2));
        assert_eq!(wheel.take_seq(5), heap.take_seq(5));
        let a: Vec<_> = std::iter::from_fn(|| wheel.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| heap.pop()).collect();
        assert_eq!(a, b);
    }
}
